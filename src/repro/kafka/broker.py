"""Kafka broker model.

Brokers own partitions; the paper deploys one broker per cluster node.
Broker capacity only matters as a bottleneck guard: if a topic had fewer
partitions than the cluster has cores, consumption parallelism would be
capped — which the paper avoids by over-partitioning, and which we check
in :meth:`KafkaBroker.validate_partition_load`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class KafkaBroker:
    """A broker hosting a subset of each topic's partitions.

    Parameters
    ----------
    broker_id:
        Unique id (paper: one broker per node, so ids mirror node ids).
    max_throughput:
        Records/second the broker can ingest before becoming a bottleneck;
        used by tests and the producer's optional rate cap.
    """

    broker_id: int
    max_throughput: float = 1_000_000.0
    online: bool = True
    _assignments: List[Tuple[str, int]] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.max_throughput <= 0:
            raise ValueError("max_throughput must be positive")

    def set_offline(self) -> None:
        """Take the broker down (chaos outage); fetches from its
        partitions fail until :meth:`set_online`."""
        self.online = False

    def set_online(self) -> None:
        self.online = True

    def assign(self, topic: str, partition_id: int) -> None:
        key = (topic, partition_id)
        if key in self._assignments:
            raise ValueError(f"partition {key} already assigned to broker {self.broker_id}")
        self._assignments.append(key)

    @property
    def assignments(self) -> List[Tuple[str, int]]:
        return list(self._assignments)

    @property
    def partition_count(self) -> int:
        return len(self._assignments)

    def validate_partition_load(self, peak_rate: float) -> bool:
        """Whether the broker can absorb ``peak_rate`` records/s overall."""
        if peak_rate < 0:
            raise ValueError("peak_rate must be >= 0")
        return peak_rate <= self.max_throughput
