"""Simulated Kafka substrate.

Brokers, topics, segment-based partitions, a rate-controlled producer
(the paper's external data generator) and a direct-stream consumer with
exactly-once offset-range semantics.
"""

from .broker import KafkaBroker
from .cluster import KafkaCluster, paper_kafka_cluster
from .consumer import ConsumedBatch, DirectStreamConsumer, OffsetRange
from .partition import Partition, Segment
from .producer import RateControlledProducer
from .topic import Topic

__all__ = [
    "ConsumedBatch",
    "DirectStreamConsumer",
    "KafkaBroker",
    "KafkaCluster",
    "OffsetRange",
    "Partition",
    "RateControlledProducer",
    "Segment",
    "Topic",
    "paper_kafka_cluster",
]
