"""Direct-stream Kafka consumer.

Models Spark Streaming's direct Kafka integration: at every batch
boundary the receiver asks each partition for the offset range that
arrived during the batch interval, and the batch is exactly the union of
those ranges.  The consumer tracks committed offsets per partition so
records are consumed exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.obs import catalog
from repro.obs.registry import NOOP_REGISTRY, MetricsRegistry

from .topic import Topic


@dataclass(frozen=True)
class OffsetRange:
    """Offsets ``[start, end)`` consumed from one partition for a batch."""

    partition_id: int
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"end {self.end} precedes start {self.start}")

    @property
    def count(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class ConsumedBatch:
    """All offset ranges consumed at one batch boundary."""

    batch_time: float
    ranges: List[OffsetRange]

    @property
    def total_records(self) -> int:
        return sum(r.count for r in self.ranges)


class DirectStreamConsumer:
    """Exactly-once offset-range consumer over a topic."""

    def __init__(self, topic: Topic) -> None:
        self.topic = topic
        self._committed: List[int] = [0] * topic.num_partitions
        self.total_consumed = 0
        self.instrument(NOOP_REGISTRY)

    def instrument(self, registry: MetricsRegistry) -> None:
        """Bind telemetry instruments (no-op registry by default).

        The consumed/lag series carry a ``topic`` label so multi-topic
        runs stay distinguishable; the child is bound once here, keeping
        the poll hot path label-free.
        """
        self._m_consumed = catalog.instrument(
            registry, "repro_kafka_records_consumed_total"
        ).labels(topic=self.topic.name)
        self._m_polls = catalog.instrument(
            registry, "repro_kafka_consumer_polls_total"
        )
        self._m_lag = catalog.instrument(
            registry, "repro_kafka_consumer_lag_records"
        ).labels(topic=self.topic.name)

    @property
    def committed_offsets(self) -> List[int]:
        return list(self._committed)

    def lag(self) -> int:
        """Records appended but not yet consumed (input-queue backlog)."""
        return sum(
            p.end_offset - self._committed[p.partition_id]
            for p in self.topic.partitions
        )

    def poll(self, batch_time: float) -> ConsumedBatch:
        """Consume everything that arrived strictly before ``batch_time``."""
        ranges: List[OffsetRange] = []
        for p in self.topic.partitions:
            end = p.offset_at(batch_time)
            start = self._committed[p.partition_id]
            if end < start:
                raise RuntimeError(
                    f"partition {p.partition_id}: offset went backwards "
                    f"({end} < committed {start})"
                )
            ranges.append(OffsetRange(p.partition_id, start, end))
            self._committed[p.partition_id] = end
        batch = ConsumedBatch(batch_time=batch_time, ranges=ranges)
        self.total_consumed += batch.total_records
        self._m_polls.inc()
        self._m_consumed.inc(batch.total_records)
        self._m_lag.set(self.lag())
        return batch

    def mean_arrival_time(self, batch: ConsumedBatch) -> float:
        """Record-weighted mean arrival time of a consumed batch.

        Falls back to the batch time for empty batches.
        """
        total_t = 0.0
        total_n = 0
        for r in batch.ranges:
            if r.count == 0:
                continue
            p = self.topic.partitions[r.partition_id]
            total_t += p.mean_arrival_time(r.start, r.end) * r.count
            total_n += r.count
        if total_n == 0:
            return batch.batch_time
        return total_t / total_n
