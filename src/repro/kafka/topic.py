"""Kafka topic: a named set of partitions.

The paper sets "the number of Kafka partitions to be larger than the
number of cores owned by the entire cluster" to avoid broker-side
bottlenecks (§6.1); :func:`repro.kafka.cluster.KafkaCluster.create_topic`
enforces the same guidance by default.
"""

from __future__ import annotations

from typing import List

from .partition import Partition


class Topic:
    """A named collection of :class:`Partition` logs."""

    def __init__(self, name: str, num_partitions: int) -> None:
        if not name:
            raise ValueError("topic name must be non-empty")
        if num_partitions < 1:
            raise ValueError(f"need at least one partition, got {num_partitions}")
        self.name = name
        self.partitions: List[Partition] = [
            Partition(i) for i in range(num_partitions)
        ]

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def total_records(self) -> int:
        """Records appended across all partitions."""
        return sum(p.end_offset for p in self.partitions)

    def records_before(self, t: float) -> int:
        """Records that arrived strictly before time ``t``, topic-wide."""
        return sum(p.offset_at(t) for p in self.partitions)

    def append_uniform(self, t0: float, t1: float, count: int) -> None:
        """Append ``count`` records spread evenly over partitions.

        Mirrors the paper's skew-free setup: "The data are sent to each
        Kafka Broker uniformly to avoid data skew."  The remainder after
        integer division rotates across partitions keyed by the segment
        count so no partition is systematically favored.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        n = self.num_partitions
        base, rem = divmod(count, n)
        # Rotation key: non-empty appends to partition 0 (coalescing-proof,
        # and identical to the pre-coalescing segment count).
        start = self.partitions[0].nonempty_appends
        for i, p in enumerate(self.partitions):
            extra = 1 if (i - start) % n < rem else 0
            p.append(t0, t1, base + extra)
