"""Kafka cluster: brokers + topics with partition assignment."""

from __future__ import annotations

from typing import Dict, List

from .broker import KafkaBroker
from .topic import Topic


class KafkaCluster:
    """A set of brokers and the topics they host.

    The paper deploys one Kafka broker on every cluster node (§6.1) and
    over-partitions topics relative to total cluster cores.
    """

    def __init__(self, num_brokers: int) -> None:
        if num_brokers < 1:
            raise ValueError(f"need at least one broker, got {num_brokers}")
        self.brokers: List[KafkaBroker] = [
            KafkaBroker(broker_id=i + 1) for i in range(num_brokers)
        ]
        self.topics: Dict[str, Topic] = {}

    def create_topic(
        self,
        name: str,
        num_partitions: int,
        min_partitions: int = 0,
    ) -> Topic:
        """Create a topic, spreading partitions round-robin over brokers.

        ``min_partitions`` lets callers enforce the paper's guidance that
        partition count exceed total cluster cores.
        """
        if name in self.topics:
            raise ValueError(f"topic {name!r} already exists")
        if num_partitions < max(1, min_partitions):
            raise ValueError(
                f"topic {name!r} needs >= {max(1, min_partitions)} partitions "
                f"(got {num_partitions}); the paper over-partitions relative "
                f"to cluster cores to avoid broker bottlenecks"
            )
        topic = Topic(name, num_partitions)
        for pid in range(num_partitions):
            self.brokers[pid % len(self.brokers)].assign(name, pid)
        self.topics[name] = topic
        return topic

    def topic(self, name: str) -> Topic:
        try:
            return self.topics[name]
        except KeyError:
            raise KeyError(f"no topic named {name!r}") from None

    def partition_balance(self, name: str) -> int:
        """Max-minus-min partitions per broker for a topic (0 = balanced)."""
        counts = [0] * len(self.brokers)
        for b in self.brokers:
            counts[b.broker_id - 1] = sum(
                1 for t, _ in b.assignments if t == name
            )
        return max(counts) - min(counts)


def paper_kafka_cluster(total_cluster_cores: int = 36, topic: str = "events") -> KafkaCluster:
    """Five-broker Kafka deployment mirroring the paper's testbed.

    Partition count is set above ``total_cluster_cores`` per §6.1.
    """
    cluster = KafkaCluster(num_brokers=5)
    cluster.create_topic(
        topic,
        num_partitions=total_cluster_cores + 4,
        min_partitions=total_cluster_cores + 1,
    )
    return cluster
