"""Kafka partition model.

A partition is an append-only log.  To keep millions of simulated records
cheap, the log stores *segments* — ``(t0, t1, count)`` spans during which
records arrived at a uniform rate — rather than individual messages.
Offsets are exact; arrival timestamps inside a segment are interpolated
linearly, which matches a producer that spreads records evenly over the
production interval.

Lookups are O(log n) via binary search over parallel segment arrays —
the receiver polls every batch boundary for the lifetime of a run, so
linear scans here would dominate whole-experiment cost.

Appends *coalesce*: a segment that is exactly contiguous with the tail
segment and carries exactly the same arrival rate extends it in place
instead of growing the arrays.  A constant-rate producer ticking once a
second therefore keeps the log at one segment per rate change rather
than one per tick, which keeps :meth:`Partition.mean_arrival_time` (run
per partition per batch) away from long segment scans.  Interpolation
inside a merged segment is identical to the per-tick answer because the
per-record spacing is unchanged.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class Segment:
    """``count`` records appended uniformly over ``[t0, t1)``."""

    t0: float
    t1: float
    count: int
    base_offset: int

    def __post_init__(self) -> None:
        if self.t1 < self.t0:
            raise ValueError(f"segment end {self.t1} precedes start {self.t0}")
        if self.count < 0:
            raise ValueError(f"count must be >= 0, got {self.count}")
        if self.base_offset < 0:
            raise ValueError("base_offset must be >= 0")

    def timestamp_of(self, offset: int) -> float:
        """Arrival time of the record at absolute ``offset``."""
        if not (self.base_offset <= offset < self.base_offset + self.count):
            raise IndexError(f"offset {offset} outside segment")
        if self.count == 1:
            return self.t0
        frac = (offset - self.base_offset) / self.count
        return self.t0 + frac * (self.t1 - self.t0)


class Partition:
    """One ordered, append-only shard of a topic."""

    def __init__(self, partition_id: int) -> None:
        self.partition_id = partition_id
        # Parallel segment arrays (non-empty segments only).
        self._t0: List[float] = []
        self._t1: List[float] = []
        self._counts: List[int] = []
        self._bases: List[int] = []
        self._end_offset = 0
        self._last_t1 = 0.0
        self._nonempty_appends = 0

    @property
    def end_offset(self) -> int:
        """Offset one past the last appended record."""
        return self._end_offset

    @property
    def segment_count(self) -> int:
        """Number of non-empty segments (O(1), unlike ``segments``)."""
        return len(self._counts)

    @property
    def nonempty_appends(self) -> int:
        """Non-empty :meth:`append` calls so far (>= ``segment_count``).

        Unlike ``segment_count`` this is unaffected by coalescing, so it
        is a stable rotation key for round-robining remainders across
        partitions (see :meth:`repro.kafka.topic.Topic.append_uniform`).
        """
        return self._nonempty_appends

    @property
    def segments(self) -> Tuple[Segment, ...]:
        return tuple(
            Segment(t0=a, t1=b, count=c, base_offset=o)
            for a, b, c, o in zip(self._t0, self._t1, self._counts, self._bases)
        )

    def append(self, t0: float, t1: float, count: int) -> None:
        """Append ``count`` records spread uniformly over ``[t0, t1)``."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if t1 < t0:
            raise ValueError(f"segment end {t1} precedes start {t0}")
        if t0 < self._last_t1 - 1e-9:
            raise ValueError(
                f"append at t0={t0} overlaps previous segment ending at "
                f"{self._last_t1}"
            )
        self._last_t1 = max(self._last_t1, t1)
        if count == 0:
            return
        self._nonempty_appends += 1
        if self._counts:
            pt0 = self._t0[-1]
            pt1 = self._t1[-1]
            pcount = self._counts[-1]
            # Coalesce a contiguous same-rate extension.  Exact float
            # equality on purpose: the per-tick producer reuses the
            # previous tick's end as the next start, and cross-multiplied
            # rates are equal without division error when the tick counts
            # and durations repeat — any other append keeps its own
            # segment so interpolation never changes.
            if t0 == pt1 and count * (pt1 - pt0) == pcount * (t1 - t0):
                self._t1[-1] = t1
                self._counts[-1] = pcount + count
                self._end_offset += count
                return
        self._t0.append(t0)
        self._t1.append(t1)
        self._counts.append(count)
        self._bases.append(self._end_offset)
        self._end_offset += count

    def offset_at(self, t: float) -> int:
        """Number of records that have arrived strictly before time ``t``."""
        if t < 0:
            raise ValueError(f"t must be >= 0, got {t}")
        # Index of the first segment with t1 > t: all earlier segments are
        # fully arrived; that segment may be partially arrived.
        i = bisect.bisect_right(self._t1, t)
        if i == len(self._t0):
            return self._end_offset
        total = self._bases[i]
        if t > self._t0[i]:
            span = self._t1[i] - self._t0[i]
            frac = (t - self._t0[i]) / span if span > 0 else 1.0
            total += int(frac * self._counts[i])
        return total

    def timestamp_of(self, offset: int) -> float:
        """Arrival time of the record at ``offset``."""
        if not (0 <= offset < self._end_offset):
            raise IndexError(
                f"offset {offset} out of range [0, {self._end_offset})"
            )
        i = bisect.bisect_right(self._bases, offset) - 1
        seg = Segment(
            t0=self._t0[i],
            t1=self._t1[i],
            count=self._counts[i],
            base_offset=self._bases[i],
        )
        return seg.timestamp_of(offset)

    def mean_arrival_time(self, start_offset: int, end_offset: int) -> float:
        """Record-weighted mean arrival time over ``[start, end)`` offsets.

        Used for end-to-end latency accounting: the average delay of a
        batch's records is (output time − mean arrival time).
        """
        if end_offset <= start_offset:
            raise ValueError("empty offset range")
        if end_offset > self._end_offset:
            raise IndexError("end_offset beyond log end")
        total_time = 0.0
        total_count = 0
        # First segment overlapping the range.
        i = bisect.bisect_right(self._bases, start_offset) - 1
        i = max(i, 0)
        while i < len(self._t0) and self._bases[i] < end_offset:
            base, count = self._bases[i], self._counts[i]
            lo = max(start_offset, base)
            hi = min(end_offset, base + count)
            if hi > lo:
                # Mean timestamp of offsets [lo, hi) inside a uniform segment.
                mid_frac = ((lo + hi) / 2.0 - base) / count
                total_time += (
                    self._t0[i] + mid_frac * (self._t1[i] - self._t0[i])
                ) * (hi - lo)
                total_count += hi - lo
            i += 1
        return total_time / total_count
