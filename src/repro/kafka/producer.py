"""Rate-controlled Kafka producer.

The external data generator of §6.1 "sends data to Kafka Brokers at
varying data rates" with a uniform spread over partitions.  The producer
advances with simulation time: calling :meth:`produce_until` materializes
all records implied by the rate trace since the last call.

A producer-side ``rate_cap`` models the paper's note that "the input data
rate could also be restricted in the streaming data processing system to
avoid instantaneous surge rates (e.g., by controlling the Kafka producing
rate)" (§6.2.2) — and is the knob the back-pressure baseline actuates.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.datagen.rates import RateTrace
from repro.obs import catalog
from repro.obs.registry import NOOP_REGISTRY, MetricsRegistry

from .topic import Topic


class RateControlledProducer:
    """Feed a topic from a rate trace, in fixed production ticks."""

    def __init__(
        self,
        topic: Topic,
        trace: RateTrace,
        tick: float = 1.0,
        rate_cap: Optional[float] = None,
        count_only: bool = False,
    ) -> None:
        if tick <= 0:
            raise ValueError(f"tick must be positive, got {tick}")
        if rate_cap is not None and rate_cap <= 0:
            raise ValueError(f"rate_cap must be positive, got {rate_cap}")
        self.topic = topic
        self.trace = trace
        self.tick = float(tick)
        self.rate_cap = rate_cap
        #: Count-only fast path: materialize one segment per constant-rate
        #: span (via :meth:`RateTrace.constant_until`) instead of one per
        #: tick.  Topic-wide totals follow the trace integral exactly; the
        #: tick-level quantization of the default path is skipped, so the
        #: two modes are each deterministic but not byte-identical to one
        #: another.  Meant for cost-model-driven runs that never execute
        #: workload kernels (the sweep runner's cells).
        self.count_only = bool(count_only)
        self.surge = 1.0
        self._produced_until = 0.0
        self.total_produced = 0
        self.total_throttled = 0
        self.instrument(NOOP_REGISTRY)

    def instrument(self, registry: MetricsRegistry) -> None:
        """Bind telemetry instruments (no-op registry by default).

        Both series carry a ``topic`` label, bound once here so the
        per-tick production loop stays label-free.
        """
        self._m_produced = catalog.instrument(
            registry, "repro_kafka_records_produced_total"
        ).labels(topic=self.topic.name)
        self._m_throttled = catalog.instrument(
            registry, "repro_kafka_records_throttled_total"
        ).labels(topic=self.topic.name)

    @property
    def produced_until(self) -> float:
        """Simulation time up to which records have been materialized."""
        return self._produced_until

    def set_rate_cap(self, cap: Optional[float]) -> None:
        """Change the producer-side throttle (None removes it)."""
        if cap is not None and cap <= 0:
            raise ValueError(f"rate_cap must be positive, got {cap}")
        self.rate_cap = cap

    def set_surge(self, multiplier: float) -> None:
        """Multiply the trace rate (chaos data-skew burst; 1.0 = normal).

        Applied on top of the configured trace, before the rate cap, so a
        burst can both inflate batches and trip the back-pressure
        throttle — the two ways a real skew event hurts.
        """
        if multiplier <= 0:
            raise ValueError(f"surge multiplier must be positive, got {multiplier}")
        self.surge = float(multiplier)

    def produce_until(self, t: float) -> int:
        """Materialize all arrivals in ``[produced_until, t)``.

        Returns the number of records produced by this call.  Throttled
        records (above ``rate_cap``) are counted in ``total_throttled``
        and dropped, modeling an upstream queue we do not simulate —
        exactly the data-loss risk the paper warns unstable systems incur.
        """
        if t < self._produced_until:
            raise ValueError(
                f"produce_until({t}) precedes already-produced time "
                f"{self._produced_until}"
            )
        produced = 0
        while self._produced_until + 1e-12 < t:
            t0 = self._produced_until
            if self.count_only:
                # One production span per constant-rate region, but never
                # shorter than a tick (sub-tick regions integrate across
                # their boundary exactly as the default path does).
                t1 = min(t, max(self.trace.constant_until(t0), t0 + self.tick))
            else:
                t1 = min(t0 + self.tick, t)
            want = self.trace.records_between(t0, t1)
            if self.surge != 1.0:
                want = int(round(want * self.surge))
            if self.rate_cap is not None:
                allowed = int(math.floor(self.rate_cap * (t1 - t0)))
                if want > allowed:
                    self.total_throttled += want - allowed
                    self._m_throttled.inc(want - allowed)
                    want = allowed
            self.topic.append_uniform(t0, t1, want)
            produced += want
            self._produced_until = t1
        self.total_produced += produced
        if produced:
            self._m_produced.inc(produced)
        return produced
