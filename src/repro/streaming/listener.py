"""Streaming listener.

"We design Spark Streaming Listener to report real-time system status to
NoStop in JSON format.  Based on each newly updated performance vector,
NoStop computes the next-step configuration parameters" (§4.3).

The listener receives a callback per completed batch and renders status
reports as JSON; NoStop's metric collector subscribes to it rather than
touching simulator internals, mirroring the paper's architecture where
the optimizer lives outside the engine.
"""

from __future__ import annotations

import json
from typing import Callable, List, Optional

from .metrics import BatchInfo, StreamingMetrics

BatchCallback = Callable[[BatchInfo], None]


class StreamingListener:
    """Collects :class:`BatchInfo` events and serves JSON status reports."""

    def __init__(self) -> None:
        self.metrics = StreamingMetrics()
        self._subscribers: List[BatchCallback] = []

    def subscribe(self, callback: BatchCallback) -> None:
        """Register a per-batch callback (NoStop's metric collector)."""
        self._subscribers.append(callback)

    def unsubscribe(self, callback: BatchCallback) -> None:
        self._subscribers.remove(callback)

    def on_batch_completed(self, info: BatchInfo) -> None:
        """Record a completed batch and fan out to subscribers."""
        self.metrics.record(info)
        for cb in self._subscribers:
            cb(info)

    # -- status reports -------------------------------------------------

    def latest_status(self) -> Optional[dict]:
        """Most recent performance vector, or None before the first batch."""
        last = self.metrics.last
        return last.to_dict() if last else None

    def status_json(self, last_n: int = 1) -> str:
        """JSON status report covering the last ``last_n`` batches."""
        if last_n < 1:
            raise ValueError("last_n must be >= 1")
        recent = self.metrics.recent(last_n)
        payload = {
            "batches": [b.to_dict() for b in recent],
            "totalBatches": len(self.metrics),
            "totalRecords": self.metrics.total_records(),
        }
        return json.dumps(payload)

    @staticmethod
    def parse_status(report: str) -> dict:
        """Parse a :meth:`status_json` report back into a dict."""
        payload = json.loads(report)
        if "batches" not in payload:
            raise ValueError("malformed status report: missing 'batches'")
        return payload
