"""Streaming listener.

"We design Spark Streaming Listener to report real-time system status to
NoStop in JSON format.  Based on each newly updated performance vector,
NoStop computes the next-step configuration parameters" (§4.3).

The listener receives a callback per completed batch and renders status
reports as JSON; NoStop's metric collector subscribes to it rather than
touching simulator internals, mirroring the paper's architecture where
the optimizer lives outside the engine.  With telemetry attached, the
listener is also where per-batch streaming metrics are recorded —
counters for batches/records and histograms for processing time,
scheduling delay, and end-to-end delay.
"""

from __future__ import annotations

import json
from typing import Callable, List, Optional

from repro.obs import catalog
from repro.obs.tracer import NOOP_TELEMETRY, Telemetry

from .metrics import BatchInfo, StreamingMetrics

BatchCallback = Callable[[BatchInfo], None]


class StreamingListener:
    """Collects :class:`BatchInfo` events and serves JSON status reports."""

    def __init__(self, telemetry: Optional[Telemetry] = None) -> None:
        self.metrics = StreamingMetrics()
        self._subscribers: List[BatchCallback] = []
        # Immutable fan-out snapshot, rebuilt on (un)subscribe.  Dispatch
        # happens once per batch on the hot path; copying the subscriber
        # list there cost an allocation per batch for a list that almost
        # never changes.
        self._fanout: tuple = ()
        self.telemetry = telemetry or NOOP_TELEMETRY
        registry = self.telemetry.metrics
        self._m_batches = catalog.instrument(
            registry, "repro_streaming_batches_total"
        )
        self._m_records = catalog.instrument(
            registry, "repro_streaming_records_total"
        )
        self._m_unstable = catalog.instrument(
            registry, "repro_streaming_unstable_batches_total"
        )
        self._m_proc = catalog.instrument(
            registry, "repro_streaming_processing_seconds"
        )
        self._m_sched = catalog.instrument(
            registry, "repro_streaming_scheduling_delay_seconds"
        )
        self._m_e2e = catalog.instrument(
            registry, "repro_streaming_end_to_end_delay_seconds"
        )
        self._m_batch_records = catalog.instrument(
            registry, "repro_streaming_batch_records_count"
        )

    def subscribe(self, callback: BatchCallback) -> None:
        """Register a per-batch callback (NoStop's metric collector)."""
        self._subscribers.append(callback)
        self._fanout = tuple(self._subscribers)

    def watch(self, observer) -> None:
        """Attach a judge-style observer (anything with ``observe_batch``).

        Sugar over :meth:`subscribe` for the observability layer: the SLO
        evaluator, burn-rate alerter, and the run judge all expose an
        ``observe_batch(info)`` method and see every completed batch in
        completion order, exactly as NoStop's own collector does.
        """
        self.subscribe(observer.observe_batch)

    def unwatch(self, observer) -> None:
        """Detach a previously watched observer (idempotent)."""
        self.unsubscribe(observer.observe_batch)

    def unsubscribe(self, callback: BatchCallback) -> None:
        """Remove a callback; a no-op if it was never registered.

        Tolerating unknown callbacks makes teardown idempotent — a
        subscriber that lost the race (or already removed itself from
        within its own callback) can safely unsubscribe again.
        """
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass
        else:
            self._fanout = tuple(self._subscribers)

    def on_batch_completed(self, info: BatchInfo) -> None:
        """Record a completed batch and fan out to subscribers.

        Iterates over a snapshot of the subscriber list, so a callback
        may unsubscribe itself (or others) without corrupting the
        iteration; subscribers added mid-fan-out see the *next* batch.
        """
        self.metrics.record(info)
        if self.telemetry.enabled:
            self._m_batches.inc()
            self._m_records.inc(info.records)
            if not info.stable:
                self._m_unstable.inc()
            self._m_proc.observe(info.processing_time)
            self._m_sched.observe(info.scheduling_delay)
            self._m_e2e.observe(info.end_to_end_delay)
            self._m_batch_records.observe(info.records)
            emitter = self.telemetry.emitter
            if emitter is not None:
                emitter.emit(
                    {
                        "event": "batch_completed",
                        "time": info.batch_time,
                        "records": info.records,
                        "processingSeconds": info.processing_time,
                        "schedulingDelaySeconds": info.scheduling_delay,
                        "stable": info.stable,
                    },
                    now=info.batch_time,
                )
        for cb in self._fanout:
            cb(info)

    # -- status reports -------------------------------------------------

    def latest_status(self) -> Optional[dict]:
        """Most recent performance vector, or None before the first batch."""
        last = self.metrics.last
        return last.to_dict() if last else None

    def status_json(self, last_n: int = 1) -> str:
        """JSON status report covering the last ``last_n`` batches."""
        if last_n < 1:
            raise ValueError("last_n must be >= 1")
        recent = self.metrics.recent(last_n)
        payload = {
            "batches": [b.to_dict() for b in recent],
            "totalBatches": len(self.metrics),
            "totalRecords": self.metrics.total_records(),
        }
        return json.dumps(payload)

    @staticmethod
    def parse_status(report: str) -> dict:
        """Parse a :meth:`status_json` report back into a dict."""
        payload = json.loads(report)
        if "batches" not in payload:
            raise ValueError("malformed status report: missing 'batches'")
        return payload
