"""Streaming batch metrics.

Definitions follow the paper exactly:

* **batch interval** — wall time between consecutive batch closes (the
  tunable parameter);
* **batch processing time** — engine time from job start to last task
  completion;
* **batch schedule delay** — "the time duration a batch must wait before
  it starts to be processed" (§3.2): zero when the engine is idle at the
  batch boundary, positive when earlier batches are still running;
* **end-to-end delay** — "the duration from the time when the system
  receives a data entry to the time when a corresponding output is
  produced" (§1), averaged over the records in a batch.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


def percentile_sorted(s: Sequence[float], q: float) -> float:
    """Exact ``q``-quantile of an *already sorted* sample.

    The workhorse behind :func:`percentile` and the cached views in
    :class:`StreamingMetrics`: callers that maintain a sorted series pay
    O(1) per query instead of re-sorting the full history every call.
    """
    if not s:
        raise ValueError("no values to take a percentile of")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if len(s) == 1:
        return s[0]
    pos = q * (len(s) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(s) - 1)
    frac = pos - lo
    return s[lo] + (s[hi] - s[lo]) * frac


def percentile(values: Sequence[float], q: float) -> float:
    """Exact ``q``-quantile (0..1) with linear interpolation.

    Unlike the bucket-interpolated estimates of
    :class:`~repro.obs.registry.Histogram`, this works on the raw sample
    and is exact — the right tool for experiment reports, where the full
    batch history is in hand anyway.
    """
    if not values:
        raise ValueError("no values to take a percentile of")
    return percentile_sorted(sorted(float(v) for v in values), q)


def percentiles(
    values: Sequence[float], qs: Sequence[float] = (0.5, 0.95, 0.99)
) -> Tuple[float, ...]:
    """The usual report triple (p50, p95, p99) in one call."""
    if not values:
        raise ValueError("no values to take a percentile of")
    s = sorted(float(v) for v in values)
    return tuple(percentile_sorted(s, q) for q in qs)


@dataclass(frozen=True)
class BatchInfo:
    """Complete record of one processed micro-batch."""

    batch_index: int
    batch_time: float
    """Simulation time at which the batch closed (arrival cutoff)."""
    interval: float
    """Batch interval in force when this batch was formed (seconds)."""
    records: int
    num_executors: int
    mean_arrival_time: float
    """Record-weighted mean arrival time of the batch's records."""
    processing_start: float
    processing_end: float
    first_after_reconfig: bool = False
    """True for the first batch processed after a configuration change
    (discarded by NoStop's metric collector, §5.4)."""

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError(f"interval must be positive, got {self.interval}")
        if self.records < 0:
            raise ValueError("records must be >= 0")
        if self.processing_start < self.batch_time - 1e-9:
            raise ValueError(
                f"batch {self.batch_index}: processing started at "
                f"{self.processing_start} before batch closed at {self.batch_time}"
            )
        if self.processing_end < self.processing_start:
            raise ValueError("processing_end precedes processing_start")

    @property
    def processing_time(self) -> float:
        """Batch processing time (seconds)."""
        return self.processing_end - self.processing_start

    @property
    def scheduling_delay(self) -> float:
        """Batch schedule delay (seconds); 0 when processed immediately."""
        return self.processing_start - self.batch_time

    @property
    def end_to_end_delay(self) -> float:
        """Mean record delay: output time minus mean arrival time."""
        return self.processing_end - self.mean_arrival_time

    @property
    def stable(self) -> bool:
        """Paper's stability condition for this batch."""
        return self.processing_time <= self.interval

    def to_dict(self) -> Dict[str, float]:
        """Flat dict used for the listener's JSON status reports."""
        return {
            "batchIndex": self.batch_index,
            "batchTime": self.batch_time,
            "batchInterval": self.interval,
            "numRecords": self.records,
            "numExecutors": self.num_executors,
            "schedulingDelay": self.scheduling_delay,
            "processingTime": self.processing_time,
            "endToEndDelay": self.end_to_end_delay,
            "firstAfterReconfig": self.first_after_reconfig,
        }


@dataclass
class StreamingMetrics:
    """Rolling aggregate over processed batches.

    Percentile queries run against lazily-synchronized sorted views of
    the processing-time and end-to-end-delay series: new batches are
    merged in with ``bisect.insort`` on the next query instead of
    re-sorting the full history on every call — controllers that poll
    tail delay each round stay O(log n) per batch instead of
    O(n log n).
    """

    batches: List[BatchInfo] = field(default_factory=list)
    _pt_sorted: List[float] = field(default_factory=list, repr=False, compare=False)
    _delay_sorted: List[float] = field(default_factory=list, repr=False, compare=False)
    _sorted_upto: int = field(default=0, repr=False, compare=False)
    _synced_list: Optional[List[BatchInfo]] = field(
        default=None, repr=False, compare=False
    )
    _synced_last_index: int = field(default=-1, repr=False, compare=False)

    def record(self, info: BatchInfo) -> None:
        if self.batches and info.batch_index <= self.batches[-1].batch_index:
            raise ValueError(
                f"batch index {info.batch_index} not increasing "
                f"(last was {self.batches[-1].batch_index})"
            )
        self.batches.append(info)

    def _sorted_views(self) -> Tuple[List[float], List[float]]:
        """Sorted processing-time / end-to-end-delay series, synced."""
        n = len(self.batches)
        # A shrunken series is not the only external mutation that
        # invalidates the incremental merge: ``batches`` may be rebound
        # to a new list, or truncated and refilled back to equal-or-
        # greater length.  Both leave ``_sorted_upto <= n`` while the
        # synced prefix no longer matches, which would silently merge
        # stale entries into the views.  Track the list identity and the
        # index of the last synced batch so any replacement forces a
        # full rebuild.
        prefix_intact = (
            self._synced_list is self.batches
            and (
                self._sorted_upto == 0
                or (
                    self._sorted_upto <= n
                    and self.batches[self._sorted_upto - 1].batch_index
                    == self._synced_last_index
                )
            )
        )
        if not prefix_intact:
            self._pt_sorted = sorted(b.processing_time for b in self.batches)
            self._delay_sorted = sorted(b.end_to_end_delay for b in self.batches)
        else:
            for b in self.batches[self._sorted_upto:]:
                insort(self._pt_sorted, b.processing_time)
                insort(self._delay_sorted, b.end_to_end_delay)
        self._sorted_upto = n
        self._synced_list = self.batches
        self._synced_last_index = self.batches[-1].batch_index if n else -1
        return self._pt_sorted, self._delay_sorted

    def __len__(self) -> int:
        return len(self.batches)

    @property
    def last(self) -> Optional[BatchInfo]:
        return self.batches[-1] if self.batches else None

    def recent(self, n: int) -> List[BatchInfo]:
        if n < 0:
            raise ValueError("n must be >= 0")
        return self.batches[-n:] if n else []

    def mean_processing_time(self, last_n: Optional[int] = None) -> float:
        batch = self.batches if last_n is None else self.recent(last_n)
        if not batch:
            raise ValueError("no batches recorded")
        return sum(b.processing_time for b in batch) / len(batch)

    def mean_end_to_end_delay(self, last_n: Optional[int] = None) -> float:
        batch = self.batches if last_n is None else self.recent(last_n)
        if not batch:
            raise ValueError("no batches recorded")
        return sum(b.end_to_end_delay for b in batch) / len(batch)

    def processing_time_percentile(self, q: float) -> float:
        pt, _ = self._sorted_views()
        return percentile_sorted(pt, q)

    def end_to_end_delay_percentile(self, q: float) -> float:
        _, delays = self._sorted_views()
        return percentile_sorted(delays, q)

    def delay_percentiles(
        self, qs: Sequence[float] = (0.5, 0.95, 0.99)
    ) -> Tuple[float, ...]:
        """Tail view of end-to-end delay — mean alone hides instability."""
        _, delays = self._sorted_views()
        if not delays:
            raise ValueError("no values to take a percentile of")
        return tuple(percentile_sorted(delays, q) for q in qs)

    def total_records(self) -> int:
        return sum(b.records for b in self.batches)

    def unstable_fraction(self) -> float:
        """Fraction of batches violating interval >= processing time."""
        if not self.batches:
            return 0.0
        return sum(1 for b in self.batches if not b.stable) / len(self.batches)
