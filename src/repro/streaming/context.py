"""Streaming context: the user-facing simulation facade.

A :class:`StreamingContext` wires the substrates together the way the
paper's Fig. 4 architecture does — Kafka-fed receiver → batch queue →
micro-batch engine over a dynamically sized executor pool — and exposes
exactly the control surface NoStop needs:

* :meth:`change_configuration` — runtime adjustment of batch interval and
  executor count without restarting ("NoStop is capable of optimizing
  system configurations online without rebooting the entire cluster");
* :meth:`advance_batches` — run the pipeline forward;
* :attr:`listener` — the JSON status reporter NoStop subscribes to.

Time semantics: configuration changes take effect at the *next batch
boundary* (the next formed batch uses the new interval; jobs started
after the change use the new executor pool), matching how the authors'
modified Spark applies reconfigurations between batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.resource_manager import ResourceManager
from repro.datagen.generator import DataGenerator
from repro.engine.faults import NO_FAULTS, FaultModel
from repro.engine.overhead import DEFAULT_OVERHEAD, OverheadModel
from repro.engine.task_scheduler import NoiseModel, TaskScheduler
from repro.obs import catalog
from repro.obs.span import NOOP_SPAN, Span
from repro.obs.tracer import NOOP_TELEMETRY, Telemetry
from repro.workloads.base import Workload

from .batch_queue import BatchQueue, QueuedBatch
from .listener import StreamingListener
from .metrics import BatchInfo
from .receiver import Receiver
from .simulator import MicroBatchEngine


@dataclass(frozen=True)
class StreamingConfig:
    """The two tunables of the paper: batch interval and executor count."""

    batch_interval: float
    num_executors: int

    def __post_init__(self) -> None:
        if self.batch_interval <= 0:
            raise ValueError(
                f"batch_interval must be positive, got {self.batch_interval}"
            )
        if self.num_executors < 1:
            raise ValueError(
                f"num_executors must be >= 1, got {self.num_executors}"
            )


class StreamingContext:
    """End-to-end simulated Spark Streaming application."""

    def __init__(
        self,
        cluster: Cluster,
        workload: Workload,
        generator: DataGenerator,
        config: StreamingConfig,
        seed: int = 0,
        overhead: OverheadModel = DEFAULT_OVERHEAD,
        noise: NoiseModel = NoiseModel(),
        queue_max_length: Optional[int] = None,
        faults: FaultModel = NO_FAULTS,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.cluster = cluster
        self.workload = workload
        self.generator = generator
        self.rng = np.random.default_rng(seed)
        self.overhead = overhead
        self.telemetry = telemetry or NOOP_TELEMETRY

        self.resource_manager = ResourceManager(cluster)
        self.resource_manager.instrument(self.telemetry.metrics)
        self.resource_manager.scale_to(config.num_executors, now=0.0)
        self.receiver = Receiver(generator, telemetry=self.telemetry)
        self.queue = BatchQueue(max_length=queue_max_length)
        self.listener = StreamingListener(telemetry=self.telemetry)
        self.engine = MicroBatchEngine(
            self.resource_manager,
            TaskScheduler(overhead=overhead, noise=noise, faults=faults),
            self.listener,
            self.rng,
            telemetry=self.telemetry,
        )

        self._interval = config.batch_interval
        #: Simulation time of the most recent batch boundary.
        self.time = 0.0
        self.config_changes = 0
        #: Callbacks invoked with the upcoming boundary time before each
        #: batch closes — the chaos engine's injection point.
        self._boundary_hooks: List[Callable[[float], None]] = []
        #: Monotonic batch-trace sequence (trace ids stay unique even if
        #: job ids ever restart).
        self._trace_seq = 0
        #: Root span of the batch currently being formed; chaos-engine
        #: boundary hooks attach fault span events here.
        self.current_batch_span: Span = NOOP_SPAN
        registry = self.telemetry.metrics
        self._m_reconfigs = catalog.instrument(
            registry, "repro_streaming_reconfigurations_total"
        )
        self._m_queue_len = catalog.instrument(
            registry, "repro_streaming_queue_length"
        )
        self._m_dropped = catalog.instrument(
            registry, "repro_streaming_batches_dropped_total"
        )
        self._m_interval = catalog.instrument(
            registry, "repro_streaming_batch_interval_seconds"
        )
        self._m_executors = catalog.instrument(
            registry, "repro_streaming_executors"
        )
        self._m_interval.set(self._interval)
        self._m_executors.set(self.num_executors)

    # -- configuration ----------------------------------------------------

    @property
    def batch_interval(self) -> float:
        return self._interval

    @property
    def num_executors(self) -> int:
        return self.resource_manager.executor_count

    @property
    def config(self) -> StreamingConfig:
        return StreamingConfig(self._interval, self.num_executors)

    def change_configuration(
        self,
        batch_interval: Optional[float] = None,
        num_executors: Optional[int] = None,
        partitions: Optional[int] = None,
        executor_cores: Optional[int] = None,
    ) -> None:
        """Runtime reconfiguration (the ``changeConfigurations(θ)`` of
        Table 1).  No-ops when all supplied values already match.

        ``partitions`` retunes the workload's per-stage task count — the
        third tunable of the paper's future-work multi-parameter
        extension; it takes effect on the next built job.

        ``executor_cores`` resizes every executor (the fourth tunable):
        the pool is relaunched at the new sizing, so the next batch pays
        the executor-startup charge — core resizes are deliberately the
        most expensive move a tuner can make.
        """
        new_interval = self._interval if batch_interval is None else batch_interval
        new_execs = self.num_executors if num_executors is None else num_executors
        if new_interval <= 0:
            raise ValueError(f"batch_interval must be positive, got {new_interval}")
        if new_execs < 1:
            raise ValueError(f"num_executors must be >= 1, got {new_execs}")
        if partitions is not None and partitions < 1:
            raise ValueError(f"partitions must be >= 1, got {partitions}")
        if executor_cores is not None and executor_cores < 1:
            raise ValueError(
                f"executor_cores must be >= 1, got {executor_cores}"
            )
        changed = False
        # Resize/scale executors before committing the interval: pool
        # changes are the only steps that can fail (insufficient
        # capacity during a chaos node outage), and doing them first —
        # with the resize's own atomic pre-check covering the combined
        # (cores, count) move — keeps the change transactional: a raised
        # InsufficientResourcesError leaves the configuration exactly as
        # it was.
        if (
            executor_cores is not None
            and executor_cores != self.resource_manager.executor_cores
        ):
            self.resource_manager.resize_cores(
                executor_cores, now=self.time, target=new_execs
            )
            changed = True
        elif new_execs != self.num_executors:
            self.resource_manager.scale_to(new_execs, now=self.time)
            changed = True
        if abs(new_interval - self._interval) > 1e-12:
            self._interval = new_interval
            changed = True
        if partitions is not None and partitions != self.workload.partitions:
            self.workload.partitions = partitions
            changed = True
        if changed:
            self.config_changes += 1
            self._m_reconfigs.inc()
            self._m_interval.set(self._interval)
            self._m_executors.set(self.num_executors)
            self.engine.note_reconfiguration(self.time, self.overhead.reconfig_pause)
            # Keep the traces around a configuration change: the batch
            # absorbing the pause plus the first batches under the new
            # config are exactly what before/after delay comparisons need.
            self.telemetry.tracer.note_interest(
                self.time, self.time + 2 * self._interval, "reconfig"
            )

    # -- simulation ---------------------------------------------------------

    def add_boundary_hook(self, hook: Callable[[float], None]) -> None:
        """Register a callback fired with each upcoming boundary time.

        Hooks run *before* the batch at that boundary closes, so a hook
        that crashes an executor or stalls the receiver affects the batch
        being formed — the chaos engine's injection point.
        """
        self._boundary_hooks.append(hook)

    def advance_one_batch(self) -> List[BatchInfo]:
        """Advance to the next batch boundary.

        Closes one batch, enqueues its job, and starts every queued job
        whose start time precedes the new boundary.  Returns the batches
        completed by this step (possibly none while a long job from an
        unstable phase is still running, possibly several as the engine
        catches up).
        """
        boundary = self.time + self._interval
        tracer = self.telemetry.tracer
        traced = tracer.enabled
        root = NOOP_SPAN
        if traced:
            self._trace_seq += 1
            root = tracer.start_trace(
                "batch",
                trace_id=f"batch-{self._trace_seq:06d}",
                start=self.time,
                interval=self._interval,
            )
            self.current_batch_span = root
        for hook in self._boundary_hooks:
            hook(boundary)
        received = self.receiver.close_batch(boundary)
        if traced:
            # Ingest covers the arrival window that became this batch:
            # the Kafka fetch (direct-stream offset ranges) and the
            # receiver-side block formation over the same interval.
            ingest = tracer.start_span("ingest", root, self.time)
            kafka_span = tracer.start_span(
                "ingest.kafka", ingest, self.time,
                records=received.records, backlog=self.receiver.backlog,
            )
            kafka_span.finish(boundary)
            blocks = tracer.start_span(
                "ingest.blocks", ingest, self.time,
                mean_arrival=received.mean_arrival_time,
            )
            blocks.finish(boundary)
            ingest.finish(boundary)
        job = self.workload.build_job(boundary, received.records, self.rng)
        if traced:
            root.set_attribute("batch_index", job.job_id)
            root.set_attribute("records", received.records)
        self.queue.enqueue(
            QueuedBatch(
                job=job,
                enqueued_at=boundary,
                mean_arrival_time=received.mean_arrival_time,
                interval=self._interval,
                trace=root.context if traced else None,
            )
        )
        evicted = self.queue.last_evicted
        if evicted is not None:
            self._m_dropped.inc()
            if evicted.trace is not None:
                dropped_root = tracer.span_for(evicted.trace)
                dropped_root.add_event("dropped", boundary, reason="queue_full")
                dropped_root.set_attribute("dropped", True)
                dropped_root.finish(boundary)
        self.time = boundary
        completed = self.engine.drain(self.queue, until=boundary + self._interval)
        if self.telemetry.enabled:
            self._m_queue_len.set(len(self.queue))
        self.current_batch_span = NOOP_SPAN
        return completed

    def advance_batches(self, n: int) -> List[BatchInfo]:
        """Advance ``n`` batch boundaries; returns all completed batches."""
        if n < 0:
            raise ValueError("n must be >= 0")
        completed: List[BatchInfo] = []
        for _ in range(n):
            completed.extend(self.advance_one_batch())
        return completed

    def advance_until(self, t: float) -> List[BatchInfo]:
        """Advance batch boundaries until simulation time reaches ``t``."""
        completed: List[BatchInfo] = []
        while self.time + self._interval <= t:
            completed.extend(self.advance_one_batch())
        return completed

    # -- fault injection -----------------------------------------------------

    def inject_executor_failure(self, executor_id: Optional[int] = None) -> int:
        """Crash one executor (unplanned loss); returns its id.

        The pool shrinks until the next :meth:`change_configuration` with
        an explicit executor count restores it — which NoStop's next
        Adjust call does automatically.
        """
        return self.resource_manager.fail_executor(executor_id)

    # -- status -----------------------------------------------------------

    @property
    def pending_batches(self) -> int:
        """Batches formed but not yet started (queue occupancy)."""
        return len(self.queue)

    def is_stable(self, last_n: int = 5) -> bool:
        """Stability over the last ``last_n`` completed batches."""
        recent = self.listener.metrics.recent(last_n)
        if not recent:
            return True
        return all(b.stable for b in recent)
