"""Spark Streaming micro-batch substrate (discrete-event simulation).

Receiver → batch queue → serialized micro-batch engine, with runtime
reconfiguration of batch interval and executor count, a JSON-reporting
listener (paper Fig. 4), and Spark's PID back-pressure estimator.
"""

from .backpressure import BackPressureController, PIDRateEstimator
from .batch_queue import BatchQueue, QueuedBatch
from .config_params import (
    SPARK_STREAMING_PARAMS,
    ParamSpec,
    SparkStreamingConf,
    deploy_from_conf,
)
from .context import StreamingConfig, StreamingContext
from .listener import StreamingListener
from .metrics import BatchInfo, StreamingMetrics
from .receiver import ReceivedBatch, Receiver
from .simulator import MicroBatchEngine

__all__ = [
    "BackPressureController",
    "BatchInfo",
    "BatchQueue",
    "MicroBatchEngine",
    "PIDRateEstimator",
    "QueuedBatch",
    "ParamSpec",
    "ReceivedBatch",
    "SPARK_STREAMING_PARAMS",
    "SparkStreamingConf",
    "Receiver",
    "StreamingConfig",
    "StreamingContext",
    "StreamingListener",
    "StreamingMetrics",
    "deploy_from_conf",
]
