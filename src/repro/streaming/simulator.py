"""Micro-batch engine: serialized job execution over the batch queue.

Spark Streaming (with the default ``spark.streaming.concurrentJobs = 1``)
processes one batch job at a time; a batch whose predecessor is still
running waits in the queue and accrues *schedule delay*.  The engine here
owns the engine-busy timeline, drains the queue causally (a job is
started only once simulated time has reached its start), and emits a
:class:`~repro.streaming.metrics.BatchInfo` per completed batch.

When telemetry is attached, every started job continues its batch's
trace: a ``queue`` span covering the wait from enqueue to job start,
then ``schedule`` / ``execute`` spans emitted by the task scheduler, and
finally the batch root span is closed at the job's finish time.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.cluster.resource_manager import ResourceManager
from repro.engine.task_scheduler import JobRun, TaskScheduler
from repro.obs import catalog
from repro.obs.tracer import NOOP_TELEMETRY, Telemetry

from .batch_queue import BatchQueue, QueuedBatch
from .listener import StreamingListener
from .metrics import BatchInfo


class MicroBatchEngine:
    """Drains a :class:`BatchQueue` one job at a time."""

    def __init__(
        self,
        resource_manager: ResourceManager,
        scheduler: TaskScheduler,
        listener: StreamingListener,
        rng: np.random.Generator,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.resource_manager = resource_manager
        self.scheduler = scheduler
        self.listener = listener
        self.rng = rng
        self.telemetry = telemetry or NOOP_TELEMETRY
        #: Time at which the engine finishes its current job (busy until).
        self.free_at = 0.0
        self.jobs_run = 0
        #: cumulative transient task failures across all jobs
        self.total_task_failures = 0
        #: Set by a configuration change; the next started job is flagged
        #: ``first_after_reconfig`` and the flag clears.
        self._reconfig_pending = False
        #: Cumulative reconfiguration pause injected into ``free_at``.
        #: Scheduling-delay slack beyond the backlog identity is bounded
        #: by this total — the invariant engine checks exactly that.
        self.total_pause_injected = 0.0
        self.last_runs: List[JobRun] = []
        self.keep_runs = False
        metrics = self.telemetry.metrics
        self._m_jobs = catalog.instrument(metrics, "repro_engine_jobs_total")
        self._m_task_failures = catalog.instrument(
            metrics, "repro_engine_task_failures_total"
        )
        self._m_stage_seconds = catalog.instrument(
            metrics, "repro_engine_stage_seconds"
        )

    def note_reconfiguration(self, now: float, pause: float) -> None:
        """Account for a runtime configuration change.

        The engine pauses briefly (driver-side coordination) and the next
        job is marked as the first after the change so metric collectors
        can discard it (§5.4).
        """
        if pause < 0:
            raise ValueError("pause must be >= 0")
        self.free_at = max(self.free_at, now) + pause
        self.total_pause_injected += pause
        self._reconfig_pending = True

    def drain(self, queue: BatchQueue, until: float) -> List[BatchInfo]:
        """Start every queued job whose start time falls before ``until``.

        Returns the batches started by this call (each already completed
        in simulated time — job durations are deterministic once started).
        """
        completed: List[BatchInfo] = []
        while not queue.empty:
            head_time = queue._queue[0].enqueued_at  # peek
            start = max(head_time, self.free_at)
            if start >= until:
                break
            qb = queue.dequeue(start)
            info = self._run(qb, start)
            completed.append(info)
        return completed

    def _run(self, qb: QueuedBatch, start: float) -> BatchInfo:
        executors = self.resource_manager.executors
        tracer = self.telemetry.tracer
        if tracer.enabled and qb.trace is not None:
            queue_span = tracer.start_span("queue", qb.trace, qb.enqueued_at)
            queue_span.finish(start)
            run = self.scheduler.run_job(
                qb.job, executors, start, self.rng,
                tracer=tracer, parent=qb.trace,
            )
        else:
            run = self.scheduler.run_job(qb.job, executors, start, self.rng)
        self.free_at = run.finish
        self.jobs_run += 1
        self.total_task_failures += run.task_failures
        self._m_jobs.inc()
        if run.task_failures:
            self._m_task_failures.inc(run.task_failures)
        if self.telemetry.enabled:
            for sr in run.stage_runs:
                self._m_stage_seconds.observe(sr.duration)
        if self.keep_runs:
            self.last_runs.append(run)
        info = BatchInfo(
            batch_index=qb.job.job_id,
            batch_time=qb.enqueued_at,
            interval=qb.interval,
            records=qb.job.records,
            num_executors=len(executors),
            mean_arrival_time=qb.mean_arrival_time,
            processing_start=start,
            processing_end=run.finish,
            first_after_reconfig=self._reconfig_pending,
        )
        self._reconfig_pending = False
        if tracer.enabled and qb.trace is not None:
            root = tracer.span_for(qb.trace)
            root.set_attribute("processing_time", info.processing_time)
            root.set_attribute("scheduling_delay", info.scheduling_delay)
            root.set_attribute("executors", len(executors))
            root.set_attribute("task_failures", run.task_failures)
            if info.first_after_reconfig:
                root.set_attribute("first_after_reconfig", True)
            root.finish(run.finish)
        self.listener.on_batch_completed(info)
        return info

    def next_start_time(self, queue: BatchQueue) -> Optional[float]:
        """When the head-of-queue job would start, or None if empty."""
        if queue.empty:
            return None
        return max(queue._queue[0].enqueued_at, self.free_at)
