"""Micro-batch engine: serialized job execution over the batch queue.

Spark Streaming (with the default ``spark.streaming.concurrentJobs = 1``)
processes one batch job at a time; a batch whose predecessor is still
running waits in the queue and accrues *schedule delay*.  The engine here
owns the engine-busy timeline, drains the queue causally (a job is
started only once simulated time has reached its start), and emits a
:class:`~repro.streaming.metrics.BatchInfo` per completed batch.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.cluster.resource_manager import ResourceManager
from repro.engine.task_scheduler import JobRun, TaskScheduler

from .batch_queue import BatchQueue, QueuedBatch
from .listener import StreamingListener
from .metrics import BatchInfo


class MicroBatchEngine:
    """Drains a :class:`BatchQueue` one job at a time."""

    def __init__(
        self,
        resource_manager: ResourceManager,
        scheduler: TaskScheduler,
        listener: StreamingListener,
        rng: np.random.Generator,
    ) -> None:
        self.resource_manager = resource_manager
        self.scheduler = scheduler
        self.listener = listener
        self.rng = rng
        #: Time at which the engine finishes its current job (busy until).
        self.free_at = 0.0
        self.jobs_run = 0
        #: cumulative transient task failures across all jobs
        self.total_task_failures = 0
        #: Set by a configuration change; the next started job is flagged
        #: ``first_after_reconfig`` and the flag clears.
        self._reconfig_pending = False
        self.last_runs: List[JobRun] = []
        self.keep_runs = False

    def note_reconfiguration(self, now: float, pause: float) -> None:
        """Account for a runtime configuration change.

        The engine pauses briefly (driver-side coordination) and the next
        job is marked as the first after the change so metric collectors
        can discard it (§5.4).
        """
        if pause < 0:
            raise ValueError("pause must be >= 0")
        self.free_at = max(self.free_at, now) + pause
        self._reconfig_pending = True

    def drain(self, queue: BatchQueue, until: float) -> List[BatchInfo]:
        """Start every queued job whose start time falls before ``until``.

        Returns the batches started by this call (each already completed
        in simulated time — job durations are deterministic once started).
        """
        completed: List[BatchInfo] = []
        while not queue.empty:
            head_time = queue._queue[0].enqueued_at  # peek
            start = max(head_time, self.free_at)
            if start >= until:
                break
            qb = queue.dequeue(start)
            info = self._run(qb, start)
            completed.append(info)
        return completed

    def _run(self, qb: QueuedBatch, start: float) -> BatchInfo:
        executors = self.resource_manager.executors
        run = self.scheduler.run_job(qb.job, executors, start, self.rng)
        self.free_at = run.finish
        self.jobs_run += 1
        self.total_task_failures += run.task_failures
        if self.keep_runs:
            self.last_runs.append(run)
        info = BatchInfo(
            batch_index=qb.job.job_id,
            batch_time=qb.enqueued_at,
            interval=qb.interval,
            records=qb.job.records,
            num_executors=len(executors),
            mean_arrival_time=qb.mean_arrival_time,
            processing_start=start,
            processing_end=run.finish,
            first_after_reconfig=self._reconfig_pending,
        )
        self._reconfig_pending = False
        self.listener.on_batch_completed(info)
        return info

    def next_start_time(self, queue: BatchQueue) -> Optional[float]:
        """When the head-of-queue job would start, or None if empty."""
        if queue.empty:
            return None
        return max(queue._queue[0].enqueued_at, self.free_at)
