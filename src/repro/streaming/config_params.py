"""Spark Streaming configuration-parameter catalog.

§3.2: "Spark Streaming provides over 150 configurable parameters, not
all of them play an equally important role in system performance, and
some of them can only be configured at the beginning of Spark launching
and remain unchanged during job execution."

This module catalogs the parameters relevant to this reproduction with
their types, defaults, valid ranges, and — the property the paper's
whole design hinges on — whether they are **runtime-tunable**.  In
vanilla Spark only a handful are; the paper *made the batch interval
runtime-tunable through system modification*, and executor count is
tunable via dynamic allocation.  The catalog encodes exactly that
tunability split, and :class:`SparkStreamingConf` provides validated
get/set plus a bridge into :class:`~repro.streaming.context.StreamingContext`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple


@dataclass(frozen=True)
class ParamSpec:
    """One configuration parameter's metadata."""

    key: str
    type: type
    default: Any
    runtime_tunable: bool
    description: str
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    choices: Optional[Tuple[Any, ...]] = None
    nostop_patched: bool = False
    """True when runtime tunability comes from the paper's Spark patch,
    not vanilla Spark."""

    def validate(self, value: Any) -> Any:
        """Coerce and range-check a candidate value."""
        if self.type is bool and isinstance(value, str):
            lowered = value.lower()
            if lowered not in ("true", "false"):
                raise ValueError(f"{self.key}: expected true/false, got {value!r}")
            value = lowered == "true"
        try:
            coerced = self.type(value)
        except (TypeError, ValueError):
            raise ValueError(
                f"{self.key}: cannot interpret {value!r} as {self.type.__name__}"
            ) from None
        if self.choices is not None and coerced not in self.choices:
            raise ValueError(
                f"{self.key}: {coerced!r} not in allowed choices {self.choices}"
            )
        if self.minimum is not None and coerced < self.minimum:
            raise ValueError(
                f"{self.key}: {coerced} below minimum {self.minimum}"
            )
        if self.maximum is not None and coerced > self.maximum:
            raise ValueError(
                f"{self.key}: {coerced} above maximum {self.maximum}"
            )
        return coerced


def _catalog() -> Dict[str, ParamSpec]:
    specs = [
        # --- the two parameters NoStop tunes -----------------------------
        ParamSpec(
            "spark.streaming.batchInterval", float, 10.0, True,
            "Micro-batch interval in seconds; runtime-tunable ONLY via the "
            "paper's Spark modification (vanilla Spark fixes it at "
            "StreamingContext creation).",
            minimum=0.001, nostop_patched=True,
        ),
        ParamSpec(
            "spark.executor.instances", int, 2, True,
            "Executor count; runtime-tunable through dynamic allocation.",
            minimum=1,
        ),
        # --- launch-time-only resources (§3.2's explicit examples) -------
        ParamSpec(
            "spark.executor.memory", str, "1g", False,
            "Memory per executor; fixed for the executor's lifetime.",
        ),
        ParamSpec(
            "spark.executor.cores", int, 1, False,
            "Cores per executor; fixed at launch.",
            minimum=1, maximum=64,
        ),
        ParamSpec(
            "spark.driver.memory", str, "1g", False,
            "Driver memory; fixed at launch.",
        ),
        # --- streaming engine behaviour ----------------------------------
        ParamSpec(
            "spark.streaming.concurrentJobs", int, 1, False,
            "Batch jobs processed concurrently; the paper (and this "
            "simulator) assume the default of 1.",
            minimum=1, maximum=8,
        ),
        ParamSpec(
            "spark.streaming.blockInterval", float, 0.2, False,
            "Receiver block generation interval (seconds).",
            minimum=0.01,
        ),
        ParamSpec(
            "spark.streaming.unpersist", bool, True, False,
            "Automatically unpersist processed RDDs.",
        ),
        ParamSpec(
            "spark.streaming.stopGracefullyOnShutdown", bool, False, False,
            "Drain the queue before stopping.",
        ),
        ParamSpec(
            "spark.streaming.queue.maxBatches", int, 0, False,
            "Bound on queued batches before oldest-eviction data loss "
            "(0 = unbounded; simulator extension, see DESIGN.md).",
            minimum=0,
        ),
        # --- back pressure -------------------------------------------------
        ParamSpec(
            "spark.streaming.backpressure.enabled", bool, False, True,
            "PID-based ingestion throttling (the paper's comparison "
            "baseline).",
        ),
        ParamSpec(
            "spark.streaming.backpressure.pid.proportional", float, 1.0, True,
            "PID proportional gain.", minimum=0.0,
        ),
        ParamSpec(
            "spark.streaming.backpressure.pid.integral", float, 0.2, True,
            "PID integral (backlog) gain.", minimum=0.0,
        ),
        ParamSpec(
            "spark.streaming.backpressure.pid.derived", float, 0.0, True,
            "PID derivative gain.", minimum=0.0,
        ),
        ParamSpec(
            "spark.streaming.backpressure.pid.minRate", float, 100.0, True,
            "Rate floor (records/s).", minimum=1.0,
        ),
        ParamSpec(
            "spark.streaming.kafka.maxRatePerPartition", float, 0.0, True,
            "Static per-partition ingestion cap (0 = unlimited).",
            minimum=0.0,
        ),
        # --- job shape -----------------------------------------------------
        ParamSpec(
            "spark.default.parallelism", int, 40, False,
            "Default partition count for shuffles; tunable per job in "
            "code, not live — NoStop's 3-parameter extension makes it an "
            "online tunable (see repro.core.bounds.multi_parameter_space).",
            minimum=1, nostop_patched=True,
        ),
        ParamSpec(
            "spark.task.maxFailures", int, 4, False,
            "Task attempts before the job is aborted.",
            minimum=1, maximum=16,
        ),
        ParamSpec(
            "spark.locality.wait", float, 3.0, False,
            "Seconds to wait for locality before relaxing placement.",
            minimum=0.0,
        ),
        ParamSpec(
            "spark.serializer", str,
            "org.apache.spark.serializer.JavaSerializer", False,
            "Serialization backend.",
            choices=(
                "org.apache.spark.serializer.JavaSerializer",
                "org.apache.spark.serializer.KryoSerializer",
            ),
        ),
    ]
    return {s.key: s for s in specs}


#: The parameter catalog, keyed by Spark property name.
SPARK_STREAMING_PARAMS: Dict[str, ParamSpec] = _catalog()


class SparkStreamingConf:
    """Validated configuration object over the parameter catalog.

    Mirrors ``SparkConf``'s set/get surface; rejects unknown keys and
    invalid values, and answers the question the paper's design starts
    from: *which parameters may change while the application runs?*
    """

    def __init__(self, overrides: Optional[Dict[str, Any]] = None) -> None:
        self._values: Dict[str, Any] = {
            key: spec.default for key, spec in SPARK_STREAMING_PARAMS.items()
        }
        self._launched = False
        for key, value in (overrides or {}).items():
            self.set(key, value)

    # -- set/get -----------------------------------------------------------

    def spec(self, key: str) -> ParamSpec:
        try:
            return SPARK_STREAMING_PARAMS[key]
        except KeyError:
            raise KeyError(f"unknown configuration parameter {key!r}") from None

    def get(self, key: str) -> Any:
        self.spec(key)
        return self._values[key]

    def set(self, key: str, value: Any) -> "SparkStreamingConf":
        spec = self.spec(key)
        if self._launched and not spec.runtime_tunable:
            raise RuntimeError(
                f"{key} can only be configured at launch (§3.2); "
                "restart the application to change it"
            )
        self._values[key] = spec.validate(value)
        return self

    def mark_launched(self) -> None:
        """Freeze launch-time-only parameters (application started)."""
        self._launched = True

    # -- queries -------------------------------------------------------------

    @staticmethod
    def runtime_tunable_keys() -> Tuple[str, ...]:
        return tuple(
            k for k, s in SPARK_STREAMING_PARAMS.items() if s.runtime_tunable
        )

    @staticmethod
    def launch_only_keys() -> Tuple[str, ...]:
        return tuple(
            k for k, s in SPARK_STREAMING_PARAMS.items() if not s.runtime_tunable
        )

    @staticmethod
    def nostop_patched_keys() -> Tuple[str, ...]:
        """Parameters whose online tunability required the paper's patch."""
        return tuple(
            k for k, s in SPARK_STREAMING_PARAMS.items() if s.nostop_patched
        )

    def as_dict(self) -> Dict[str, Any]:
        return dict(self._values)


def deploy_from_conf(
    conf: SparkStreamingConf,
    cluster,
    workload,
    generator,
    seed: int = 0,
):
    """Build a running deployment from a :class:`SparkStreamingConf`.

    Bridges the declarative configuration into the simulator: batch
    interval, executor count, queue bound, and (when enabled) a PID
    back-pressure controller wired to the producer.  Marks the conf as
    launched, freezing its launch-time-only parameters.

    Returns the :class:`~repro.streaming.context.StreamingContext`.
    """
    from .backpressure import BackPressureController, PIDRateEstimator
    from .context import StreamingConfig, StreamingContext

    queue_bound = conf.get("spark.streaming.queue.maxBatches") or None
    context = StreamingContext(
        cluster,
        workload,
        generator,
        StreamingConfig(
            batch_interval=conf.get("spark.streaming.batchInterval"),
            num_executors=conf.get("spark.executor.instances"),
        ),
        seed=seed,
        queue_max_length=queue_bound,
    )
    max_rate_per_partition = conf.get("spark.streaming.kafka.maxRatePerPartition")
    if max_rate_per_partition > 0:
        partitions = generator.producer.topic.num_partitions
        generator.set_rate_cap(max_rate_per_partition * partitions)
    if conf.get("spark.streaming.backpressure.enabled"):
        BackPressureController(
            context.listener,
            generator.set_rate_cap,
            estimator=PIDRateEstimator(
                proportional=conf.get(
                    "spark.streaming.backpressure.pid.proportional"
                ),
                integral=conf.get("spark.streaming.backpressure.pid.integral"),
                derivative=conf.get("spark.streaming.backpressure.pid.derived"),
                min_rate=conf.get("spark.streaming.backpressure.pid.minRate"),
            ),
        )
    conf.mark_launched()
    return context
