"""Streaming receiver.

Bridges the Kafka substrate and the micro-batch pipeline: at every batch
boundary the receiver advances the external data generator to the
boundary time, polls the direct-stream consumer for the offset ranges
that arrived during the interval, and reports the record count plus the
record-weighted mean arrival time (needed for end-to-end delay).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.datagen.generator import DataGenerator
from repro.kafka.consumer import DirectStreamConsumer
from repro.obs import catalog
from repro.obs.tracer import NOOP_TELEMETRY, Telemetry


@dataclass(frozen=True)
class ReceivedBatch:
    """What the receiver hands the batch queue at a boundary."""

    batch_time: float
    records: int
    mean_arrival_time: float


class Receiver:
    """Direct-stream receiver over a :class:`DataGenerator`."""

    def __init__(
        self,
        generator: DataGenerator,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.generator = generator
        self.consumer = DirectStreamConsumer(generator.producer.topic)
        self._last_poll = 0.0
        self._stalled = False
        self.stall_windows = 0
        self.telemetry = telemetry or NOOP_TELEMETRY
        registry = self.telemetry.metrics
        self.consumer.instrument(registry)
        self.generator.producer.instrument(registry)
        self._m_stalls = catalog.instrument(
            registry, "repro_streaming_receiver_stall_windows_total"
        )

    # -- fault injection (broker outage / receiver stall) -------------------

    @property
    def stalled(self) -> bool:
        """Whether fetches are currently failing (broker outage)."""
        return self._stalled

    def stall(self) -> None:
        """Stop fetching: brokers are unreachable.

        Producers keep appending to the topic, so the backlog grows and
        bursts into the first batch formed after :meth:`resume` — the
        recovery transient NoStop's robust collector must reject.
        """
        self._stalled = True

    def resume(self) -> None:
        """Brokers reachable again; the next poll drains the backlog."""
        self._stalled = False

    @property
    def backlog(self) -> int:
        """Records produced but not yet pulled into any batch."""
        return self.consumer.lag()

    def observed_rate(self, window: float = 10.0) -> float:
        """Arrival rate over the trailing window, from the trace."""
        now = self.generator.producer.produced_until
        if window <= 0:
            raise ValueError("window must be positive")
        start = max(0.0, now - window)
        if now <= start:
            return self.generator.trace.rate(0.0)
        count = self.generator.trace.records_between(start, now)
        return count / (now - start)

    def close_batch(self, batch_time: float) -> ReceivedBatch:
        """Close the batch ending at ``batch_time``.

        Materializes arrivals up to the boundary and consumes exactly the
        records that arrived since the previous boundary.
        """
        if batch_time < self._last_poll:
            raise ValueError(
                f"batch boundary {batch_time} precedes previous boundary "
                f"{self._last_poll}"
            )
        self.generator.advance_to(batch_time)
        if self._stalled:
            # Brokers down: records pile up in the topic but none can be
            # fetched, so this batch is empty.  Offsets stay committed
            # where they were; the post-recovery poll gets the backlog.
            self._last_poll = batch_time
            self.stall_windows += 1
            self._m_stalls.inc()
            return ReceivedBatch(
                batch_time=batch_time, records=0, mean_arrival_time=batch_time
            )
        batch = self.consumer.poll(batch_time)
        mean_arrival = self.consumer.mean_arrival_time(batch)
        self._last_poll = batch_time
        return ReceivedBatch(
            batch_time=batch_time,
            records=batch.total_records,
            mean_arrival_time=mean_arrival,
        )
