"""Batch queue.

Spark Streaming enqueues each closed micro-batch and the engine drains
the queue one job at a time (``spark.streaming.concurrentJobs = 1``, the
default the paper assumes).  When batch processing time exceeds the batch
interval, "the unprocessed batches would pile up in the batch queue"
(§3.1) — the queue's length over time is the instability signal.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from repro.engine.job import BatchJob
from repro.obs.span import TraceContext


@dataclass(frozen=True)
class QueuedBatch:
    """A closed batch waiting for the engine."""

    job: BatchJob
    enqueued_at: float
    mean_arrival_time: float
    interval: float
    trace: Optional[TraceContext] = None
    """Root-span context of this batch's trace (explicit propagation:
    the engine parents its queue/schedule/execute spans off this)."""


class BatchQueue:
    """FIFO queue of closed batches with occupancy accounting."""

    def __init__(self, max_length: Optional[int] = None) -> None:
        if max_length is not None and max_length < 1:
            raise ValueError("max_length must be >= 1 when set")
        self._queue: Deque[QueuedBatch] = deque()
        self.max_length = max_length
        self.total_enqueued = 0
        self.total_dequeued = 0
        self.total_dropped = 0
        #: records carried by evicted batches — the record-level side of
        #: :meth:`conservation_ok`, needed to balance consumed records
        #: against processed + waiting + lost.
        self.total_dropped_records = 0
        self.peak_length = 0
        #: (time, length) samples for instability analysis.
        self.length_history: List[Tuple[float, int]] = []
        #: The batch evicted by the most recent :meth:`enqueue` call, or
        #: None — lets the caller close the evicted batch's trace.
        self.last_evicted: Optional[QueuedBatch] = None

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def empty(self) -> bool:
        return not self._queue

    def enqueue(self, batch: QueuedBatch) -> bool:
        """Add a closed batch; returns False if an old batch was evicted.

        A bounded queue models the "possible data loss or system failure"
        the paper warns about for long-running unstable applications: at
        capacity the *oldest* waiting batch is evicted (its records are
        lost, as with Kafka retention expiry under deep consumer lag) so
        the newest data keeps flowing — a backlogged direct stream never
        blocks ingestion.
        """
        dropped = False
        self.last_evicted = None
        if self.max_length is not None and len(self._queue) >= self.max_length:
            self.last_evicted = self._queue.popleft()
            self.total_dropped += 1
            self.total_dropped_records += self.last_evicted.job.records
            dropped = True
        self._queue.append(batch)
        self.total_enqueued += 1
        self.peak_length = max(self.peak_length, len(self._queue))
        self.length_history.append((batch.enqueued_at, len(self._queue)))
        return not dropped

    def dequeue(self, now: float) -> QueuedBatch:
        """Pop the oldest batch for processing."""
        if not self._queue:
            raise IndexError("dequeue from empty batch queue")
        batch = self._queue.popleft()
        if now + 1e-9 < batch.enqueued_at:
            raise ValueError(
                f"dequeue at {now} before batch enqueued at {batch.enqueued_at}"
            )
        self.total_dequeued += 1
        self.length_history.append((now, len(self._queue)))
        return batch

    def queued_records(self) -> int:
        """Records currently waiting in the queue (unprocessed backlog)."""
        return sum(qb.job.records for qb in self._queue)

    def conservation_ok(self) -> bool:
        """Invariant: every enqueued batch was dequeued, evicted, or waits."""
        return (
            self.total_enqueued
            == self.total_dequeued + self.total_dropped + len(self._queue)
        )
