"""Spark back pressure: the PID rate estimator baseline.

Ports Spark's ``PIDRateEstimator`` (the mechanism behind
``spark.streaming.backpressure.enabled``), which the paper compares
against in §6: after each completed batch it estimates the sustainable
ingestion rate from the batch's processing rate, the rate error, and the
backlog implied by scheduling delay, then throttles the receiver.

Back pressure keeps the system *stable* at a fixed configuration but —
unlike NoStop — neither shrinks the batch interval nor rescales
executors, so its end-to-end delay floor is set by the static
configuration (and throttled records queue upstream, adding invisible
latency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .listener import StreamingListener
from .metrics import BatchInfo


@dataclass
class PIDRateEstimator:
    """Proportional-integral-derivative estimator of a sustainable rate.

    Parameters mirror Spark's defaults
    (``spark.streaming.backpressure.pid.*``): proportional 1.0,
    integral 0.2, derivative 0.0, minimum rate 100 records/s.
    """

    proportional: float = 1.0
    integral: float = 0.2
    derivative: float = 0.0
    min_rate: float = 100.0

    _latest_time: float = -1.0
    _latest_rate: float = -1.0
    _latest_error: float = -1.0

    def __post_init__(self) -> None:
        if self.proportional < 0 or self.integral < 0 or self.derivative < 0:
            raise ValueError("PID gains must be >= 0")
        if self.min_rate <= 0:
            raise ValueError("min_rate must be positive")

    def compute(
        self,
        time: float,
        num_elements: int,
        processing_delay: float,
        scheduling_delay: float,
        batch_interval: float,
    ) -> Optional[float]:
        """New rate bound in records/s, or None if the update is invalid.

        Follows ``PIDRateEstimator.compute`` in Spark's
        ``streaming/scheduler/rate`` package, with times in seconds.
        """
        if time <= self._latest_time:
            return None
        if num_elements <= 0 or processing_delay <= 0:
            return None

        delay_since_update = time - self._latest_time
        processing_rate = num_elements / processing_delay
        error = self._latest_rate - processing_rate
        # Backlog drain term: records queued per second of interval.
        historical_error = scheduling_delay * processing_rate / batch_interval
        d_error = (
            (error - self._latest_error) / delay_since_update
            if self._latest_time >= 0
            else 0.0
        )

        if self._latest_rate < 0:
            # First valid update: adopt the observed processing rate.
            new_rate = max(processing_rate, self.min_rate)
        else:
            new_rate = max(
                self._latest_rate
                - self.proportional * error
                - self.integral * historical_error
                - self.derivative * d_error,
                self.min_rate,
            )
        self._latest_time = time
        self._latest_rate = new_rate
        self._latest_error = error
        return new_rate


class BackPressureController:
    """Subscribe the PID estimator to a listener and throttle a producer.

    ``set_cap`` is any callable accepting the new rate bound (records/s);
    in the experiments it is ``DataGenerator.set_rate_cap``.
    """

    def __init__(
        self,
        listener: StreamingListener,
        set_cap,
        estimator: Optional[PIDRateEstimator] = None,
        max_rate: Optional[float] = None,
    ) -> None:
        self.estimator = estimator or PIDRateEstimator()
        self._set_cap = set_cap
        self.max_rate = max_rate
        self.updates = 0
        self.last_rate: Optional[float] = None
        listener.subscribe(self.on_batch_completed)

    def on_batch_completed(self, info: BatchInfo) -> None:
        rate = self.estimator.compute(
            time=info.processing_end,
            num_elements=info.records,
            processing_delay=info.processing_time,
            scheduling_delay=info.scheduling_delay,
            batch_interval=info.interval,
        )
        if rate is None:
            return
        if self.max_rate is not None:
            rate = min(rate, self.max_rate)
        self._set_cap(rate)
        self.last_rate = rate
        self.updates += 1
