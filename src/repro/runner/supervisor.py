"""Supervised cell execution: retries, timeouts, pool rebuilds.

The plain ``ProcessPoolExecutor.map`` fan-out of the original runner
dies wholesale on one worker crash or hang — one poisoned cell discards
every completed sibling.  :class:`CellSupervisor` replaces it with a
small supervised worker pool built directly on :mod:`multiprocessing`:

* every cell attempt runs under a **per-cell timeout** (a hung worker is
  terminated and its slot respawned, not waited on forever);
* failed attempts are retried under a **deterministic backoff policy** —
  bounded exponential backoff whose jitter is drawn from a
  ``SeedSequence`` derived from the cell's canonical identity, so the
  retry schedule is bit-reproducible across runs and worker counts;
* failures are **classified**: ``crash`` (the cell function raised),
  ``timeout`` (the per-cell deadline passed), ``pool_broken`` (the
  worker process died without reporting — an OOM kill or hard crash,
  the ``BrokenProcessPool`` condition), and ``poisoned`` (the cell
  crashed deterministically on every attempt);
* a sweep **always returns**: a cell that exhausts its retries becomes a
  structured :class:`CellFailure` result dict (``cellFailure: true``)
  in spec order, never an exception out of ``run()``.

Everything is accounted through ``repro_supervisor_*`` metrics so
retries, timeouts, and pool rebuilds show up in telemetry and the run
report next to the cache counters.
"""

from __future__ import annotations

import hashlib
import os
import queue as _queue
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.obs import catalog
from repro.obs.registry import MetricsRegistry, NOOP_REGISTRY
from repro.obs.tracer import Telemetry

from .cells import execute_cell
from .spec import SweepCell

#: Result-dict marker distinguishing structured failures from results.
FAILURE_KEY = "cellFailure"

#: Per-attempt failure classifications.
FAIL_CRASH = "crash"
FAIL_TIMEOUT = "timeout"
FAIL_POOL_BROKEN = "pool_broken"
#: Final classification for a cell that crashed on every attempt — the
#: failure is deterministic, so retrying elsewhere will not help.
FAIL_POISONED = "poisoned"

#: How long the scheduler blocks on the result queue per poll.  Bounds
#: how late a deadline/dead-worker check can run; results arriving
#: earlier wake the scheduler immediately.
_POLL_SECONDS = 0.05


def is_failure(result: Optional[Dict[str, Any]]) -> bool:
    """Whether a cell result dict is a structured :class:`CellFailure`."""
    return bool(result) and bool(result.get(FAILURE_KEY))


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic retry policy applied to every supervised cell.

    ``max_retries`` is the number of *re*-tries: a cell gets
    ``max_retries + 1`` attempts total.  ``timeout_seconds`` is the
    per-attempt deadline (``None`` disables timeouts and lets
    ``workers=1`` sweeps stay fully in-process).  Backoff before retry
    ``n`` (0-based) is::

        min(backoff_base * backoff_factor**n, backoff_cap) * (1 + j)

    where ``j ~ Uniform(0, jitter)`` comes from the cell's own seeded
    generator — two runs retrying the same cell sleep the same amount.
    """

    max_retries: int = 2
    timeout_seconds: Optional[float] = None
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError(
                f"timeout_seconds must be positive, got {self.timeout_seconds}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff_base and backoff_cap must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1.0, got {self.backoff_factor}"
            )
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")

    @property
    def attempts(self) -> int:
        return self.max_retries + 1

    def backoff_seconds(self, retry: int, rng: np.random.Generator) -> float:
        """Deterministic backoff before the ``retry``-th re-attempt."""
        base = min(
            self.backoff_base * self.backoff_factor ** retry, self.backoff_cap
        )
        if self.jitter <= 0:
            return base
        return base * (1.0 + self.jitter * float(rng.random()))


def cell_backoff_rng(cell: SweepCell) -> np.random.Generator:
    """Backoff-jitter generator seeded from the cell's canonical identity.

    The entropy is the cell's content digest, so the retry schedule
    depends only on *what* is being retried — never on worker count,
    execution order, or wall clock.
    """
    digest = hashlib.sha256(cell.canonical().encode()).digest()
    entropy = int.from_bytes(digest[:16], "big")
    return np.random.default_rng(np.random.SeedSequence(entropy))


@dataclass(frozen=True)
class CellFailure:
    """A cell that failed every attempt, as structured data.

    Serialized via :meth:`to_result` into the sweep's result list so a
    failed cell occupies its spec slot with a JSON-safe dict instead of
    blowing up the whole sweep.
    """

    index: int
    kind: str
    failure: str
    """Final classification: crash / timeout / pool_broken / poisoned."""
    attempts: int
    error: str
    """Message of the last attempt's error (empty for timeouts)."""
    attempt_failures: Tuple[str, ...] = ()
    """Per-attempt classifications, in attempt order."""
    backoffs: Tuple[float, ...] = ()
    """Deterministic backoff waits (seconds) between attempts."""

    def to_result(self) -> Dict[str, Any]:
        return {
            FAILURE_KEY: True,
            "failure": self.failure,
            "cellIndex": self.index,
            "cellKind": self.kind,
            "attempts": self.attempts,
            "attemptFailures": list(self.attempt_failures),
            "backoffs": [round(b, 6) for b in self.backoffs],
            "error": self.error,
            "batchesExecuted": 0,
        }


def classify_final(attempt_failures: Tuple[str, ...]) -> str:
    """Final failure kind for a cell that exhausted its attempts.

    A cell that crashed on *every* attempt is ``poisoned`` — its failure
    is deterministic and no amount of retrying or pool rebuilding will
    change it; otherwise the last attempt's classification stands.
    """
    if attempt_failures and all(f == FAIL_CRASH for f in attempt_failures):
        return FAIL_POISONED
    return attempt_failures[-1] if attempt_failures else FAIL_CRASH


@dataclass
class _Attempt:
    """Mutable retry state for one pending cell."""

    cell: SweepCell
    rng: np.random.Generator
    attempt: int = 0
    failures: List[str] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    backoffs: List[float] = field(default_factory=list)
    ready_at: float = 0.0
    """Monotonic time before which this attempt must not be dispatched
    (backoff gate)."""


def _worker_main(task_queue, result_queue) -> None:
    """Worker-process loop: execute cells until told to stop.

    Results travel back as ``(index, status, payload)`` where status is
    ``"ok"`` (payload = result dict) or ``"error"`` (payload = message).
    A worker that dies mid-cell simply never reports — the supervisor
    notices the corpse and classifies the attempt ``pool_broken``.
    """
    while True:
        item = task_queue.get()
        if item is None:
            return
        index, kind, params = item
        try:
            result = execute_cell(kind, params)
        except BaseException as exc:  # noqa: BLE001 - report, don't die
            result_queue.put(
                (index, "error", f"{type(exc).__name__}: {exc}")
            )
        else:
            result_queue.put((index, "ok", result))


@dataclass
class _Worker:
    """One supervised worker process and what it is currently running.

    Each worker has its **own** task queue: dispatch targets a specific
    process, so the supervisor always knows exactly which attempt died
    with which worker.  (A shared queue would let one worker steal a
    sibling's task and silently invalidate the timeout/death
    bookkeeping.)
    """

    process: Any
    task_queue: Any
    task: Optional[_Attempt] = None
    deadline: float = float("inf")

    @property
    def idle(self) -> bool:
        return self.task is None


class CellSupervisor:
    """Run sweep cells under retries, timeouts, and pool supervision.

    Parameters
    ----------
    workers:
        Worker processes.  ``workers=1`` with no timeout configured runs
        cells in-process (cheapest, still retried); any timeout forces
        pool mode even at ``workers=1`` because an in-process hang
        cannot be preempted.
    policy:
        The :class:`RetryPolicy`; defaults to 2 retries, no timeout.
    telemetry:
        Metrics destination for the ``repro_supervisor_*`` instruments.
    sleep:
        Injectable sleep (tests pass a recorder to assert the backoff
        schedule without actually waiting).
    """

    def __init__(
        self,
        workers: int = 1,
        policy: Optional[RetryPolicy] = None,
        telemetry: Optional[Telemetry] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.policy = policy or RetryPolicy()
        self._sleep = sleep
        registry: MetricsRegistry = (
            telemetry.metrics if telemetry is not None else NOOP_REGISTRY
        )
        self._m_retries = catalog.instrument(
            registry, "repro_supervisor_retries_total"
        )
        self._m_timeouts = catalog.instrument(
            registry, "repro_supervisor_timeouts_total"
        )
        self._m_rebuilds = catalog.instrument(
            registry, "repro_supervisor_pool_rebuilds_total"
        )
        self._m_failures = catalog.instrument(
            registry, "repro_supervisor_cell_failures_total"
        )
        #: Accounting for the most recent :meth:`run_cells` call.
        self.retries = 0
        self.timeouts = 0
        self.pool_rebuilds = 0
        self.cell_failures = 0

    # -- public entry --------------------------------------------------------

    def run_cells(
        self, pending: List[SweepCell]
    ) -> List[Tuple[int, Dict[str, Any]]]:
        """Execute ``pending`` cells; returns ``(index, result)`` pairs.

        Every cell yields exactly one pair — a real result or a
        :class:`CellFailure` dict — ordered by spec index.
        """
        if not pending:
            return []
        use_pool = (
            self.workers > 1 and len(pending) > 1
        ) or self.policy.timeout_seconds is not None
        if use_pool:
            out = self._run_pooled(pending)
        else:
            out = self._run_inline(pending)
        return sorted(out, key=lambda pair: pair[0])

    # -- in-process path -----------------------------------------------------

    def _run_inline(
        self, pending: List[SweepCell]
    ) -> List[Tuple[int, Dict[str, Any]]]:
        """Sequential in-process execution with crash retries.

        Timeouts are not enforceable here (no preemption inside one
        process); the constructor routes any timeout policy to the pool.
        """
        out: List[Tuple[int, Dict[str, Any]]] = []
        for cell in pending:
            state = _Attempt(cell=cell, rng=cell_backoff_rng(cell))
            result: Optional[Dict[str, Any]] = None
            while state.attempt < self.policy.attempts:
                state.attempt += 1
                try:
                    result = execute_cell(cell.kind, cell.param_dict)
                    break
                except BaseException as exc:  # noqa: BLE001 - classify + retry
                    self._note_attempt_failure(
                        state, FAIL_CRASH, f"{type(exc).__name__}: {exc}"
                    )
            if result is not None:
                out.append((cell.index, result))
            else:
                out.append((cell.index, self._abandon(state)))
        return out

    # -- pooled path ---------------------------------------------------------

    def _run_pooled(
        self, pending: List[SweepCell]
    ) -> List[Tuple[int, Dict[str, Any]]]:
        import multiprocessing as mp

        ctx = mp.get_context()
        result_queue = ctx.Queue()
        pool: List[_Worker] = [
            self._spawn(ctx, result_queue)
            for _ in range(min(self.workers, len(pending)))
        ]
        waiting: List[_Attempt] = [
            _Attempt(cell=c, rng=cell_backoff_rng(c)) for c in pending
        ]
        by_index: Dict[int, _Attempt] = {a.cell.index: a for a in waiting}
        done: Dict[int, Dict[str, Any]] = {}
        try:
            while waiting or any(not w.idle for w in pool):
                self._dispatch(pool, waiting)
                self._drain_results(
                    pool, result_queue, by_index, waiting, done
                )
                self._reap_timeouts(pool, ctx, result_queue, waiting, done)
                self._reap_dead(pool, ctx, result_queue, waiting, done)
        finally:
            self._shutdown(pool)
        return list(done.items())

    def _spawn(self, ctx, result_queue) -> _Worker:
        task_queue = ctx.Queue()
        process = ctx.Process(
            target=_worker_main, args=(task_queue, result_queue), daemon=True
        )
        process.start()
        return _Worker(process=process, task_queue=task_queue)

    def _respawn(self, pool, slot, ctx, result_queue) -> None:
        """Replace a dead/killed worker and account the rebuild."""
        pool[slot] = self._spawn(ctx, result_queue)
        self.pool_rebuilds += 1
        self._m_rebuilds.inc()

    def _dispatch(self, pool, waiting) -> None:
        """Hand ready attempts to idle workers (backoff gates honored)."""
        now = time.monotonic()  # det: allow-wallclock (scheduler only)
        for worker in pool:
            if not worker.idle:
                continue
            ready = next(
                (a for a in waiting if a.ready_at <= now), None
            )
            if ready is None:
                return
            waiting.remove(ready)
            ready.attempt += 1
            worker.task = ready
            timeout = self.policy.timeout_seconds
            worker.deadline = (
                now + timeout if timeout is not None else float("inf")
            )
            worker.task_queue.put(
                (ready.cell.index, ready.cell.kind, ready.cell.param_dict)
            )

    def _drain_results(
        self, pool, result_queue, by_index, waiting, done
    ) -> None:
        """Collect finished attempts; block briefly so polling is cheap."""
        block = True
        while True:
            try:
                index, status, payload = result_queue.get(
                    timeout=_POLL_SECONDS if block else 0.0
                )
            except _queue.Empty:
                return
            block = False  # drain the rest without waiting
            state = by_index[index]
            worker = next((w for w in pool if w.task is state), None)
            if worker is not None:
                worker.task = None
                worker.deadline = float("inf")
            if index in done:
                # Stale duplicate: the worker reported just before a
                # timeout reap terminated it and the retry already
                # resolved the cell.  Cells are pure, so drop it.
                continue
            if status == "ok":
                done[index] = payload
                if state in waiting:
                    # Same race, other order: the original attempt's
                    # result arrived after the cell was requeued.
                    waiting.remove(state)
            else:
                self._note_attempt_failure(state, FAIL_CRASH, str(payload))
                self._requeue_or_abandon(state, waiting, done)

    def _reap_timeouts(self, pool, ctx, result_queue, waiting, done) -> None:
        """Kill workers whose cell blew its deadline; respawn the slot."""
        now = time.monotonic()  # det: allow-wallclock (scheduler only)
        for slot, worker in enumerate(pool):
            if worker.idle or worker.deadline > now:
                continue
            state = worker.task
            worker.process.terminate()
            worker.process.join()
            self.timeouts += 1
            self._m_timeouts.inc()
            self._respawn(pool, slot, ctx, result_queue)
            self._note_attempt_failure(state, FAIL_TIMEOUT, "")
            self._requeue_or_abandon(state, waiting, done)

    def _reap_dead(self, pool, ctx, result_queue, waiting, done) -> None:
        """Detect workers that died without reporting (OOM, hard kill)."""
        for slot, worker in enumerate(pool):
            if worker.process.is_alive():
                continue
            state = worker.task
            worker.process.join()
            self._respawn(pool, slot, ctx, result_queue)
            if state is None:
                continue  # died idle; fresh worker takes over
            self._note_attempt_failure(
                state,
                FAIL_POOL_BROKEN,
                f"worker exited with code {worker.process.exitcode}",
            )
            self._requeue_or_abandon(state, waiting, done)

    def _shutdown(self, pool) -> None:
        """Stop every worker (idle ones get the sentinel, busy ones die)."""
        for worker in pool:
            if worker.idle:
                worker.task_queue.put(None)
            else:
                worker.process.terminate()
        for worker in pool:
            worker.process.join(timeout=5.0)

    # -- shared retry bookkeeping -------------------------------------------

    def _note_attempt_failure(
        self, state: _Attempt, failure: str, error: str
    ) -> None:
        state.failures.append(failure)
        if error:
            state.errors.append(error)
        if state.attempt < self.policy.attempts:
            wait = self.policy.backoff_seconds(
                len(state.backoffs), state.rng
            )
            state.backoffs.append(wait)
            state.ready_at = (
                time.monotonic() + wait  # det: allow-wallclock (scheduler only)
            )
            self.retries += 1
            self._m_retries.inc()
            self._sleep(wait)

    def _requeue_or_abandon(
        self, state: _Attempt, waiting: List[_Attempt], done
    ) -> None:
        if state.attempt < self.policy.attempts:
            waiting.append(state)
        else:
            done[state.cell.index] = self._abandon(state)

    def _abandon(self, state: _Attempt) -> Dict[str, Any]:
        self.cell_failures += 1
        self._m_failures.inc()
        failures = tuple(state.failures)
        return CellFailure(
            index=state.cell.index,
            kind=state.cell.kind,
            failure=classify_final(failures),
            attempts=state.attempt,
            error=state.errors[-1] if state.errors else "",
            attempt_failures=failures,
            backoffs=tuple(state.backoffs),
        ).to_result()
