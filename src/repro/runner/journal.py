"""Write-ahead sweep journal: crash-safe, resumable sweeps.

The :class:`SweepJournal` is an append-only JSONL file recording every
cell a sweep resolves, written *as it happens* with an fsync per line.
Because each line is complete-or-absent, any prefix of the file is a
valid journal: a sweep killed at an arbitrary point — SIGINT, SIGTERM,
an OOM-killed worker, a machine reboot — leaves behind exactly the
cells that finished, and ``repro sweep --resume <journal>`` replays
them and re-runs only the rest.

File format (one JSON object per line)::

    {"type": "sweep", "digest": <spec digest>, "name": ..., "kind": ...,
     "cells": N, "version": <substrate tag>}
    {"type": "cell", "digest": <spec digest>, "index": i,
     "key": <cell digest>, "status": "ok"|"failed", "result": {...}}

Safety properties:

* **spec-scoped** — cell lines carry the digest of the expanded spec
  (kind + every cell's canonical params + substrate version), so one
  journal file can hold multiple sweep sections (fig7 runs two specs)
  and a replay never crosses specs;
* **content-verified** — each cell line also carries the cell's own
  content digest; replay re-derives it from the spec being resumed and
  skips entries that no longer match (edited spec, changed substrate);
* **corruption-tolerant** — a torn or tampered line fails to parse and
  is skipped, counted in :attr:`corrupt_lines_skipped` (surfaced as
  ``repro_runner_journal_corrupt_total``), never propagated;
* **failures are not replayed** — only ``status == "ok"`` entries
  resume; failed cells get a fresh chance on every resume.

For tests and the CI recovery job, ``REPRO_SWEEP_KILL_AFTER=N`` makes
the journal hard-kill the process (``os._exit(137)``) immediately after
the N-th cell line is durably appended — a deterministic mid-sweep
crash with exactly N completed cells on disk.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from .cache import cell_digest
from .spec import SweepCell, SweepSpec, canonical_json

#: Env flag: hard-exit after this many durable cell appends (testing).
KILL_AFTER_ENV = "REPRO_SWEEP_KILL_AFTER"


def spec_digest(cells: Sequence[SweepCell], version_tag: str) -> str:
    """Identity of an expanded sweep: kinds+params+substrate version.

    The spec *name* is deliberately excluded (it is display-only, like
    in the cache); two specs expanding to the same cells on the same
    substrate are the same sweep for resumption purposes.
    """
    payload = canonical_json(
        {
            "cells": [c.canonical() for c in cells],
            "version": version_tag,
        }
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class SweepJournal:
    """Append-only JSONL write-ahead log for sweep execution."""

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        #: Malformed lines skipped by the most recent read.
        self.corrupt_lines_skipped = 0
        self._cell_appends = 0
        self._kill_after = self._read_kill_after()

    @staticmethod
    def _read_kill_after() -> Optional[int]:
        raw = os.environ.get(KILL_AFTER_ENV)
        if not raw:
            return None
        try:
            value = int(raw)
        except ValueError:
            return None
        return value if value > 0 else None

    # -- writing -------------------------------------------------------------

    def _append(self, record: Dict[str, Any]) -> None:
        """Durably append one line: write, flush, fsync."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = canonical_json(record)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def begin(
        self, spec: SweepSpec, cells: Sequence[SweepCell], version_tag: str
    ) -> str:
        """Open (or re-open) a sweep section; returns its digest.

        Idempotent: resuming an existing journal for the same expanded
        spec does not write a second header.
        """
        digest = spec_digest(cells, version_tag)
        for entry in self._read_entries():
            if entry.get("type") == "sweep" and entry.get("digest") == digest:
                return digest
        self._append(
            {
                "type": "sweep",
                "digest": digest,
                "name": spec.name,
                "kind": spec.kind,
                "cells": len(cells),
                "version": version_tag,
            }
        )
        return digest

    def record_cell(
        self,
        digest: str,
        cell: SweepCell,
        version_tag: str,
        status: str,
        result: Dict[str, Any],
    ) -> None:
        """Durably journal one resolved cell (then maybe die, for tests)."""
        self._append(
            {
                "type": "cell",
                "digest": digest,
                "index": cell.index,
                "key": cell_digest(cell, version_tag),
                "status": status,
                "result": result,
            }
        )
        self._cell_appends += 1
        if self._kill_after is not None and self._cell_appends >= self._kill_after:
            # Deterministic mid-sweep crash for the recovery tests/CI:
            # exactly `kill_after` complete cell lines are on disk.
            os._exit(137)

    # -- reading -------------------------------------------------------------

    def _read_entries(self) -> List[Dict[str, Any]]:
        """Parse every journal line, skipping (and counting) corrupt ones."""
        self.corrupt_lines_skipped = 0
        entries: List[Dict[str, Any]] = []
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                lines = fh.readlines()
        except FileNotFoundError:
            return entries
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                self.corrupt_lines_skipped += 1
                continue
            if not isinstance(entry, dict):
                self.corrupt_lines_skipped += 1
                continue
            entries.append(entry)
        return entries

    def replay(
        self, cells: Sequence[SweepCell], version_tag: str
    ) -> Dict[int, Dict[str, Any]]:
        """Completed results for the given expanded spec, by cell index.

        Only ``status == "ok"`` entries whose spec digest *and* per-cell
        content digest both match are returned; everything else (other
        sweeps, stale substrate versions, failures, tampered lines) is
        ignored.  Later entries win, so a re-run cell supersedes its
        earlier journal line.
        """
        digest = spec_digest(cells, version_tag)
        keys = {c.index: cell_digest(c, version_tag) for c in cells}
        out: Dict[int, Dict[str, Any]] = {}
        for entry in self._read_entries():
            if entry.get("type") != "cell" or entry.get("digest") != digest:
                continue
            if entry.get("status") != "ok":
                continue
            index = entry.get("index")
            if not isinstance(index, int) or index not in keys:
                continue
            if entry.get("key") != keys[index]:
                continue
            result = entry.get("result")
            if isinstance(result, dict):
                out[index] = result
        return out

    def sections(self) -> List[Dict[str, Any]]:
        """Sweep headers present in the journal (for CLI inspection)."""
        return [
            e for e in self._read_entries() if e.get("type") == "sweep"
        ]

    def __len__(self) -> int:
        return sum(
            1 for e in self._read_entries() if e.get("type") == "cell"
        )
