"""Supervised, journaled sweep runner with a deterministic result cache.

The experiment layer's execution engine: declarative sweep specs
(:mod:`~repro.runner.spec`) expand into pure simulation cells
(:mod:`~repro.runner.cells`), which a :class:`SweepRunner` serves from
a content-addressed on-disk cache (:mod:`~repro.runner.cache`), replays
from a crash-safe write-ahead journal (:mod:`~repro.runner.journal`),
or executes under a fault-tolerant supervisor
(:mod:`~repro.runner.supervisor`) — parallel results bit-identical to
sequential, reruns of unchanged sweeps free, interrupted sweeps
resumable, and failures structured instead of fatal.  See DESIGN.md
§12 and §14.
"""

from .cache import (
    CACHE_ENV,
    ResultCache,
    cell_digest,
    default_cache_dir,
    substrate_version_tag,
)
from .cells import cell_kinds, execute_cell, register_cell
from .journal import KILL_AFTER_ENV, SweepJournal, spec_digest
from .runner import SweepResult, SweepRunner, SweepStats, run_sweep
from .spec import SweepCell, SweepSpec, canonical_json, spawn_seeds
from .supervisor import CellFailure, CellSupervisor, RetryPolicy, is_failure

__all__ = [
    "CACHE_ENV",
    "CellFailure",
    "CellSupervisor",
    "KILL_AFTER_ENV",
    "ResultCache",
    "RetryPolicy",
    "SweepCell",
    "SweepJournal",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "SweepStats",
    "canonical_json",
    "cell_digest",
    "cell_kinds",
    "default_cache_dir",
    "execute_cell",
    "is_failure",
    "register_cell",
    "run_sweep",
    "spawn_seeds",
    "spec_digest",
    "substrate_version_tag",
]
