"""Parallel sweep runner with a deterministic result cache.

The experiment layer's execution engine: declarative sweep specs
(:mod:`~repro.runner.spec`) expand into pure simulation cells
(:mod:`~repro.runner.cells`), which a :class:`SweepRunner` serves from
a content-addressed on-disk cache (:mod:`~repro.runner.cache`) or fans
out over worker processes — parallel results bit-identical to
sequential, reruns of unchanged sweeps free.  See DESIGN.md §12.
"""

from .cache import CACHE_ENV, ResultCache, default_cache_dir, substrate_version_tag
from .cells import cell_kinds, execute_cell, register_cell
from .runner import SweepResult, SweepRunner, SweepStats, run_sweep
from .spec import SweepCell, SweepSpec, canonical_json, spawn_seeds

__all__ = [
    "CACHE_ENV",
    "ResultCache",
    "SweepCell",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "SweepStats",
    "canonical_json",
    "cell_kinds",
    "default_cache_dir",
    "execute_cell",
    "register_cell",
    "run_sweep",
    "spawn_seeds",
    "substrate_version_tag",
]
