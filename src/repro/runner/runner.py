"""The sweep runner: cache-aware fan-out over sweep cells.

``SweepRunner`` expands a :class:`~repro.runner.spec.SweepSpec` into
cells, serves what it can from the content-addressed
:class:`~repro.runner.cache.ResultCache`, and executes the rest —
in-process when ``workers <= 1``, across a ``ProcessPoolExecutor``
otherwise.  Results always come back **in spec order** and are
bit-identical regardless of worker count, because every cell is a pure
function of its parameter dict (see :mod:`repro.runner.cells`); the
determinism suite asserts exactly this.

Cache traffic is accounted through the standard metrics registry
(``repro_runner_*`` instruments) so sweeps show up in telemetry next to
the substrate's own counters.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.registry import NOOP_REGISTRY, MetricsRegistry
from repro.obs.tracer import Telemetry

from .cache import ResultCache
from .cells import execute_cell
from .spec import SweepCell, SweepSpec


def _execute_indexed(
    payload: Tuple[int, str, Dict[str, Any]],
) -> Tuple[int, Dict[str, Any]]:
    """Worker entry point: run one cell, echoing its spec index."""
    index, kind, params = payload
    return index, execute_cell(kind, params)


@dataclass
class SweepStats:
    """Cache and execution accounting for one sweep run."""

    cells: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    executed: int = 0
    batches_executed: int = 0
    """Micro-batches simulated across executed cells (0 on a fully
    cached rerun — the verifiable 'zero simulations' claim)."""
    workers: int = 1
    wall_seconds: float = 0.0

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.cells if self.cells else 0.0


@dataclass
class SweepResult:
    """Sweep outcome: per-cell results in spec order, plus accounting."""

    spec: SweepSpec
    cells: List[SweepCell]
    results: List[Dict[str, Any]]
    stats: SweepStats = field(default_factory=SweepStats)

    def __len__(self) -> int:
        return len(self.results)


class SweepRunner:
    """Execute sweep specs with caching and optional process fan-out.

    Parameters
    ----------
    workers:
        Worker processes for cell execution; ``<= 1`` runs in-process.
        Results are identical either way — the knob trades wall-clock
        only.
    cache:
        Result cache; ``None`` disables persistence entirely.
    use_cache:
        When False, cached entries are ignored on read (``--no-cache``)
        but fresh results are still written for the next run.
    telemetry:
        Metrics destination; defaults to the no-op registry.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        use_cache: bool = True,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.cache = cache
        self.use_cache = use_cache
        registry: MetricsRegistry = (
            telemetry.metrics if telemetry is not None else NOOP_REGISTRY
        )
        self._m_cells = registry.counter(
            "repro_runner_cells_total", "Sweep cells processed"
        )
        self._m_hits = registry.counter(
            "repro_runner_cache_hits_total", "Sweep cells served from cache"
        )
        self._m_misses = registry.counter(
            "repro_runner_cache_misses_total", "Sweep cells not in cache"
        )
        self._m_executed = registry.counter(
            "repro_runner_cells_executed_total", "Sweep cells simulated"
        )
        self._m_seconds = registry.histogram(
            "repro_runner_sweep_seconds", "Wall-clock per sweep run"
        )
        #: Accumulated accounting across every ``run()`` on this runner
        #: (multi-stage drivers like Fig. 7 call it several times).
        self.totals = SweepStats(workers=self.workers)

    def run(self, spec: SweepSpec) -> SweepResult:
        """Expand, serve from cache, execute the rest, reassemble."""
        t0 = time.perf_counter()  # det: allow-wallclock (harness wall time)
        cells = spec.expand()
        results: List[Optional[Dict[str, Any]]] = [None] * len(cells)
        stats = SweepStats(cells=len(cells), workers=self.workers)
        self._m_cells.inc(len(cells))

        pending: List[SweepCell] = []
        for cell in cells:
            cached = (
                self.cache.get(cell)
                if (self.cache is not None and self.use_cache)
                else None
            )
            if cached is not None:
                results[cell.index] = cached
                stats.cache_hits += 1
            else:
                pending.append(cell)
                stats.cache_misses += 1
        self._m_hits.inc(stats.cache_hits)
        self._m_misses.inc(stats.cache_misses)

        for index, result in self._execute(pending):
            results[index] = result
            stats.executed += 1
            stats.batches_executed += int(result.get("batchesExecuted", 0))
            if self.cache is not None:
                self.cache.put(cells[index], result)
        self._m_executed.inc(stats.executed)

        stats.wall_seconds = time.perf_counter() - t0  # det: allow-wallclock
        self._m_seconds.observe(stats.wall_seconds)
        self.totals.cells += stats.cells
        self.totals.cache_hits += stats.cache_hits
        self.totals.cache_misses += stats.cache_misses
        self.totals.executed += stats.executed
        self.totals.batches_executed += stats.batches_executed
        self.totals.wall_seconds += stats.wall_seconds
        return SweepResult(
            spec=spec,
            cells=cells,
            results=results,  # type: ignore[arg-type]
            stats=stats,
        )

    def _execute(
        self, pending: List[SweepCell]
    ) -> List[Tuple[int, Dict[str, Any]]]:
        payloads = [(c.index, c.kind, c.param_dict) for c in pending]
        if not payloads:
            return []
        if self.workers == 1 or len(payloads) == 1:
            return [_execute_indexed(p) for p in payloads]
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            return list(pool.map(_execute_indexed, payloads))


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    use_cache: bool = True,
    telemetry: Optional[Telemetry] = None,
) -> SweepResult:
    """One-call convenience wrapper around :class:`SweepRunner`."""
    return SweepRunner(
        workers=workers,
        cache=cache,
        use_cache=use_cache,
        telemetry=telemetry,
    ).run(spec)
