"""The sweep runner: cache-aware, journaled, supervised fan-out.

``SweepRunner`` expands a :class:`~repro.runner.spec.SweepSpec` into
cells and resolves each one through a three-level hierarchy:

1. **journal replay** — when a :class:`~repro.runner.journal.SweepJournal`
   is attached (``repro sweep --resume``), cells already completed by an
   interrupted run are taken straight from the write-ahead log;
2. **cache** — the content-addressed
   :class:`~repro.runner.cache.ResultCache` serves unchanged cells from
   previous sweeps;
3. **supervised execution** — the rest run under a
   :class:`~repro.runner.supervisor.CellSupervisor`: per-cell timeouts,
   deterministic retries with backoff, worker-pool rebuilds on death,
   and structured :class:`~repro.runner.supervisor.CellFailure` results
   instead of exceptions.  A sweep always returns.

Results always come back **in spec order** and are bit-identical
regardless of worker count, because every cell is a pure function of
its parameter dict (see :mod:`repro.runner.cells`); the determinism
suite asserts exactly this, and the interrupt suite asserts that a
kill-and-resume sequence matches an uninterrupted run byte for byte.

Cache, journal, and supervisor traffic are accounted through the
standard metrics registry (``repro_runner_*`` / ``repro_supervisor_*``)
so sweeps show up in telemetry and the run report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import catalog
from repro.obs.registry import NOOP_REGISTRY, MetricsRegistry
from repro.obs.tracer import Telemetry

from .cache import ResultCache, substrate_version_tag
from .cells import cell_kinds, execute_cell
from .journal import SweepJournal
from .spec import SweepCell, SweepSpec
from .supervisor import CellSupervisor, RetryPolicy, is_failure


def _execute_indexed(
    payload: Tuple[int, str, Dict[str, Any]],
) -> Tuple[int, Dict[str, Any]]:
    """Worker entry point: run one cell, echoing its spec index."""
    index, kind, params = payload
    return index, execute_cell(kind, params)


@dataclass
class SweepStats:
    """Cache, journal, and execution accounting for one sweep run."""

    cells: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    executed: int = 0
    batches_executed: int = 0
    """Micro-batches simulated across executed cells (0 on a fully
    cached rerun — the verifiable 'zero simulations' claim)."""
    workers: int = 1
    wall_seconds: float = 0.0
    failed: int = 0
    """Cells abandoned as structured CellFailure results."""
    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    journal_replayed: int = 0
    """Cells resumed from the write-ahead journal instead of running."""
    cache_self_healed: int = 0
    """Corrupt cache entries dropped (treated as misses) this run."""

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.cells if self.cells else 0.0


@dataclass
class SweepResult:
    """Sweep outcome: per-cell results in spec order, plus accounting."""

    spec: SweepSpec
    cells: List[SweepCell]
    results: List[Dict[str, Any]]
    stats: SweepStats = field(default_factory=SweepStats)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def failures(self) -> List[Dict[str, Any]]:
        """The structured CellFailure results, in spec order."""
        return [r for r in self.results if is_failure(r)]

    @property
    def ok(self) -> bool:
        return not self.failures


class SweepRunner:
    """Execute sweep specs with caching, journaling, and supervision.

    Parameters
    ----------
    workers:
        Worker processes for cell execution; ``<= 1`` runs in-process
        (unless a retry-policy timeout forces pool mode).  Results are
        identical either way — the knob trades wall-clock only.
    cache:
        Result cache; ``None`` disables persistence entirely.
    use_cache:
        When False, cached entries are ignored on read (``--no-cache``)
        but fresh results are still written for the next run.
    telemetry:
        Metrics destination; defaults to the no-op registry.
    journal:
        Write-ahead :class:`SweepJournal`.  When set, every resolved
        cell is durably logged and previously completed cells are
        replayed instead of re-run (``repro sweep --resume``).
    retry:
        The :class:`RetryPolicy` for supervised execution; ``None``
        uses the default (2 retries, no timeout).
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        use_cache: bool = True,
        telemetry: Optional[Telemetry] = None,
        journal: Optional[SweepJournal] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.cache = cache
        self.use_cache = use_cache
        self.journal = journal
        self.retry = retry or RetryPolicy()
        self._telemetry = telemetry
        registry: MetricsRegistry = (
            telemetry.metrics if telemetry is not None else NOOP_REGISTRY
        )
        self._m_cells = catalog.instrument(
            registry, "repro_runner_cells_total"
        )
        self._m_hits = catalog.instrument(
            registry, "repro_runner_cache_hits_total"
        )
        self._m_misses = catalog.instrument(
            registry, "repro_runner_cache_misses_total"
        )
        self._m_executed = catalog.instrument(
            registry, "repro_runner_cells_executed_total"
        )
        self._m_seconds = catalog.instrument(
            registry, "repro_runner_sweep_seconds"
        )
        self._m_self_heal = catalog.instrument(
            registry, "repro_runner_cache_self_heal_total"
        )
        self._m_replays = catalog.instrument(
            registry, "repro_supervisor_journal_replays_total"
        )
        self._m_journal_corrupt = catalog.instrument(
            registry, "repro_runner_journal_corrupt_total"
        )
        #: Accumulated accounting across every ``run()`` on this runner
        #: (multi-stage drivers like Fig. 7 call it several times).
        self.totals = SweepStats(workers=self.workers)
        #: Every CellFailure result seen across runs, in arrival order —
        #: the CLI reports these per-cell even when a figure driver
        #: chokes on a failed cell downstream.
        self.failures: List[Dict[str, Any]] = []

    def _version_tag(self) -> str:
        if self.cache is not None:
            return self.cache.version_tag
        return substrate_version_tag()

    def run(self, spec: SweepSpec) -> SweepResult:
        """Expand, replay journal, serve from cache, supervise the rest."""
        if spec.kind not in cell_kinds():
            raise KeyError(
                f"unknown cell kind {spec.kind!r}; "
                f"expected one of {cell_kinds()}"
            )
        t0 = time.perf_counter()  # det: allow-wallclock (harness wall time)
        cells = spec.expand()
        results: List[Optional[Dict[str, Any]]] = [None] * len(cells)
        stats = SweepStats(cells=len(cells), workers=self.workers)
        self._m_cells.inc(len(cells))
        heal_before = self.cache.self_healed if self.cache is not None else 0

        # Level 1: write-ahead journal replay (resume an interrupted run).
        digest: Optional[str] = None
        version_tag: Optional[str] = None
        replayed: Dict[int, Dict[str, Any]] = {}
        if self.journal is not None:
            version_tag = self._version_tag()
            digest = self.journal.begin(spec, cells, version_tag)
            replayed = self.journal.replay(cells, version_tag)
            if self.journal.corrupt_lines_skipped:
                self._m_journal_corrupt.inc(self.journal.corrupt_lines_skipped)
            for index, result in replayed.items():
                results[index] = result
                stats.journal_replayed += 1
            if stats.journal_replayed:
                self._m_replays.inc(stats.journal_replayed)

        # Level 2: content-addressed cache.
        pending: List[SweepCell] = []
        for cell in cells:
            if cell.index in replayed:
                continue
            cached = (
                self.cache.get(cell)
                if (self.cache is not None and self.use_cache)
                else None
            )
            if cached is not None:
                results[cell.index] = cached
                stats.cache_hits += 1
                self._record_journal(digest, cell, version_tag, "ok", cached)
            else:
                pending.append(cell)
                stats.cache_misses += 1
        self._m_hits.inc(stats.cache_hits)
        self._m_misses.inc(stats.cache_misses)

        # Level 3: supervised execution of whatever remains.
        supervisor = CellSupervisor(
            workers=self.workers,
            policy=self.retry,
            telemetry=self._telemetry,
        )
        for index, result in supervisor.run_cells(pending):
            results[index] = result
            if is_failure(result):
                stats.failed += 1
                self.failures.append(result)
                self._record_journal(
                    digest, cells[index], version_tag, "failed", result
                )
                continue
            stats.executed += 1
            stats.batches_executed += int(result.get("batchesExecuted", 0))
            if self.cache is not None and not result.get("noCache"):
                self.cache.put(cells[index], result)
            self._record_journal(digest, cells[index], version_tag, "ok", result)
        self._m_executed.inc(stats.executed)
        stats.retries = supervisor.retries
        stats.timeouts = supervisor.timeouts
        stats.pool_rebuilds = supervisor.pool_rebuilds

        if self.cache is not None:
            stats.cache_self_healed = self.cache.self_healed - heal_before
            if stats.cache_self_healed:
                self._m_self_heal.inc(stats.cache_self_healed)

        stats.wall_seconds = time.perf_counter() - t0  # det: allow-wallclock
        self._m_seconds.observe(stats.wall_seconds)
        self.totals.cells += stats.cells
        self.totals.cache_hits += stats.cache_hits
        self.totals.cache_misses += stats.cache_misses
        self.totals.executed += stats.executed
        self.totals.batches_executed += stats.batches_executed
        self.totals.wall_seconds += stats.wall_seconds
        self.totals.failed += stats.failed
        self.totals.retries += stats.retries
        self.totals.timeouts += stats.timeouts
        self.totals.pool_rebuilds += stats.pool_rebuilds
        self.totals.journal_replayed += stats.journal_replayed
        self.totals.cache_self_healed += stats.cache_self_healed
        return SweepResult(
            spec=spec,
            cells=cells,
            results=results,  # type: ignore[arg-type]
            stats=stats,
        )

    def _record_journal(
        self,
        digest: Optional[str],
        cell: SweepCell,
        version_tag: Optional[str],
        status: str,
        result: Dict[str, Any],
    ) -> None:
        if self.journal is None or digest is None or version_tag is None:
            return
        self.journal.record_cell(digest, cell, version_tag, status, result)


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    use_cache: bool = True,
    telemetry: Optional[Telemetry] = None,
    journal: Optional[SweepJournal] = None,
    retry: Optional[RetryPolicy] = None,
) -> SweepResult:
    """One-call convenience wrapper around :class:`SweepRunner`."""
    return SweepRunner(
        workers=workers,
        cache=cache,
        use_cache=use_cache,
        telemetry=telemetry,
        journal=journal,
        retry=retry,
    ).run(spec)
