"""Content-addressed result cache for sweep cells.

Every cell result is stored under a key derived from *what was run*:

    sha256(canonical_json({kind, params, version}))

where ``version`` is the *substrate version tag* — a hash over the
source bytes of the whole ``repro`` package.  Any change to the
simulator (a scheduler tweak, a calibration constant, a bug fix)
changes the tag, which invalidates every cached cell at once; rerunning
an unchanged sweep on an unchanged substrate is a 100% cache hit and
executes zero simulations.

Invalidation rules (documented in DESIGN.md §12):

* different parameters → different key (content addressing);
* different ``repro`` source → different version tag → miss;
* ``--no-cache`` bypasses reads but still writes fresh results;
* ``clear()`` (CLI ``--clear-cache``) removes every entry;
* a corrupt or unreadable entry is treated as a miss and deleted.

Entries are plain JSON files, two-level fanned out by key prefix, so
the cache is inspectable with nothing but ``cat`` and survives
concurrent writers (writes go through a unique temp file + ``os.replace``).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, Optional

from .spec import SweepCell, canonical_json

#: Environment override for the default cache root.
CACHE_ENV = "REPRO_SWEEP_CACHE"

_VERSION_TAG: Optional[str] = None


def default_cache_dir() -> Path:
    """``$REPRO_SWEEP_CACHE`` or ``~/.cache/repro/sweeps``."""
    env = os.environ.get(CACHE_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "sweeps"


def _iter_package_sources(root: Path) -> Iterator[Path]:
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" not in path.parts:
            yield path


def substrate_version_tag(refresh: bool = False) -> str:
    """Hash of the ``repro`` package sources (memoized per process).

    The tag covers every ``.py`` file under the installed package root,
    path-and-content, so cached results can never silently survive a
    simulator change.
    """
    global _VERSION_TAG
    if _VERSION_TAG is not None and not refresh:
        return _VERSION_TAG
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in _iter_package_sources(root):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    _VERSION_TAG = digest.hexdigest()
    return _VERSION_TAG


def cell_digest(cell: SweepCell, version_tag: str) -> str:
    """Content digest of one cell on one substrate version.

    The single identity shared by the result cache and the sweep
    journal: sha256 over the canonical (kind, params, version) triple.
    """
    payload = canonical_json(
        {
            "kind": cell.kind,
            "params": cell.param_dict,
            "version": version_tag,
        }
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """On-disk cell-result cache keyed by (kind, params, substrate)."""

    def __init__(
        self,
        root: Optional[Path] = None,
        version_tag: Optional[str] = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.version_tag = version_tag or substrate_version_tag()
        #: Corrupt entries dropped by :meth:`get` over this cache's
        #: lifetime (the self-heal count the runner surfaces as
        #: ``repro_runner_cache_self_heal_total``).
        self.self_healed = 0

    def key(self, cell: SweepCell) -> str:
        return cell_digest(cell, self.version_tag)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, cell: SweepCell) -> Optional[Dict[str, Any]]:
        """Cached result for ``cell``, or None; corrupt entries vanish."""
        path = self._path(self.key(cell))
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
            return entry["result"]
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Unreadable or malformed: drop it so the slot heals itself.
            self.self_healed += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, cell: SweepCell, result: Dict[str, Any]) -> Path:
        """Persist ``result`` atomically; returns the entry path."""
        key = self.key(cell)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "kind": cell.kind,
            "params": cell.param_dict,
            "version": self.version_tag,
            "result": result,
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(entry, fh, sort_keys=True)
        os.replace(tmp, path)
        return path

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
