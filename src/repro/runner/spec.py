"""Declarative sweep specifications.

A sweep is a grid (or explicit case list) of simulation cells — one
fresh deployment per cell, exactly the "each point is a fresh
deployment" protocol every figure driver already follows.  The spec is
pure data: expanding it yields an ordered list of :class:`SweepCell`
whose parameters fully determine the result, which is what makes the
cells safe to execute in any order (or any process) and safe to cache
content-addressed.

Seeding follows two protocols:

* **pinned** — a cell whose params carry an explicit ``seed`` keeps it;
  the paper's repeat protocols (``base_seed + 100 * rep``,
  measurement seeds offset by ``+7``) stay byte-for-byte intact;
* **spawned** — when ``base_seed`` is set on the spec, cells without a
  pinned seed get one derived via ``np.random.SeedSequence.spawn``:
  statistically independent streams, stable under re-expansion, and
  independent of execution order.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np


def canonical_json(payload: Any) -> str:
    """Deterministic JSON rendering used for cell identity and hashing."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def spawn_seeds(base_seed: int, n: int) -> List[int]:
    """``n`` independent integer seeds derived from ``base_seed``.

    Uses ``SeedSequence.spawn`` so the streams are provably independent;
    the i-th seed depends only on ``(base_seed, i)``, never on how many
    workers execute the sweep or in which order.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    children = np.random.SeedSequence(base_seed).spawn(n)
    return [int(c.generate_state(1, dtype=np.uint32)[0]) for c in children]


@dataclass(frozen=True)
class SweepCell:
    """One unit of sweep work: a cell kind plus its full parameter set."""

    index: int
    kind: str
    params: Tuple[Tuple[str, Any], ...]

    @staticmethod
    def make(index: int, kind: str, params: Mapping[str, Any]) -> "SweepCell":
        return SweepCell(
            index=index,
            kind=kind,
            params=tuple(sorted(params.items())),
        )

    @property
    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def canonical(self) -> str:
        """Canonical identity string (cache key input, sans version)."""
        return canonical_json({"kind": self.kind, "params": self.param_dict})


@dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep: kind × base params × grid/cases × seeds.

    Parameters
    ----------
    name:
        Display name (cache-irrelevant; cells hash on kind+params only).
    kind:
        Registered cell kind (see :mod:`repro.runner.cells`).
    base:
        Parameters shared by every cell.
    grid:
        ``param -> sequence of values``; cells are the cross product in
        key insertion order (outer-to-inner), values in given order.
    cases:
        Explicit per-cell parameter dicts, appended after the grid
        product (use for dependent second-stage sweeps, e.g. measuring
        the configurations a first-stage optimizer run produced).
    base_seed:
        When set, cells that do not pin ``seed`` get a spawned one.
    """

    name: str
    kind: str
    base: Mapping[str, Any] = field(default_factory=dict)
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    cases: Sequence[Mapping[str, Any]] = field(default_factory=tuple)
    base_seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.kind:
            raise ValueError("spec needs a cell kind")
        for key, values in self.grid.items():
            if not isinstance(values, (list, tuple)):
                raise TypeError(
                    f"grid[{key!r}] must be a list/tuple of values, "
                    f"got {type(values).__name__}"
                )
            if not values:
                raise ValueError(f"grid[{key!r}] is empty")

    def _raw_param_sets(self) -> List[Dict[str, Any]]:
        sets: List[Dict[str, Any]] = []
        if self.grid:
            keys = list(self.grid.keys())
            for combo in itertools.product(*(self.grid[k] for k in keys)):
                sets.append({**self.base, **dict(zip(keys, combo))})
        elif not self.cases:
            sets.append(dict(self.base))
        for case in self.cases:
            sets.append({**self.base, **case})
        return sets

    def expand(self) -> List[SweepCell]:
        """Materialize the ordered cell list, resolving seeds."""
        sets = self._raw_param_sets()
        if self.base_seed is not None:
            seeds = spawn_seeds(self.base_seed, len(sets))
            for i, params in enumerate(sets):
                if "seed" not in params:
                    params["seed"] = seeds[i]
        return [
            SweepCell.make(i, self.kind, params)
            for i, params in enumerate(sets)
        ]

    def __len__(self) -> int:
        return len(self._raw_param_sets())
