"""Sweep cell kinds.

A *cell kind* is a named, pure function ``params -> JSON dict``: it
builds a fresh deployment from its parameters, runs it, and returns
plain data.  Purity is the contract that makes the sweep runner correct
— because a cell's result depends only on its parameter dict, executing
cells across processes is bit-identical to executing them sequentially,
and results can be cached content-addressed on the parameters alone.

The built-in kinds cover every figure driver and ablation benchmark:

* ``fixed_config`` — steady-state metrics of one fixed configuration
  (Figs. 2, 3, and the Fig. 7 measurement stage);
* ``nostop`` — one NoStop optimization run with the Fig. 7/8
  measurements and optional gain/collector-window overrides (the
  ablation benchmarks ride on these);
* ``bo`` — one Bayesian-optimization baseline run (Fig. 8);
* ``tournament`` — one (tuner, scenario, seed) leaderboard run of the
  optimizer tournament;
* ``rate_series`` — sampled input-rate trace (Fig. 5).

Every simulation-backed result carries ``batchesExecuted`` — the number
of micro-batches the cell actually simulated — so cache-hit claims are
verifiable: a fully cached sweep reports zero batches executed.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

CellFn = Callable[[Dict[str, Any]], Dict[str, Any]]

_REGISTRY: Dict[str, CellFn] = {}


def register_cell(kind: str) -> Callable[[CellFn], CellFn]:
    """Register a cell kind; kinds are global and must be unique."""

    def wrap(fn: CellFn) -> CellFn:
        if kind in _REGISTRY:
            raise ValueError(f"cell kind {kind!r} already registered")
        _REGISTRY[kind] = fn
        return fn

    return wrap


def cell_kinds() -> List[str]:
    return sorted(_REGISTRY)


def execute_cell(kind: str, params: Dict[str, Any]) -> Dict[str, Any]:
    """Run one cell; the module-level entry point worker processes use."""
    try:
        fn = _REGISTRY[kind]
    except KeyError:
        raise KeyError(
            f"unknown cell kind {kind!r}; expected one of {cell_kinds()}"
        ) from None
    return fn(dict(params))


def _pop(params: Dict[str, Any], key: str, default: Any) -> Any:
    value = params.pop(key, default)
    return default if value is None else value


def _delay_series(setup) -> List[float]:
    return [b.end_to_end_delay for b in setup.context.listener.metrics.batches]


@register_cell("fixed_config")
def _fixed_config_cell(params: Dict[str, Any]) -> Dict[str, Any]:
    """Steady-state run of one fixed (interval, executors) point."""
    from repro.baselines.fixed import run_fixed_configuration
    from repro.experiments.common import build_experiment

    workload = params.pop("workload")
    seed = int(params.pop("seed"))
    interval = float(params.pop("batch_interval"))
    executors = int(params.pop("num_executors"))
    batches = int(_pop(params, "batches", 40))
    warmup = int(_pop(params, "warmup", 5))
    max_executors = int(_pop(params, "max_executors", 20))
    count_only = bool(_pop(params, "count_only", False))
    fidelity = str(_pop(params, "fidelity", "exact"))
    if params:
        raise TypeError(f"fixed_config: unknown params {sorted(params)}")

    setup = build_experiment(
        workload,
        seed=seed,
        batch_interval=interval,
        num_executors=executors,
        max_executors=max_executors,
        count_only=count_only,
        fidelity=fidelity,
    )
    run = run_fixed_configuration(setup.context, batches=batches, warmup=warmup)
    return {
        "workload": workload,
        "batchInterval": interval,
        "numExecutors": executors,
        "meanEndToEndDelay": run.mean_end_to_end_delay,
        "meanProcessingTime": run.mean_processing_time,
        "meanSchedulingDelay": run.mean_scheduling_delay,
        "unstableFraction": run.unstable_fraction,
        "p50EndToEndDelay": run.p50_end_to_end_delay,
        "p95EndToEndDelay": run.p95_end_to_end_delay,
        "p99EndToEndDelay": run.p99_end_to_end_delay,
        "batches": run.batches,
        "delaySeries": _delay_series(setup),
        "batchesExecuted": len(setup.context.listener.metrics),
    }


def _resolve_gains(spec: Any, scaler, rounds: int):
    """Turn a JSON gains spec into a GainSchedule (None = paper gains)."""
    from repro.core.gains import GainSchedule

    if spec is None:
        return None
    if isinstance(spec, dict) and "suggest" in spec:
        from repro.core.tuning import suggest_gains

        opts = dict(spec["suggest"] or {})
        return suggest_gains(
            scaler.scaled,
            expected_iterations=int(opts.pop("expected_iterations", rounds)),
            **opts,
        )
    if isinstance(spec, dict):
        return GainSchedule(**spec)
    raise TypeError(f"gains spec must be a dict or None, got {spec!r}")


@register_cell("nostop")
def _nostop_cell(params: Dict[str, Any]) -> Dict[str, Any]:
    """One NoStop run reporting the Fig. 7 and Fig. 8 measurements."""
    from repro.core.metrics_collector import MetricsCollector
    from repro.experiments.common import build_experiment, make_controller

    workload = params.pop("workload")
    seed = int(params.pop("seed"))
    rounds = int(_pop(params, "rounds", 40))
    gains_spec = params.pop("gains", None)
    collector_window = params.pop("collector_window", None)
    collector_max_window = params.pop("collector_max_window", None)
    count_only = bool(_pop(params, "count_only", False))
    fidelity = str(_pop(params, "fidelity", "exact"))
    if params:
        raise TypeError(f"nostop: unknown params {sorted(params)}")

    setup = build_experiment(
        workload, seed=seed, count_only=count_only, fidelity=fidelity
    )
    gains = _resolve_gains(gains_spec, setup.scaler, rounds)
    controller = make_controller(setup, seed=seed, gains=gains)
    if collector_window is not None:
        window = int(collector_window)
        max_window = (
            int(collector_max_window)
            if collector_max_window is not None
            else max(12, window)
        )
        controller.collector = MetricsCollector(
            window=window, max_window=max_window
        )
        controller.adjust.collector = controller.collector
    start_time = setup.system.time
    report = controller.run(rounds)
    converged = report.first_pause_round is not None
    search_time = (
        report.first_pause_time
        if converged
        else setup.system.time - start_time
    )
    config_steps = (
        report.adjust_calls_to_pause if converged else controller.adjust.calls
    )
    best = controller.pause_rule.best_config()
    return {
        "workload": workload,
        "rounds": rounds,
        "finalInterval": report.final_interval,
        "finalExecutors": report.final_executors,
        "configChanges": report.config_changes,
        "resets": report.resets,
        "converged": converged,
        "firstPauseRound": report.first_pause_round,
        "searchTime": float(search_time),
        "configSteps": int(config_steps),
        "best": {
            "batchInterval": best.batch_interval,
            "numExecutors": best.num_executors,
            "endToEndDelay": best.end_to_end_delay,
            "meanProcessingTime": best.mean_processing_time,
            "objective": best.objective,
            "stable": best.stable,
        },
        "simTime": setup.system.time - start_time,
        "delaySeries": _delay_series(setup),
        "batchesExecuted": len(setup.context.listener.metrics),
    }


@register_cell("bo")
def _bo_cell(params: Dict[str, Any]) -> Dict[str, Any]:
    """One Bayesian-optimization baseline run (Fig. 8 comparison)."""
    from repro.baselines.bayesian import run_bayesian_optimization
    from repro.core.metrics_collector import MetricsCollector
    from repro.core.pause import PauseRule
    from repro.experiments.common import build_experiment

    workload = params.pop("workload")
    seed = int(params.pop("seed"))
    max_evaluations = int(_pop(params, "max_evaluations", 80))
    count_only = bool(_pop(params, "count_only", False))
    fidelity = str(_pop(params, "fidelity", "exact"))
    if params:
        raise TypeError(f"bo: unknown params {sorted(params)}")

    setup = build_experiment(
        workload, seed=seed, count_only=count_only, fidelity=fidelity
    )
    report = run_bayesian_optimization(
        setup.system,
        setup.scaler,
        max_evaluations=max_evaluations,
        seed=seed,
        pause_rule=PauseRule(),
        collector=MetricsCollector(),
    )
    final_delay = (
        report.final_delay
        if report.final_delay is not None
        else report.best().end_to_end_delay
    )
    return {
        "workload": workload,
        "finalDelay": final_delay,
        "searchTime": float(report.search_time or 0.0),
        "configSteps": report.config_steps,
        "converged": report.converged_at is not None,
        "batchesExecuted": len(setup.context.listener.metrics),
    }


@register_cell("fault_probe")
def _fault_probe_cell(params: Dict[str, Any]) -> Dict[str, Any]:
    """Synthetic failure cell exercising the supervisor.

    Not a simulation — a controllable fault source for supervisor,
    journal, and CI recovery tests.  Modes:

    * ``ok`` — succeed immediately;
    * ``crash`` — raise (a retryable, then poisoned, crash);
    * ``hang`` — sleep ``hang_seconds`` (trips the per-cell timeout);
    * ``kill`` — hard-exit the worker process (the BrokenProcessPool /
      OOM-kill condition);
    * ``flaky`` — fail the first ``fail_times`` attempts, tracked in a
      counter file under ``state_dir``, then succeed (exercises retry
      recovery).

    ``flaky`` reads filesystem state, so fault_probe results are
    impure: every result carries ``noCache`` and the runner never
    caches them.
    """
    import time as _time

    mode = str(_pop(params, "mode", "ok"))
    tag = str(_pop(params, "tag", "probe"))
    hang_seconds = float(_pop(params, "hang_seconds", 30.0))
    fail_times = int(_pop(params, "fail_times", 1))
    state_dir = params.pop("state_dir", None)
    if params:
        raise TypeError(f"fault_probe: unknown params {sorted(params)}")

    if mode == "crash":
        raise RuntimeError(f"fault_probe[{tag}]: injected crash")
    if mode == "hang":
        _time.sleep(hang_seconds)
    elif mode == "kill":
        import os as _os

        _os._exit(137)
    elif mode == "flaky":
        if state_dir is None:
            raise TypeError("fault_probe: flaky mode needs state_dir")
        from pathlib import Path as _Path

        counter = _Path(state_dir) / f"flaky_{tag}.count"
        seen = int(counter.read_text()) if counter.exists() else 0
        if seen < fail_times:
            counter.parent.mkdir(parents=True, exist_ok=True)
            counter.write_text(str(seen + 1))
            raise RuntimeError(
                f"fault_probe[{tag}]: flaky failure {seen + 1}/{fail_times}"
            )
    elif mode != "ok":
        raise TypeError(f"fault_probe: unknown mode {mode!r}")
    return {
        "mode": mode,
        "tag": tag,
        "batchesExecuted": 0,
        "noCache": True,
    }


@register_cell("tournament")
def _tournament_cell(params: Dict[str, Any]) -> Dict[str, Any]:
    """One (tuner, scenario, seed) run of the optimizer tournament.

    Builds the scenario's rate trace, runs one registered tuner through
    the shared :func:`~repro.tuners.base.run_tuner` loop over the
    four-axis configuration space, and reports the scored leaderboard
    row.  Defaults to the vectorized fidelity tier — a tournament is a
    fleet of optimization runs, and the fast tier is oracle-validated
    against the exact DES.
    """
    from repro.experiments.common import build_experiment
    from repro.tuners import make_tuner, run_tuner
    from repro.tuners.tournament import scenario_trace, tournament_space

    tuner_name = str(params.pop("tuner"))
    seed = int(params.pop("seed"))
    workload = str(_pop(params, "workload", "wordcount"))
    scenario = str(_pop(params, "scenario", "steady"))
    budget = int(_pop(params, "budget", 30))
    fidelity = str(_pop(params, "fidelity", "vectorized"))
    slo_delay = float(_pop(params, "slo_delay", 30.0))
    options = dict(_pop(params, "tuner_options", {}))
    if params:
        raise TypeError(f"tournament: unknown params {sorted(params)}")

    trace = scenario_trace(scenario, workload)
    setup = build_experiment(
        workload, seed=seed, rate_trace=trace, fidelity=fidelity
    )
    space = tournament_space()
    tuner = make_tuner(tuner_name, space, seed=seed, **options)
    report = run_tuner(
        tuner,
        setup.system,
        space,
        max_evaluations=budget,
        slo_delay=slo_delay,
    )
    result = report.to_dict()
    result.update({
        "workload": workload,
        "scenario": scenario,
        "budget": budget,
        "fidelity": fidelity,
        "sloDelaySeconds": slo_delay,
        "batchesExecuted": len(setup.context.listener.metrics),
    })
    return result


@register_cell("rate_series")
def _rate_series_cell(params: Dict[str, Any]) -> Dict[str, Any]:
    """Sample one workload's paper rate trace (Fig. 5)."""
    import numpy as np

    from repro.datagen.rates import PAPER_RATE_BANDS, RATE_BAND_ALIASES, paper_rate_trace

    workload = params.pop("workload")
    seed = int(params.pop("seed"))
    duration = float(_pop(params, "duration", 600.0))
    dt = float(_pop(params, "dt", 5.0))
    if params:
        raise TypeError(f"rate_series: unknown params {sorted(params)}")
    if duration <= 0 or dt <= 0:
        raise ValueError("duration and dt must be positive")

    trace = paper_rate_trace(workload, seed=seed)
    band = PAPER_RATE_BANDS[RATE_BAND_ALIASES.get(workload, workload)]
    times = [float(t) for t in np.arange(0.0, duration, dt)]
    return {
        "workload": workload,
        "band": list(band),
        "times": times,
        "rates": [trace.rate(t) for t in times],
        "batchesExecuted": 0,
    }
