"""The declarative metric catalog: every ``repro_*`` series, governed.

This module is the **schema of record** for the metrics the repository
emits.  Each metric is declared once as a :class:`MetricSpec` — name,
kind, unit, label schema, owning subsystem, help text, stability — and
instrumentation call sites create their instruments *through* the
catalog (:func:`instrument`), so a series cannot exist without a
declaration the governance checker can see.

Three consumers sit on top of the catalog:

* **governance** — :func:`check_registry` diffs a live registry against
  the catalog (uncataloged series, kind mismatches, label-schema
  drift), and :func:`lint_catalog` enforces naming conventions
  (``_total`` on counters, unit suffixes, label-name rules).  Both are
  wired into ``repro check`` and the CI governance job.
* **documentation** — :func:`catalog_markdown` / :func:`catalog_json`
  render the byte-deterministic ``docs/METRICS.md`` and
  ``docs/metrics.json`` (``repro metrics catalog``).
* **dashboards** — :mod:`repro.obs.dash` generates Grafana dashboard
  JSON from the same declarations, one row per subsystem.

Stability levels: ``stable`` series are part of the repository's
observable contract (dashboards, SLOs, and the run report may depend on
them); ``experimental`` series may be renamed or dropped without a
deprecation cycle.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .registry import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_MAX_CHILDREN,
    DEFAULT_SECONDS_BUCKETS,
    MetricFamily,
    MetricsRegistry,
    RESERVED_LABEL_NAMES,
)

_LABEL_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: Unit suffixes the convention lint recognises.  A spec with a unit
#: must end its name with ``_<unit>`` (before the ``_total`` suffix for
#: counters, e.g. ``repro_kafka_records_consumed_total`` has unit
#: ``records`` carried in the middle — see :func:`lint_catalog`).
KNOWN_UNITS = ("seconds", "records", "count", "bytes", "ratio", "")

STABILITY_LEVELS = ("stable", "experimental")

KINDS = ("counter", "gauge", "histogram")


@dataclass(frozen=True)
class MetricSpec:
    """One declared metric: the unit of governance."""

    name: str
    kind: str
    subsystem: str
    help: str
    unit: str = ""
    """Measurement unit (``seconds``, ``records``, …); empty for
    dimensionless instantaneous values (executor counts, queue length)."""
    labels: Tuple[str, ...] = ()
    """Immutable label schema; empty = flat (unlabeled) metric."""
    stability: str = "stable"
    buckets: Optional[Tuple[float, ...]] = None
    """Histogram bucket bounds; ``None`` uses the seconds default."""
    max_children: int = DEFAULT_MAX_CHILDREN
    """Cardinality budget for labeled families."""

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "subsystem": self.subsystem,
            "help": self.help,
            "unit": self.unit,
            "labels": list(self.labels),
            "stability": self.stability,
            "buckets": list(self.buckets) if self.buckets else None,
            "maxChildren": self.max_children if self.labels else None,
        }


def _spec(
    name: str,
    kind: str,
    help: str,
    unit: str = "",
    labels: Sequence[str] = (),
    stability: str = "stable",
    buckets: Optional[Sequence[float]] = None,
    max_children: int = DEFAULT_MAX_CHILDREN,
) -> MetricSpec:
    subsystem = name.split("_")[1] if name.count("_") >= 2 else ""
    return MetricSpec(
        name=name,
        kind=kind,
        subsystem=subsystem,
        help=help,
        unit=unit,
        labels=tuple(labels),
        stability=stability,
        buckets=tuple(buckets) if buckets is not None else None,
        max_children=max_children,
    )


#: The catalog.  Keep sorted by (subsystem, name) within each block;
#: the generators re-sort defensively, so ordering here is for humans.
CATALOG: Tuple[MetricSpec, ...] = (
    # -- chaos ---------------------------------------------------------------
    _spec("repro_chaos_active_faults", "gauge",
          "Faults injected but not yet recovered"),
    _spec("repro_chaos_injections_total", "counter",
          "Fault events fired", labels=("kind",), max_children=16),
    _spec("repro_chaos_recoveries_total", "counter",
          "Fault events recovered", labels=("kind",), max_children=16),
    # -- check ---------------------------------------------------------------
    _spec("repro_check_checks_total", "counter",
          "Invariant checks evaluated"),
    _spec("repro_check_violations_total", "counter",
          "Runtime invariant violations detected",
          labels=("invariant",), max_children=16),
    # -- cluster -------------------------------------------------------------
    _spec("repro_cluster_executor_failures_total", "counter",
          "Unplanned executor losses (crash injection)"),
    _spec("repro_cluster_executors", "gauge",
          "Live executors in the pool"),
    _spec("repro_cluster_scale_ops_total", "counter",
          "Executor-count reconfigurations performed",
          labels=("direction",), max_children=2),
    # -- engine --------------------------------------------------------------
    _spec("repro_engine_jobs_total", "counter",
          "Jobs executed by the engine"),
    _spec("repro_engine_stage_seconds", "histogram",
          "Per-stage wall time inside a job", unit="seconds"),
    _spec("repro_engine_task_failures_total", "counter",
          "Task attempts that failed and were re-run"),
    # -- fast ----------------------------------------------------------------
    _spec("repro_fast_batches_dropped_total", "counter",
          "Batches evicted from the fast-tier queue at capacity"),
    _spec("repro_fast_batches_total", "counter",
          "Batches completed by the fast-tier engine",
          labels=("mode",), max_children=2),
    _spec("repro_fast_prefetch_depth", "gauge",
          "Current adaptive prefetch block size"),
    _spec("repro_fast_prefetch_fills_total", "counter",
          "Prefetch block refills (vectorized cost computations)"),
    _spec("repro_fast_reconfigurations_total", "counter",
          "Runtime configuration changes applied by the fast context"),
    # -- kafka ---------------------------------------------------------------
    _spec("repro_kafka_consumer_lag_records", "gauge",
          "Records appended but not yet consumed",
          unit="records", labels=("topic",), max_children=32),
    _spec("repro_kafka_consumer_polls_total", "counter",
          "Offset-range poll calls"),
    _spec("repro_kafka_records_consumed_total", "counter",
          "Records pulled from the topic by the direct-stream consumer",
          unit="records", labels=("topic",), max_children=32),
    _spec("repro_kafka_records_produced_total", "counter",
          "Records appended to the topic by the producer",
          unit="records", labels=("topic",), max_children=32),
    _spec("repro_kafka_records_throttled_total", "counter",
          "Records withheld by the producer rate cap",
          unit="records", labels=("topic",), max_children=32),
    # -- nostop --------------------------------------------------------------
    _spec("repro_nostop_guarded_rounds_total", "counter",
          "SPSA rounds rolled back by the corrupted-measurement guard"),
    _spec("repro_nostop_resets_total", "counter",
          "Rate-shift resets fired by the paper's restart rule"),
    _spec("repro_nostop_rounds_total", "counter",
          "NoStop control rounds executed"),
    # -- obs -----------------------------------------------------------------
    _spec("repro_obs_cardinality_rejected_total", "counter",
          "labels() calls rejected because the family cardinality budget "
          "was already spent"),
    _spec("repro_obs_emit_dropped_total", "counter",
          "Telemetry events dropped by the emission batcher on overflow"),
    _spec("repro_obs_emit_enqueued_total", "counter",
          "Telemetry events accepted into the emission batcher"),
    _spec("repro_obs_emit_flushed_total", "counter",
          "Telemetry events flushed to the sink"),
    _spec("repro_obs_emit_flushes_total", "counter",
          "Emission batcher flushes (interval, capacity, or close)"),
    _spec("repro_obs_emit_queue_length", "gauge",
          "Events pending in the emission batcher queue"),
    _spec("repro_obs_trace_evicted_total", "counter",
          "Traces discarded at finalization by the flight recorder "
          "(head-sampled out and not interesting, or ring-consumed)",
          labels=("reason",), max_children=8),
    _spec("repro_obs_trace_retained_total", "counter",
          "Traces kept at finalization by the flight recorder, by "
          "retention reason (sampled, chaos, slo, anomaly, reconfig, ...)",
          labels=("reason",), max_children=16),
    _spec("repro_obs_trace_sampled_total", "counter",
          "Traces pre-selected by deterministic SHA-256 head sampling"),
    _spec("repro_obs_trace_spans_dropped_total", "counter",
          "Spans consumed by the span ring (finished or unfinished) or "
          "finished after eviction (late_finish)",
          labels=("reason",), max_children=4),
    # -- runner --------------------------------------------------------------
    _spec("repro_runner_cache_hits_total", "counter",
          "Sweep cells served from cache"),
    _spec("repro_runner_cache_misses_total", "counter",
          "Sweep cells not in cache"),
    _spec("repro_runner_cache_self_heal_total", "counter",
          "Corrupt cache entries dropped and treated as misses"),
    _spec("repro_runner_cells_executed_total", "counter",
          "Sweep cells simulated"),
    _spec("repro_runner_cells_total", "counter",
          "Sweep cells processed"),
    _spec("repro_runner_journal_corrupt_total", "counter",
          "Corrupt journal lines skipped during replay"),
    _spec("repro_runner_sweep_seconds", "histogram",
          "Wall-clock per sweep run", unit="seconds"),
    # -- streaming -----------------------------------------------------------
    _spec("repro_streaming_batch_interval_seconds", "gauge",
          "Configured batch interval", unit="seconds"),
    _spec("repro_streaming_batch_records_count", "histogram",
          "Records per batch", unit="count",
          buckets=DEFAULT_COUNT_BUCKETS),
    _spec("repro_streaming_batches_dropped_total", "counter",
          "Batches evicted by the bounded batch queue"),
    _spec("repro_streaming_batches_total", "counter",
          "Completed micro-batches"),
    _spec("repro_streaming_end_to_end_delay_seconds", "histogram",
          "Mean record end-to-end delay per batch", unit="seconds"),
    _spec("repro_streaming_executors", "gauge",
          "Executors the streaming context is configured to use"),
    _spec("repro_streaming_processing_seconds", "histogram",
          "Batch processing time", unit="seconds"),
    _spec("repro_streaming_queue_length", "gauge",
          "Batches waiting in the queue"),
    _spec("repro_streaming_receiver_stall_windows_total", "counter",
          "Poll windows skipped because the receiver was stalled"),
    _spec("repro_streaming_reconfigurations_total", "counter",
          "Configuration changes applied by the context"),
    _spec("repro_streaming_records_total", "counter",
          "Records across completed batches", unit="records"),
    _spec("repro_streaming_scheduling_delay_seconds", "histogram",
          "Batch schedule delay", unit="seconds"),
    _spec("repro_streaming_unstable_batches_total", "counter",
          "Batches whose processing time exceeded their interval"),
    # -- supervisor ----------------------------------------------------------
    _spec("repro_supervisor_cell_failures_total", "counter",
          "Cells abandoned as CellFailure after exhausting retries"),
    _spec("repro_supervisor_journal_replays_total", "counter",
          "Sweep cells resumed from a write-ahead journal"),
    _spec("repro_supervisor_pool_rebuilds_total", "counter",
          "Worker processes respawned after a death or timeout kill"),
    _spec("repro_supervisor_retries_total", "counter",
          "Cell attempts retried"),
    _spec("repro_supervisor_timeouts_total", "counter",
          "Cell attempts timed out"),
    # -- tuner ---------------------------------------------------------------
    _spec("repro_tuner_asks_total", "counter",
          "Configurations proposed by a tuner through the unified "
          "ask/observe interface",
          labels=("tuner",), max_children=16),
    _spec("repro_tuner_best_objective", "gauge",
          "Best penalized objective a tuner run settled on",
          labels=("tuner",), max_children=16),
    _spec("repro_tuner_convergence_batches", "gauge",
          "Micro-batches executed before the tuner's convergence rule "
          "fired (budget-exhausted runs report the full run)",
          labels=("tuner",), max_children=16),
    _spec("repro_tuner_observations_total", "counter",
          "Objective observations fed back to a tuner",
          labels=("tuner",), max_children=16),
    _spec("repro_tuner_penalized_total", "counter",
          "Non-finite objective observations clamped to the finite "
          "divergence penalty instead of aborting the run"),
    _spec("repro_tuner_reconfig_seconds", "gauge",
          "Total reconfiguration pause injected during a tuner run "
          "(the restart-cost column of the tournament leaderboard)",
          unit="seconds", labels=("tuner",), max_children=16),
    _spec("repro_tuner_slo_violation_seconds", "gauge",
          "Stream-time seconds whose batches breached the delay SLO "
          "during a tuner run",
          unit="seconds", labels=("tuner",), max_children=16),
)

#: Name → spec index over the catalog.
SPECS: Dict[str, MetricSpec] = {s.name: s for s in CATALOG}


def subsystems() -> List[str]:
    """Distinct owning subsystems, sorted."""
    return sorted({s.subsystem for s in CATALOG})


def names(
    subsystem: Optional[Sequence[str]] = None,
    kind: Optional[str] = None,
) -> List[str]:
    """Catalog metric names, optionally filtered, sorted.

    This is the static replacement for hand-maintained name lists:
    consumers (the run report's resource section, dashboards) enumerate
    the catalog instead of repeating prefix strings.
    """
    subsys = tuple(subsystem) if subsystem is not None else None
    return sorted(
        s.name for s in CATALOG
        if (subsys is None or s.subsystem in subsys)
        and (kind is None or s.kind == kind)
    )


def spec_for(name: str) -> MetricSpec:
    try:
        return SPECS[name]
    except KeyError:
        raise KeyError(
            f"metric {name!r} is not in the catalog; declare it in "
            "repro.obs.catalog.CATALOG before instrumenting"
        ) from None


def instrument(registry: MetricsRegistry, name: str):
    """Create-or-get the instrument for a cataloged metric.

    This is the call-site entry point: help text, bucket bounds, label
    schema, and cardinality budget all come from the declaration, so a
    series cannot drift from its catalog entry.  Flat specs return a
    plain instrument; labeled specs return the family (bind children
    with ``.labels(...)``).
    """
    spec = spec_for(name)
    if spec.labels:
        if spec.kind == "counter":
            return registry.counter_family(
                spec.name, spec.help, spec.labels, spec.max_children
            )
        if spec.kind == "gauge":
            return registry.gauge_family(
                spec.name, spec.help, spec.labels, spec.max_children
            )
        return registry.histogram_family(
            spec.name, spec.help, spec.labels, spec.max_children,
            spec.buckets or DEFAULT_SECONDS_BUCKETS,
        )
    if spec.kind == "counter":
        return registry.counter(spec.name, spec.help)
    if spec.kind == "gauge":
        return registry.gauge(spec.name, spec.help)
    return registry.histogram(
        spec.name, spec.help, spec.buckets or DEFAULT_SECONDS_BUCKETS
    )


# -- governance --------------------------------------------------------------


def lint_catalog(catalog: Sequence[MetricSpec] = CATALOG) -> List[str]:
    """Convention lint over the declarations themselves.

    Rules: names are ``repro_<subsystem>_…`` and match the declared
    subsystem; counters end in ``_total`` and nothing else does;
    histograms carry a known unit whose suffix appears in the name;
    specs with a unit end in ``_<unit>`` (counters: ``_<unit>_total`` or
    ``_total`` with the unit mid-name); label names are lowercase
    identifiers and never shadow reserved Prometheus labels; names are
    unique; help text is present.
    """
    problems: List[str] = []
    seen: Dict[str, int] = {}
    for spec in catalog:
        n = spec.name
        seen[n] = seen.get(n, 0) + 1
        if not n.startswith(f"repro_{spec.subsystem}_"):
            problems.append(
                f"{n}: name does not start with "
                f"repro_{spec.subsystem}_ (subsystem {spec.subsystem!r})"
            )
        if spec.kind not in KINDS:
            problems.append(f"{n}: unknown kind {spec.kind!r}")
        if spec.kind == "counter" and not n.endswith("_total"):
            problems.append(f"{n}: counter name must end in _total")
        if spec.kind != "counter" and n.endswith("_total"):
            problems.append(f"{n}: only counters may end in _total")
        if spec.unit not in KNOWN_UNITS:
            problems.append(
                f"{n}: unknown unit {spec.unit!r} "
                f"(expected one of {[u for u in KNOWN_UNITS if u]})"
            )
        elif spec.unit:
            stem = n[: -len("_total")] if n.endswith("_total") else n
            if not (stem.endswith(f"_{spec.unit}")
                    or f"_{spec.unit}_" in n):
                problems.append(
                    f"{n}: unit {spec.unit!r} does not appear as a "
                    f"_{spec.unit} suffix"
                )
        if spec.kind == "histogram" and not spec.unit:
            problems.append(f"{n}: histograms must declare a unit")
        if spec.stability not in STABILITY_LEVELS:
            problems.append(
                f"{n}: unknown stability {spec.stability!r}"
            )
        if not spec.help.strip():
            problems.append(f"{n}: empty help text")
        for ln in spec.labels:
            if not _LABEL_NAME_RE.match(ln):
                problems.append(f"{n}: invalid label name {ln!r}")
            elif ln in RESERVED_LABEL_NAMES:
                problems.append(f"{n}: label name {ln!r} is reserved")
        if len(set(spec.labels)) != len(spec.labels):
            problems.append(f"{n}: duplicate label names {spec.labels}")
        if spec.labels and spec.max_children < 1:
            problems.append(f"{n}: cardinality budget must be >= 1")
        if spec.buckets is not None and spec.kind != "histogram":
            problems.append(f"{n}: only histograms take buckets")
    problems.extend(
        f"{name}: declared {count} times in the catalog"
        for name, count in sorted(seen.items()) if count > 1
    )
    return sorted(problems)


def check_registry(
    registry: MetricsRegistry,
    catalog: Sequence[MetricSpec] = CATALOG,
) -> List[str]:
    """Diff a live registry against the catalog.

    Flags series the catalog does not know (the governance failure this
    subsystem exists to prevent), kind mismatches, and label-schema
    drift.  Catalog entries with no live series are fine — most runs
    exercise a subset of the stack.
    """
    specs = {s.name: s for s in catalog}
    problems: List[str] = []
    for metric in registry.collect():
        name = metric.name  # type: ignore[attr-defined]
        spec = specs.get(name)
        if spec is None:
            problems.append(f"{name}: live series not in the catalog")
            continue
        kind = metric.kind  # type: ignore[attr-defined]
        if kind != spec.kind:
            problems.append(
                f"{name}: live kind {kind!r} != cataloged {spec.kind!r}"
            )
        live_labels = (
            metric.labelnames if isinstance(metric, MetricFamily) else ()
        )
        if tuple(live_labels) != spec.labels:
            problems.append(
                f"{name}: live label schema {tuple(live_labels)} != "
                f"cataloged {spec.labels}"
            )
        if (isinstance(metric, MetricFamily)
                and metric.max_children != spec.max_children):
            problems.append(
                f"{name}: live cardinality budget {metric.max_children} "
                f"!= cataloged {spec.max_children}"
            )
    return sorted(problems)


def governance_report(registry: MetricsRegistry) -> List[str]:
    """Full governance pass: catalog conventions + live-registry diff."""
    return lint_catalog() + check_registry(registry)


# -- generators --------------------------------------------------------------


def _sorted_catalog(
    catalog: Sequence[MetricSpec],
) -> List[Tuple[str, List[MetricSpec]]]:
    by_subsystem: Dict[str, List[MetricSpec]] = {}
    for spec in catalog:
        by_subsystem.setdefault(spec.subsystem, []).append(spec)
    return [
        (subsystem, sorted(by_subsystem[subsystem], key=lambda s: s.name))
        for subsystem in sorted(by_subsystem)
    ]


def catalog_markdown(catalog: Sequence[MetricSpec] = CATALOG) -> str:
    """``docs/METRICS.md`` content: byte-deterministic, one table per
    subsystem, generated — regenerate with ``repro metrics catalog``."""
    lines = [
        "# Metrics catalog",
        "",
        "<!-- Generated by `repro metrics catalog --write`. "
        "Do not edit by hand. -->",
        "",
        f"{len(catalog)} metrics across "
        f"{len({s.subsystem for s in catalog})} subsystems.  "
        "Labeled families declare an immutable label schema and a hard "
        "cardinality budget; over-budget label sets are rejected and "
        "counted on `repro_obs_cardinality_rejected_total`.",
        "",
    ]
    for subsystem, specs in _sorted_catalog(catalog):
        lines.append(f"## {subsystem}")
        lines.append("")
        lines.append(
            "| name | kind | unit | labels | budget | stability | help |"
        )
        lines.append("|---|---|---|---|---|---|---|")
        for s in specs:
            labels = ", ".join(s.labels) if s.labels else "—"
            budget = str(s.max_children) if s.labels else "—"
            unit = s.unit or "—"
            lines.append(
                f"| `{s.name}` | {s.kind} | {unit} | {labels} "
                f"| {budget} | {s.stability} | {s.help} |"
            )
        lines.append("")
    return "\n".join(lines)


def catalog_json(catalog: Sequence[MetricSpec] = CATALOG) -> str:
    """Machine-readable catalog (``docs/metrics.json``), sorted keys."""
    payload = {
        "metrics": [
            s.to_dict()
            for _, specs in _sorted_catalog(catalog) for s in specs
        ],
        "subsystems": sorted({s.subsystem for s in catalog}),
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
