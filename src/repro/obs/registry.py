"""Metrics registry: counters, gauges, histograms with fixed buckets.

Naming follows ``repro_<subsystem>_<name>_<unit>`` (DESIGN.md §10), e.g.
``repro_streaming_processing_seconds``.  The registry enforces the
character set Prometheus accepts, deduplicates by name (asking twice for
the same metric returns the same instance), and renders through
:func:`repro.obs.exporters.prometheus_text`.

Disabled telemetry uses :data:`NOOP_REGISTRY`, whose factory methods hand
back shared do-nothing instruments — instrumented code holds real
attribute references either way and pays only an empty method call when
telemetry is off.
"""

from __future__ import annotations

import bisect
import re
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

_NAME_RE = re.compile(r"^[a-z_:][a-z0-9_:]*$")

#: Default latency buckets (seconds), spanning sub-second task phases to
#: the paper's 40 s maximum batch interval and deep-backlog delays.
DEFAULT_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0,
)

#: Default magnitude buckets for record counts per batch.
DEFAULT_COUNT_BUCKETS: Tuple[float, ...] = (
    100.0, 1_000.0, 10_000.0, 50_000.0, 100_000.0, 500_000.0,
    1_000_000.0, 5_000_000.0,
)


class Counter:
    """Monotonically increasing counter."""

    kind = "counter"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        self.value += amount


class Gauge:
    """Instantaneous value that can move in either direction."""

    kind = "gauge"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Cumulative histogram over fixed, immutable bucket bounds."""

    kind = "histogram"
    __slots__ = ("name", "help", "bounds", "bucket_counts", "sum", "count")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram {name} bucket bounds must be strictly increasing"
            )
        self.name = name
        self.help = help
        self.bounds = bounds
        #: counts[i] observations fell in (bounds[i-1], bounds[i]]; the
        #: trailing slot is the +Inf overflow bucket.
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative_counts(self) -> List[int]:
        """Prometheus-style cumulative per-bucket counts (incl. +Inf)."""
        out: List[int] = []
        running = 0
        for c in self.bucket_counts:
            running += c
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (0 when empty).

        Accurate to bucket resolution — good enough for CLI summaries;
        exact percentiles over raw values live in
        :func:`repro.streaming.metrics.percentile`.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0
        prev_bound = 0.0
        for i, c in enumerate(self.bucket_counts):
            upper = self.bounds[i] if i < len(self.bounds) else self.bounds[-1]
            if running + c >= target and c > 0:
                frac = (target - running) / c
                return prev_bound + frac * (upper - prev_bound)
            running += c
            prev_bound = upper
        return self.bounds[-1]


class _NoopInstrument:
    """One object impersonating all three instrument kinds, doing nothing."""

    kind = "noop"
    name = "noop"
    help = ""
    value = 0.0
    sum = 0.0
    count = 0
    bounds: Tuple[float, ...] = ()
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def cumulative_counts(self) -> List[int]:
        return []

    def quantile(self, q: float) -> float:
        return 0.0


NOOP_INSTRUMENT = _NoopInstrument()


class MetricsRegistry:
    """Create-or-get factory and collection point for instruments."""

    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, kind: str, factory):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        if not name.startswith("repro_"):
            raise ValueError(
                f"metric name {name!r} must follow repro_<subsystem>_<name>_<unit>"
            )
        existing = self._metrics.get(name)
        if existing is not None:
            if existing.kind != kind:  # type: ignore[attr-defined]
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, requested {kind}"  # type: ignore[attr-defined]
                )
            return existing
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, "counter", lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, "gauge", lambda: Gauge(name, help))

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ) -> Histogram:
        return self._get(name, "histogram", lambda: Histogram(name, help, buckets))

    def get(self, name: str) -> Optional[object]:
        return self._metrics.get(name)

    def collect(self) -> Iterable[object]:
        """All registered instruments, sorted by name (deterministic)."""
        return [self._metrics[k] for k in sorted(self._metrics)]

    def __len__(self) -> int:
        return len(self._metrics)


class _NoopRegistry(MetricsRegistry):
    """Registry whose factories hand out the shared no-op instrument."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, help: str = "") -> Counter:
        return NOOP_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return NOOP_INSTRUMENT  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ) -> Histogram:
        return NOOP_INSTRUMENT  # type: ignore[return-value]

    def collect(self) -> Iterable[object]:
        return []


NOOP_REGISTRY = _NoopRegistry()
