"""Metrics registry: counters, gauges, histograms with fixed buckets.

Naming follows ``repro_<subsystem>_<name>_<unit>`` (DESIGN.md §10), e.g.
``repro_streaming_processing_seconds``.  The registry enforces the
character set Prometheus accepts, deduplicates by name (asking twice for
the same metric returns the same instance), and renders through
:func:`repro.obs.exporters.prometheus_text`.

Beyond flat instruments, the registry serves **labeled metric families**
(:class:`CounterFamily`, :class:`GaugeFamily`, :class:`HistogramFamily`):
one name, an immutable label schema declared at creation, and interned
per-label-set children.  Every family carries a hard **cardinality
budget** (``max_children``); a ``labels()`` call that would mint a child
beyond the budget gets the shared no-op instrument back and increments
``repro_obs_cardinality_rejected_total`` — the registry never grows
without bound, and the rejection is visible in telemetry instead of
silent.  The schema of record for every family (and every flat metric)
lives in :mod:`repro.obs.catalog`.

Disabled telemetry uses :data:`NOOP_REGISTRY`, whose factory methods hand
back shared do-nothing instruments — instrumented code holds real
attribute references either way and pays only an empty method call when
telemetry is off.
"""

from __future__ import annotations

import bisect
import re
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

_NAME_RE = re.compile(r"^[a-z_:][a-z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: Label names the Prometheus data model reserves for itself.
RESERVED_LABEL_NAMES = frozenset({"le", "quantile", "job", "instance"})

#: Default per-family cardinality budget.  Generous for the bounded
#: dimensions we label by (topic, fault kind, invariant name) and small
#: enough that an accidental per-record label cannot explode a registry.
DEFAULT_MAX_CHILDREN = 64

#: The counter every family increments when its budget rejects a child.
CARDINALITY_REJECTED_NAME = "repro_obs_cardinality_rejected_total"
_CARDINALITY_REJECTED_HELP = (
    "labels() calls rejected because the family cardinality budget "
    "was already spent"
)

#: Default latency buckets (seconds), spanning sub-second task phases to
#: the paper's 40 s maximum batch interval and deep-backlog delays.
DEFAULT_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0,
)

#: Default magnitude buckets for record counts per batch.
DEFAULT_COUNT_BUCKETS: Tuple[float, ...] = (
    100.0, 1_000.0, 10_000.0, 50_000.0, 100_000.0, 500_000.0,
    1_000_000.0, 5_000_000.0,
)


class Counter:
    """Monotonically increasing counter."""

    kind = "counter"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        self.value += amount


class Gauge:
    """Instantaneous value that can move in either direction."""

    kind = "gauge"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Cumulative histogram over fixed, immutable bucket bounds."""

    kind = "histogram"
    __slots__ = ("name", "help", "bounds", "bucket_counts", "sum", "count")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram {name} bucket bounds must be strictly increasing"
            )
        self.name = name
        self.help = help
        self.bounds = bounds
        #: counts[i] observations fell in (bounds[i-1], bounds[i]]; the
        #: trailing slot is the +Inf overflow bucket.
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative_counts(self) -> List[int]:
        """Prometheus-style cumulative per-bucket counts (incl. +Inf)."""
        out: List[int] = []
        running = 0
        for c in self.bucket_counts:
            running += c
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (0 when empty).

        Accurate to bucket resolution — good enough for CLI summaries;
        exact percentiles over raw values live in
        :func:`repro.streaming.metrics.percentile`.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0
        prev_bound = 0.0
        for i, c in enumerate(self.bucket_counts):
            upper = self.bounds[i] if i < len(self.bounds) else self.bounds[-1]
            if running + c >= target and c > 0:
                frac = (target - running) / c
                return prev_bound + frac * (upper - prev_bound)
            running += c
            prev_bound = upper
        return self.bounds[-1]


class _NoopInstrument:
    """One object impersonating all three instrument kinds, doing nothing."""

    kind = "noop"
    name = "noop"
    help = ""
    value = 0.0
    sum = 0.0
    count = 0
    bounds: Tuple[float, ...] = ()
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def cumulative_counts(self) -> List[int]:
        return []

    def quantile(self, q: float) -> float:
        return 0.0


NOOP_INSTRUMENT = _NoopInstrument()


class MetricFamily:
    """A named metric with an immutable label schema and interned children.

    Children are created on first ``labels()`` call for a label set and
    shared thereafter; call sites bind their child once (constructor
    time) so the hot path touches only the child instrument.  The family
    enforces its cardinality budget: once ``max_children`` distinct label
    sets exist, further *new* label sets are rejected — the caller gets
    :data:`NOOP_INSTRUMENT` (so instrumentation never raises mid-run) and
    the rejection is counted on ``repro_obs_cardinality_rejected_total``
    and on :attr:`rejected`.
    """

    kind = "family"  # overridden by subclasses
    __slots__ = (
        "name", "help", "labelnames", "max_children", "rejected",
        "_children", "_rejected_counter",
    )

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str],
        max_children: int,
        rejected_counter: "Counter",
    ) -> None:
        names = tuple(labelnames)
        if not names:
            raise ValueError(
                f"family {name} needs at least one label name; "
                "use a flat instrument for unlabeled metrics"
            )
        if len(set(names)) != len(names):
            raise ValueError(f"family {name} has duplicate label names")
        for ln in names:
            if not _LABEL_NAME_RE.match(ln):
                raise ValueError(
                    f"family {name}: invalid label name {ln!r}"
                )
            if ln in RESERVED_LABEL_NAMES:
                raise ValueError(
                    f"family {name}: label name {ln!r} is reserved"
                )
        if max_children < 1:
            raise ValueError(
                f"family {name}: max_children must be >= 1, got {max_children}"
            )
        self.name = name
        self.help = help
        self.labelnames = names
        self.max_children = int(max_children)
        #: labels() calls this family rejected over budget.
        self.rejected = 0
        self._children: Dict[Tuple[str, ...], object] = {}
        self._rejected_counter = rejected_counter

    def _make_child(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def labels(self, **labels: object):
        """Create-or-get the child for one label set.

        Label names must match the declared schema exactly; values are
        coerced to ``str``.  Over-budget label sets return the shared
        no-op instrument with rejection accounting.
        """
        if len(labels) != len(self.labelnames):
            raise ValueError(
                f"family {self.name} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        try:
            key = tuple(str(labels[ln]) for ln in self.labelnames)
        except KeyError as exc:
            raise ValueError(
                f"family {self.name} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            ) from exc
        child = self._children.get(key)
        if child is None:
            if len(self._children) >= self.max_children:
                self.rejected += 1
                self._rejected_counter.inc()
                return NOOP_INSTRUMENT
            child = self._make_child()
            self._children[key] = child
        return child

    def children(self) -> List[Tuple[Tuple[str, ...], object]]:
        """``(label_values, child)`` pairs sorted by label values."""
        return [(k, self._children[k]) for k in sorted(self._children)]

    def __len__(self) -> int:
        return len(self._children)


class CounterFamily(MetricFamily):
    kind = "counter"
    __slots__ = ()

    def _make_child(self) -> Counter:
        return Counter(self.name, self.help)

    @property
    def value(self) -> float:
        """Sum over children — the family total a flat reader expects."""
        return sum(c.value for _, c in self.children())


class GaugeFamily(MetricFamily):
    kind = "gauge"
    __slots__ = ()

    def _make_child(self) -> Gauge:
        return Gauge(self.name, self.help)

    @property
    def value(self) -> float:
        return sum(c.value for _, c in self.children())


class HistogramFamily(MetricFamily):
    kind = "histogram"
    __slots__ = ("buckets",)

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str],
        max_children: int,
        rejected_counter: "Counter",
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames, max_children,
                         rejected_counter)
        self.buckets = tuple(float(b) for b in buckets)

    def _make_child(self) -> Histogram:
        return Histogram(self.name, self.help, self.buckets)


class _NoopFamily:
    """Family impersonator for the disabled path: labels() → no-op."""

    kind = "noop"
    name = "noop"
    help = ""
    labelnames: Tuple[str, ...] = ()
    max_children = 0
    rejected = 0
    value = 0.0
    __slots__ = ()

    def labels(self, **labels: object):
        return NOOP_INSTRUMENT

    def children(self) -> List[Tuple[Tuple[str, ...], object]]:
        return []

    def __len__(self) -> int:
        return 0


NOOP_FAMILY = _NoopFamily()


class MetricsRegistry:
    """Create-or-get factory and collection point for instruments."""

    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, kind: str, factory):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        if not name.startswith("repro_"):
            raise ValueError(
                f"metric name {name!r} must follow repro_<subsystem>_<name>_<unit>"
            )
        existing = self._metrics.get(name)
        if existing is not None:
            if existing.kind != kind:  # type: ignore[attr-defined]
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, requested {kind}"  # type: ignore[attr-defined]
                )
            return existing
        metric = factory()
        self._metrics[name] = metric
        return metric

    def _get_flat(self, name: str, kind: str, factory):
        metric = self._get(name, kind, factory)
        if isinstance(metric, MetricFamily):
            raise ValueError(
                f"metric {name!r} already registered as a labeled family "
                f"with schema {metric.labelnames}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_flat(name, "counter", lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_flat(name, "gauge", lambda: Gauge(name, help))

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ) -> Histogram:
        return self._get_flat(
            name, "histogram", lambda: Histogram(name, help, buckets)
        )

    # -- labeled families ----------------------------------------------------

    def _rejected_counter(self) -> Counter:
        """The shared budget-rejection counter, created on first use."""
        return self.counter(
            CARDINALITY_REJECTED_NAME, _CARDINALITY_REJECTED_HELP
        )

    def _get_family(self, name: str, kind: str, labelnames, factory):
        family = self._get(name, kind, factory)
        if not isinstance(family, MetricFamily):
            raise ValueError(
                f"metric {name!r} already registered without labels"
            )
        if family.labelnames != tuple(labelnames):
            raise ValueError(
                f"family {name!r} already registered with label schema "
                f"{family.labelnames}, requested {tuple(labelnames)}"
            )
        return family

    def counter_family(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        max_children: int = DEFAULT_MAX_CHILDREN,
    ) -> CounterFamily:
        rejected = self._rejected_counter()
        return self._get_family(
            name, "counter", labelnames,
            lambda: CounterFamily(name, help, labelnames, max_children,
                                  rejected),
        )

    def gauge_family(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        max_children: int = DEFAULT_MAX_CHILDREN,
    ) -> GaugeFamily:
        rejected = self._rejected_counter()
        return self._get_family(
            name, "gauge", labelnames,
            lambda: GaugeFamily(name, help, labelnames, max_children,
                                rejected),
        )

    def histogram_family(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        max_children: int = DEFAULT_MAX_CHILDREN,
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ) -> HistogramFamily:
        rejected = self._rejected_counter()
        return self._get_family(
            name, "histogram", labelnames,
            lambda: HistogramFamily(name, help, labelnames, max_children,
                                    rejected, buckets),
        )

    def get(self, name: str) -> Optional[object]:
        return self._metrics.get(name)

    def collect(self) -> Iterable[object]:
        """All registered instruments, sorted by name (deterministic)."""
        return [self._metrics[k] for k in sorted(self._metrics)]

    def __len__(self) -> int:
        return len(self._metrics)


class _NoopRegistry(MetricsRegistry):
    """Registry whose factories hand out the shared no-op instrument."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, help: str = "") -> Counter:
        return NOOP_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return NOOP_INSTRUMENT  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ) -> Histogram:
        return NOOP_INSTRUMENT  # type: ignore[return-value]

    def counter_family(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        max_children: int = DEFAULT_MAX_CHILDREN,
    ) -> CounterFamily:
        return NOOP_FAMILY  # type: ignore[return-value]

    def gauge_family(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        max_children: int = DEFAULT_MAX_CHILDREN,
    ) -> GaugeFamily:
        return NOOP_FAMILY  # type: ignore[return-value]

    def histogram_family(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        max_children: int = DEFAULT_MAX_CHILDREN,
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ) -> HistogramFamily:
        return NOOP_FAMILY  # type: ignore[return-value]

    def collect(self) -> Iterable[object]:
        return []


NOOP_REGISTRY = _NoopRegistry()
