"""Grafana dashboard generation from the metric catalog.

Dashboards are *generated*, never hand-edited: one row per owning
subsystem, one panel per cataloged metric, panel shape decided by the
metric kind —

* **counter** → a rate timeseries (``rate(name[5m])``), summed over the
  label schema so each label set is one series;
* **gauge** → a plain timeseries of the instantaneous value;
* **histogram** → a quantile timeseries (p50/p95/p99 via
  ``histogram_quantile`` over the bucket rate).

Output is byte-deterministic: panels are laid out in catalog order
(subsystems sorted, names sorted within a subsystem), ids are assigned
by enumeration, and the JSON renders with sorted keys — so the CI
artifact diff is exactly the catalog diff.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from .catalog import CATALOG, MetricSpec, _sorted_catalog

#: Grafana schema version this generator targets.
SCHEMA_VERSION = 39

PANEL_WIDTH = 12
PANEL_HEIGHT = 8
PANELS_PER_ROW = 2


def _legend(spec: MetricSpec) -> str:
    if spec.labels:
        return "{{" + "}} / {{".join(spec.labels) + "}}"
    return spec.name


def _targets(spec: MetricSpec) -> List[Dict[str, object]]:
    by = ", ".join(spec.labels)
    if spec.kind == "counter":
        expr = (
            f"sum by ({by}) (rate({spec.name}[5m]))"
            if spec.labels else f"rate({spec.name}[5m])"
        )
        return [{"expr": expr, "legendFormat": _legend(spec), "refId": "A"}]
    if spec.kind == "gauge":
        return [{
            "expr": spec.name,
            "legendFormat": _legend(spec),
            "refId": "A",
        }]
    # histogram: quantile fan
    group = f"le, {by}" if spec.labels else "le"
    targets: List[Dict[str, object]] = []
    for ref_id, q in (("A", 0.5), ("B", 0.95), ("C", 0.99)):
        targets.append({
            "expr": (
                f"histogram_quantile({q}, sum by ({group}) "
                f"(rate({spec.name}_bucket[5m])))"
            ),
            "legendFormat": f"p{int(q * 100)}"
            + (f" {_legend(spec)}" if spec.labels else ""),
            "refId": ref_id,
        })
    return targets


_UNIT_MAP = {
    "seconds": "s",
    "bytes": "bytes",
    "records": "short",
    "count": "short",
    "ratio": "percentunit",
    "": "short",
}


def _panel(spec: MetricSpec, panel_id: int, x: int, y: int) -> Dict[str, object]:
    title = spec.name
    if spec.kind == "counter":
        title += " (rate)"
    elif spec.kind == "histogram":
        title += " (quantiles)"
    return {
        "id": panel_id,
        "type": "timeseries",
        "title": title,
        "description": spec.help
        + (f" [labels: {', '.join(spec.labels)}; "
           f"budget {spec.max_children}]" if spec.labels else "")
        + f" [{spec.stability}]",
        "datasource": {"type": "prometheus", "uid": "${datasource}"},
        "fieldConfig": {
            "defaults": {"unit": _UNIT_MAP[spec.unit]},
            "overrides": [],
        },
        "gridPos": {
            "h": PANEL_HEIGHT, "w": PANEL_WIDTH, "x": x, "y": y,
        },
        "targets": _targets(spec),
    }


def _row(title: str, row_id: int, y: int) -> Dict[str, object]:
    return {
        "id": row_id,
        "type": "row",
        "title": title,
        "collapsed": False,
        "gridPos": {"h": 1, "w": 24, "x": 0, "y": y},
        "panels": [],
    }


def build_dashboard(
    title: str = "NoStop repro telemetry",
    catalog: Sequence[MetricSpec] = CATALOG,
    uid: Optional[str] = "repro-metrics",
) -> Dict[str, object]:
    """Assemble the dashboard dict: one row per subsystem, deterministic."""
    panels: List[Dict[str, object]] = []
    next_id = 1
    y = 0
    for subsystem, specs in _sorted_catalog(catalog):
        panels.append(_row(subsystem, next_id, y))
        next_id += 1
        y += 1
        for i, spec in enumerate(specs):
            col = i % PANELS_PER_ROW
            if col == 0 and i > 0:
                y += PANEL_HEIGHT
            panels.append(_panel(spec, next_id, col * PANEL_WIDTH, y))
            next_id += 1
        y += PANEL_HEIGHT
    return {
        "uid": uid,
        "title": title,
        "tags": ["repro", "generated"],
        "timezone": "utc",
        "schemaVersion": SCHEMA_VERSION,
        "refresh": "30s",
        "time": {"from": "now-1h", "to": "now"},
        "templating": {
            "list": [{
                "name": "datasource",
                "type": "datasource",
                "query": "prometheus",
                "label": "Data source",
            }],
        },
        "annotations": {"list": []},
        "editable": False,
        "panels": panels,
    }


def dashboard_json(
    title: str = "NoStop repro telemetry",
    catalog: Sequence[MetricSpec] = CATALOG,
) -> str:
    """The dashboard as byte-deterministic JSON (sorted keys)."""
    return (
        json.dumps(build_dashboard(title, catalog), indent=2, sort_keys=True)
        + "\n"
    )
