"""Online anomaly detection over batch telemetry.

Three detectors turn the raw telemetry streams of PR 2 into judgements:

* :class:`EwmaMadDetector` — an EWMA baseline with a median-absolute-
  deviation residual scale; flags end-to-end-delay spikes that stand out
  from the recent level without being fooled by a slowly drifting mean
  (mean/std would let one 400 s outlier inflate the scale and mask the
  next one — MAD has a 50% breakdown point);
* :class:`CusumDetector` — a two-sided standardized CUSUM for sustained
  *shifts* (input-rate steps, the §5.5 surge scenario), which a spike
  detector misses by design: each post-shift sample is individually
  unremarkable, only their sum drifts;
* :class:`SpsaWatchdog` — a convergence watchdog over the PR 2 audit
  trail: flags gradient-sign thrash (the estimate bouncing instead of
  descending) and projection-clip saturation (the optimizer pinned
  against the box, i.e. the configuration space is mis-sized).

All detectors are pure online state machines over caller-supplied
simulated timestamps: deterministic under a fixed seed, no wall clock.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from .audit import AuditTrail

#: Scale factor making the MAD a consistent estimator of the standard
#: deviation under normality.
MAD_TO_SIGMA = 1.4826


@dataclass(frozen=True)
class AnomalyEvent:
    """One detector firing, stamped with the simulated time it fired."""

    kind: str
    """``"delay_spike"``, ``"rate_shift"``, ``"gradient_thrash"``, or
    ``"clip_saturation"``."""
    time: float
    value: float
    """The observation (or statistic) that crossed the threshold."""
    score: float
    """How far past the threshold, in the detector's own units."""
    threshold: float
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "time": self.time,
            "value": self.value,
            "score": self.score,
            "threshold": self.threshold,
            "detail": self.detail,
        }


def _median(values: List[float]) -> float:
    s = sorted(values)
    n = len(s)
    mid = n // 2
    return s[mid] if n % 2 else (s[mid - 1] + s[mid]) / 2.0


class EwmaMadDetector:
    """EWMA level + MAD residual scale → robust spike detection.

    Each observation is compared against the EWMA of *previous*
    observations; the residual is scored in robust sigmas
    (``MAD_TO_SIGMA * MAD`` of the recent residual window).  The EWMA is
    updated after scoring, so the spike itself only pollutes the
    baseline with weight ``alpha``, and the residual window keeps the
    spike from tightening future scales (MAD shrugs off outliers).
    """

    def __init__(
        self,
        alpha: float = 0.3,
        threshold: float = 5.0,
        window: int = 20,
        warmup: int = 5,
        min_scale: float = 1e-3,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if window < 3:
            raise ValueError(f"window must be >= 3, got {window}")
        if warmup < 2:
            raise ValueError(f"warmup must be >= 2, got {warmup}")
        self.alpha = alpha
        self.threshold = threshold
        self.warmup = warmup
        self.min_scale = min_scale
        self._ewma: Optional[float] = None
        self._residuals: Deque[float] = deque(maxlen=window)
        self._seen = 0
        self.events: List[AnomalyEvent] = []

    def scale(self) -> float:
        """Current robust residual scale (one 'sigma')."""
        if len(self._residuals) < 3:
            return self.min_scale
        res = list(self._residuals)
        med = _median(res)
        mad = _median([abs(r - med) for r in res])
        return max(MAD_TO_SIGMA * mad, self.min_scale)

    def observe(self, t: float, value: float) -> Optional[AnomalyEvent]:
        """Score one observation; returns the event if it fired."""
        self._seen += 1
        event = None
        if self._ewma is None:
            self._ewma = float(value)
            self._residuals.append(0.0)
            return None
        residual = float(value) - self._ewma
        sigma = self.scale()
        score = abs(residual) / sigma
        if self._seen > self.warmup and score > self.threshold:
            event = AnomalyEvent(
                kind="delay_spike",
                time=t,
                value=float(value),
                score=score,
                threshold=self.threshold,
                detail=(
                    f"residual {residual:+.3f} = {score:.1f} robust sigmas "
                    f"off EWMA {self._ewma:.3f}"
                ),
            )
            self.events.append(event)
        self._ewma += self.alpha * residual
        self._residuals.append(residual)
        return event


class CusumDetector:
    """Two-sided standardized CUSUM for sustained level shifts.

    The reference level and scale come from a **robust** fit (median and
    ``MAD_TO_SIGMA * MAD``) of recent quiescent samples, so a fault
    transient — a receiver-stall backlog bursting back as a handful of
    extreme rates — cannot poison the reference the way a mean/std fit
    would.  While either one-sided sum carries evidence the reference
    stays frozen (a genuine shift accumulates ``|z| - k`` per sample
    instead of being chased by an adapting baseline); whenever both
    sums are at zero the reference re-centers on the recent window, so
    the detector tracks settled regime changes it has already judged.
    Fires when either sum exceeds ``h``; on firing it resets and
    re-learns the post-shift level, so a second shift later in the run
    is detected against the *new* regime.
    """

    def __init__(
        self,
        k: float = 0.5,
        h: float = 4.0,
        warmup: int = 8,
        window: int = 12,
    ) -> None:
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        if h <= 0:
            raise ValueError(f"h must be positive, got {h}")
        if warmup < 2:
            raise ValueError(f"warmup must be >= 2, got {warmup}")
        if window < warmup:
            raise ValueError(
                f"window ({window}) must be >= warmup ({warmup})"
            )
        self.k = k
        self.h = h
        self.warmup = warmup
        self._recent: Deque[float] = deque(maxlen=window)
        self._armed = False
        self._mean = 0.0
        self._sigma = 0.0
        self._pos = 0.0
        self._neg = 0.0
        self.events: List[AnomalyEvent] = []

    @property
    def armed(self) -> bool:
        """Whether a reference level exists and shifts can fire."""
        return self._armed

    def _refit(self) -> None:
        samples = list(self._recent)
        med = _median(samples)
        mad = _median([abs(v - med) for v in samples])
        self._mean = med
        # Floor the scale at 5% of the level: a perfectly flat window
        # must not make every later sample an infinite z-score.
        self._sigma = max(MAD_TO_SIGMA * mad, 0.05 * abs(med), 1e-9)

    def observe(self, t: float, value: float) -> Optional[AnomalyEvent]:
        """Feed one observation; returns the event if a shift fired."""
        value = float(value)
        if not self._armed:
            self._recent.append(value)
            if len(self._recent) >= self.warmup:
                self._refit()
                self._armed = True
            return None
        z = (value - self._mean) / self._sigma
        self._pos = max(0.0, self._pos + z - self.k)
        self._neg = max(0.0, self._neg - z - self.k)
        stat = max(self._pos, self._neg)
        if stat > self.h:
            direction = "up" if self._pos >= self._neg else "down"
            event = AnomalyEvent(
                kind="rate_shift",
                time=t,
                value=value,
                score=stat,
                threshold=self.h,
                detail=(
                    f"{direction}ward shift off reference "
                    f"{self._mean:.1f} (sigma {self._sigma:.1f})"
                ),
            )
            self.events.append(event)
            # Re-baseline on the post-shift regime.
            self._recent.clear()
            self._armed = False
            self._pos = self._neg = 0.0
            return event
        if self._pos == 0.0 and self._neg == 0.0:
            # Quiescent: no accumulated evidence of drift — fold the
            # sample into the reference window and re-center, so the
            # frozen level tracks slow, already-judged regime changes.
            self._recent.append(value)
            self._refit()
        return None


@dataclass
class WatchdogReport:
    """What the SPSA convergence watchdog found in an audit trail."""

    events: List[AnomalyEvent] = field(default_factory=list)
    rounds_scanned: int = 0
    sign_flip_fraction: float = 0.0
    step_clip_fraction: float = 0.0
    probe_clip_fraction: float = 0.0

    @property
    def healthy(self) -> bool:
        return not self.events


class SpsaWatchdog:
    """Convergence watchdog over the SPSA decision audit trail.

    * **Gradient-sign thrash** — over a sliding window of non-guarded
      decisions, the per-axis fraction of consecutive gradient sign
      flips; sustained values near 1.0 mean the estimate is oscillating
      across the optimum (or the gains are too hot), not descending.
    * **Projection-clip saturation** — the fraction of recent rounds
      whose *step* was clipped by the box projection; saturation means
      SPSA keeps trying to leave the configuration space, i.e. the
      optimum likely sits on (or beyond) the boundary.

    The watchdog reads a recorded :class:`~repro.obs.audit.AuditTrail`;
    it performs no arithmetic of its own beyond counting, so a trail that
    replays cleanly is judged exactly as the optimizer behaved.
    """

    def __init__(
        self,
        window: int = 8,
        thrash_threshold: float = 0.75,
        clip_threshold: float = 0.75,
    ) -> None:
        if window < 3:
            raise ValueError(f"window must be >= 3, got {window}")
        if not 0.0 < thrash_threshold <= 1.0:
            raise ValueError("thrash_threshold must be in (0, 1]")
        if not 0.0 < clip_threshold <= 1.0:
            raise ValueError("clip_threshold must be in (0, 1]")
        self.window = window
        self.thrash_threshold = thrash_threshold
        self.clip_threshold = clip_threshold

    def scan(self, trail: AuditTrail) -> WatchdogReport:
        """Judge one recorded trail; at most one event per failure mode."""
        report = WatchdogReport()
        decisions = [d for d in trail.decisions if not d.guarded]
        report.rounds_scanned = len(decisions)
        if len(decisions) < self.window:
            return report

        recent = decisions[-self.window:]

        # Gradient-sign thrash: fraction of consecutive pairs flipping
        # sign, worst axis wins.
        axes = len(recent[0].gradient or ())
        worst_frac, worst_axis = 0.0, 0
        for ax in range(axes):
            flips = pairs = 0
            for prev, cur in zip(recent, recent[1:]):
                g0 = (prev.gradient or ())[ax]
                g1 = (cur.gradient or ())[ax]
                if g0 == 0.0 or g1 == 0.0:
                    continue
                pairs += 1
                if (g0 > 0) != (g1 > 0):
                    flips += 1
            frac = flips / pairs if pairs else 0.0
            if frac > worst_frac:
                worst_frac, worst_axis = frac, ax
        report.sign_flip_fraction = worst_frac
        if worst_frac >= self.thrash_threshold:
            report.events.append(AnomalyEvent(
                kind="gradient_thrash",
                time=recent[-1].sim_time,
                value=worst_frac,
                score=worst_frac,
                threshold=self.thrash_threshold,
                detail=(
                    f"axis {worst_axis}: gradient sign flipped in "
                    f"{worst_frac:.0%} of the last {self.window} rounds"
                ),
            ))

        # Projection-clip saturation, steps and probes separately
        # accounted (probe clips are informational context in the detail).
        step_clipped = sum(1 for d in recent if any(d.step_clipped))
        probe_clipped = sum(1 for d in recent if any(d.probe_clipped))
        report.step_clip_fraction = step_clipped / len(recent)
        report.probe_clip_fraction = probe_clipped / len(recent)
        if report.step_clip_fraction >= self.clip_threshold:
            report.events.append(AnomalyEvent(
                kind="clip_saturation",
                time=recent[-1].sim_time,
                value=report.step_clip_fraction,
                score=report.step_clip_fraction,
                threshold=self.clip_threshold,
                detail=(
                    f"box projection clipped the SPSA step in "
                    f"{step_clipped}/{len(recent)} recent rounds "
                    f"(probes clipped in {probe_clipped})"
                ),
            ))
        return report
