"""Span model for batch-lifecycle tracing.

A *trace* is one micro-batch's journey through the pipeline; a *span* is
one timed phase of it (Kafka ingest, queue wait, per-stage scheduling,
task execution).  The model is deliberately minimal — OpenTelemetry-shaped
but zero-dependency and simulation-native:

* all timestamps are **simulated seconds** supplied by the caller (never
  the wall clock), so traces are deterministic under a fixed seed;
* span identity is a per-tracer monotonic counter, not a random id, for
  the same reason;
* propagation happens through an explicit :class:`TraceContext` value
  carried alongside the batch (e.g. on the queued batch), never through
  globals or thread-locals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class TraceContext:
    """The propagatable identity of a span: enough to parent a child.

    This is the value that travels with a batch through the queue into
    the engine — components never need the :class:`Span` object itself,
    only this context plus the tracer they were constructed with.
    """

    trace_id: str
    span_id: int


@dataclass(frozen=True)
class SpanEvent:
    """A point-in-time annotation on a span (e.g. a chaos fault firing)."""

    name: str
    time: float
    attributes: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "time": self.time, "attrs": self.attributes}


@dataclass
class Span:
    """One timed phase of a batch's lifecycle."""

    trace_id: str
    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    end: Optional[float] = None
    attributes: Dict[str, object] = field(default_factory=dict)
    events: List[SpanEvent] = field(default_factory=list)

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Span duration in simulated seconds (0.0 while unfinished)."""
        return 0.0 if self.end is None else self.end - self.start

    @property
    def context(self) -> TraceContext:
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[key] = value

    def add_event(self, name: str, time: float, **attributes: object) -> None:
        self.events.append(SpanEvent(name=name, time=time, attributes=attributes))

    def finish(self, end: float) -> None:
        if end < self.start - 1e-9:
            raise ValueError(
                f"span {self.name!r} cannot end at {end} before start {self.start}"
            )
        self.end = end

    def to_dict(self) -> Dict[str, object]:
        return {
            "traceId": self.trace_id,
            "spanId": self.span_id,
            "parentId": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": self.attributes,
            "events": [e.to_dict() for e in self.events],
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "Span":
        return Span(
            trace_id=str(payload["traceId"]),
            span_id=int(payload["spanId"]),  # type: ignore[arg-type]
            parent_id=(
                None if payload.get("parentId") is None
                else int(payload["parentId"])  # type: ignore[arg-type]
            ),
            name=str(payload["name"]),
            start=float(payload["start"]),  # type: ignore[arg-type]
            end=(
                None if payload.get("end") is None
                else float(payload["end"])  # type: ignore[arg-type]
            ),
            attributes=dict(payload.get("attrs") or {}),  # type: ignore[arg-type]
            events=[
                SpanEvent(
                    name=str(e["name"]),
                    time=float(e["time"]),
                    attributes=dict(e.get("attrs") or {}),
                )
                for e in (payload.get("events") or [])  # type: ignore[union-attr]
            ],
        )


class _NoopSpan:
    """Shared do-nothing span returned by a disabled tracer.

    Every mutator is a constant-time no-op, so instrumented code paths
    can call span methods unconditionally; the disabled-tracer overhead
    is one attribute check plus one method dispatch per call site.
    """

    __slots__ = ()

    trace_id = ""
    span_id = -1
    parent_id = None
    name = "noop"
    start = 0.0
    end = 0.0
    finished = True
    duration = 0.0
    context = TraceContext(trace_id="", span_id=-1)

    def set_attribute(self, key: str, value: object) -> None:
        pass

    def add_event(self, name: str, time: float, **attributes: object) -> None:
        pass

    def finish(self, end: float) -> None:
        pass


#: Module-level singleton; identity-comparable (`span is NOOP_SPAN`).
NOOP_SPAN = _NoopSpan()
