"""The run report: one artifact that judges a whole run.

:class:`RunJudge` is the online half — subscribe it to the streaming
listener (``listener.watch(judge)``) and it feeds every completed batch
through the SLO evaluator, the burn-rate alerter, and the delay/rate
anomaly detectors as the run executes.  :func:`build_run_report` is the
offline half — after the run it stitches the judge's verdicts together
with the SPSA watchdog's audit-trail scan, the span profiler's hotspot
attribution, and the chaos engine's fault log (joined to exact batch
traces, with MTTR and overshoot per fault) into a single
:class:`RunReport`.

The report renders three ways — terminal text, single-file HTML (zero
dependencies, inline CSS), and JSON — and all three are
**byte-deterministic** for a given (workload, seed, schedule): floats go
through fixed-precision formatting, iteration orders are explicit, and
no wall-clock value is embedded (wall-clock profiling prints separately,
see :class:`~repro.obs.profiler.WallClockProfiler`).
"""

from __future__ import annotations

import html as _html
import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from . import catalog
from .alerts import Alert, BurnRateAlerter, BurnRatePolicy
from .audit import RuleFiring
from .critical import DelayBreakdown, analyze_spans, render_breakdown
from .detect import (
    AnomalyEvent,
    CusumDetector,
    EwmaMadDetector,
    SpsaWatchdog,
    WatchdogReport,
)
from .profiler import SpanProfile, profile_spans, render_hotspots
from .slo import (
    SLO,
    SLOEvaluator,
    SLOVerdict,
    has_critical_breach,
)
from .tracer import Telemetry

#: Renderings list at most this many anomaly rows (counts stay exact,
#: the JSON report always carries the full list).
MAX_ANOMALY_ROWS = 25


class RunJudge:
    """Online judgement: one observer folding each batch into every
    incremental signal (SLOs, burn rates, delay spikes, rate shifts).

    Attach with ``listener.watch(judge)`` before the run, or replay a
    recorded batch history through :meth:`observe_batch` afterwards —
    the two paths produce identical state.
    """

    def __init__(
        self,
        slos: Optional[Sequence[SLO]] = None,
        policies: Optional[List[BurnRatePolicy]] = None,
        delay_detector: Optional[EwmaMadDetector] = None,
        rate_detector: Optional[CusumDetector] = None,
    ) -> None:
        self.evaluator = SLOEvaluator(slos)
        self.alerter = BurnRateAlerter(policies)
        self.delay_detector = delay_detector or EwmaMadDetector()
        # The per-batch arrival-rate signal is noisier than CUSUM's
        # textbook setting assumes (held rate levels + catch-up batches
        # after backlog), so the judge decides at h=8 rather than the
        # class default h=4: a genuine regime shift still fires within
        # a couple of batches, transient excursions mostly don't.
        self.rate_detector = rate_detector or CusumDetector(h=8.0)
        self.batches = 0
        self.last_time = 0.0
        self._tracer = None

    def attach_tracer(self, tracer) -> None:
        """Let the judge drive the flight recorder's tail retention.

        Once attached, every batch that fires a burn-rate alert or trips
        a detector marks its own time window interesting, so the tracer
        keeps that batch's trace even when head sampling would have
        discarded it.
        """
        self._tracer = tracer

    def observe_batch(self, info) -> None:
        self.batches += 1
        self.last_time = max(self.last_time, info.processing_end)
        watch = self._tracer is not None and self._tracer.enabled
        if watch:
            alerts_before = len(self.alerter.log)
            events_before = len(self.delay_detector.events) + len(
                self.rate_detector.events
            )
        self.evaluator.observe_batch(info)
        self.alerter.observe_batch(info)
        self.delay_detector.observe(info.processing_end, info.end_to_end_delay)
        # Per-batch observed arrival rate: what CUSUM watches for shifts.
        self.rate_detector.observe(
            info.processing_end, info.records / info.interval
        )
        if watch:
            # The batch's root span covers [form start, job finish].
            lo = info.batch_time - info.interval
            hi = info.processing_end
            if len(self.alerter.log) > alerts_before:
                self._tracer.note_interest(lo, hi, "slo")
            events_after = len(self.delay_detector.events) + len(
                self.rate_detector.events
            )
            if events_after > events_before:
                self._tracer.note_interest(lo, hi, "anomaly")

    def anomalies(self) -> List[AnomalyEvent]:
        """Detector firings in time order (stable for equal times)."""
        events = list(self.delay_detector.events) + list(
            self.rate_detector.events
        )
        return sorted(events, key=lambda e: (e.time, e.kind))


@dataclass(frozen=True)
class FaultOutcome:
    """One chaos fault joined with its recovery metrics and trace."""

    event_id: int
    name: str
    kind: str
    fired_at: float
    mttr: float
    overshoot: Optional[float]
    trace_id: str = ""
    recover_trace_id: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "eventId": self.event_id,
            "name": self.name,
            "kind": self.kind,
            "firedAt": self.fired_at,
            "mttr": None if not math.isfinite(self.mttr) else self.mttr,
            "overshoot": self.overshoot,
            "traceId": self.trace_id,
            "recoverTraceId": self.recover_trace_id,
        }


@dataclass
class RunReport:
    """Everything needed to judge one run, in one deterministic object."""

    title: str
    workload: str
    seed: int
    rounds: int
    sim_duration: float
    batches: int
    records_total: int
    final_interval: float
    final_executors: int
    first_pause_round: Optional[int]
    resets: int
    verdicts: List[SLOVerdict] = field(default_factory=list)
    alerts: List[Alert] = field(default_factory=list)
    anomalies: List[AnomalyEvent] = field(default_factory=list)
    watchdog: WatchdogReport = field(default_factory=WatchdogReport)
    profile: Optional[SpanProfile] = None
    faults: List[FaultOutcome] = field(default_factory=list)
    orphan_fault_events: int = 0
    rule_firings: List[RuleFiring] = field(default_factory=list)
    decisions: int = 0
    guarded_decisions: int = 0
    rate_shift_agreement: Optional[bool] = None
    """CUSUM vs NoStop's §5.5 restart rule: did they reach the same
    conclusion about whether the input rate shifted?  None when neither
    signal was available (no audit trail)."""
    resources: Dict[str, float] = field(default_factory=dict)
    """Sweep-runner/supervisor resource counters captured from the
    metrics registry (cache hits, retries, journal replays, ...) —
    empty when the run did no sweep work."""
    breakdown: Optional[DelayBreakdown] = None
    """Critical-path delay decomposition over the retained traces —
    where the end-to-end delay went (ingest / queue / schedule /
    execute), split per configuration epoch.  None when the flight
    recorder kept no decomposable traces."""

    @property
    def critical_breach(self) -> bool:
        return has_critical_breach(self.verdicts)

    @property
    def all_anomalies(self) -> List[AnomalyEvent]:
        """Detector + watchdog events, detectors first."""
        return list(self.anomalies) + list(self.watchdog.events)

    def _anomaly_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for ev in self.all_anomalies:
            counts[ev.kind] = counts.get(ev.kind, 0) + 1
        return dict(sorted(counts.items()))

    def alerts_during_faults(self) -> List[Alert]:
        """Alerts whose active period overlaps any fault's outage window."""
        out: List[Alert] = []
        for alert in self.alerts:
            resolved = (
                alert.resolved_at
                if alert.resolved_at is not None
                else math.inf
            )
            for fault in self.faults:
                fault_end = fault.fired_at + (
                    fault.mttr if math.isfinite(fault.mttr) else math.inf
                )
                if alert.fired_at <= fault_end and resolved >= fault.fired_at:
                    out.append(alert)
                    break
        return out

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "title": self.title,
            "workload": self.workload,
            "seed": self.seed,
            "rounds": self.rounds,
            "simDuration": self.sim_duration,
            "batches": self.batches,
            "recordsTotal": self.records_total,
            "finalInterval": self.final_interval,
            "finalExecutors": self.final_executors,
            "firstPauseRound": self.first_pause_round,
            "resets": self.resets,
            "criticalBreach": self.critical_breach,
            "sloVerdicts": [v.to_dict() for v in self.verdicts],
            "alerts": [a.to_dict() for a in self.alerts],
            "anomalies": [e.to_dict() for e in self.all_anomalies],
            "watchdog": {
                "roundsScanned": self.watchdog.rounds_scanned,
                "signFlipFraction": self.watchdog.sign_flip_fraction,
                "stepClipFraction": self.watchdog.step_clip_fraction,
                "probeClipFraction": self.watchdog.probe_clip_fraction,
            },
            "profile": self.profile.to_dict() if self.profile else None,
            "faults": [f.to_dict() for f in self.faults],
            "orphanFaultEvents": self.orphan_fault_events,
            "ruleFirings": [f.to_dict() for f in self.rule_firings],
            "decisions": self.decisions,
            "guardedDecisions": self.guarded_decisions,
            "rateShiftAgreement": self.rate_shift_agreement,
            "resources": dict(sorted(self.resources.items())),
            "breakdown": (
                self.breakdown.to_dict() if self.breakdown else None
            ),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    # -- terminal rendering --------------------------------------------------

    def render_text(self) -> str:
        out: List[str] = []
        out.append(f"== {self.title} ==")
        out.append(
            f"workload={self.workload} seed={self.seed} rounds={self.rounds}"
        )
        pause = (
            f"paused at round {self.first_pause_round}"
            if self.first_pause_round is not None
            else "never paused"
        )
        out.append(
            f"run: {self.batches} batches, {self.records_total} records, "
            f"{self.sim_duration:.1f} s simulated; "
            f"final config {self.final_interval:.2f} s x "
            f"{self.final_executors} executors; {pause}; "
            f"resets={self.resets}"
        )

        out.append("")
        out.append("-- SLO verdicts --")
        for v in self.verdicts:
            mark = "PASS" if v.passed else "FAIL"
            value = f"{v.value:.3f}" if math.isfinite(v.value) else "inf"
            line = (
                f"  {mark} [{v.severity:>8}] {v.slo.name}: "
                f"{value} vs <= {v.slo.threshold:g}"
            )
            if v.violated_at is not None:
                line += f" (violated at t={v.violated_at:.1f}s)"
            if v.detail:
                line += f"  # {v.detail}"
            out.append(line)

        out.append("")
        out.append(f"-- burn-rate alerts ({len(self.alerts)}) --")
        during = {id(a) for a in self.alerts_during_faults()}
        for a in self.alerts:
            resolved = (
                f"{a.resolved_at:.1f}" if a.resolved_at is not None else "active"
            )
            tag = "  [during fault]" if id(a) in during else ""
            out.append(
                f"  {a.policy} [{a.severity}] fired t={a.fired_at:.1f}s "
                f"resolved t={resolved}s "
                f"(burn fast={a.fast_burn:.1f}x slow={a.slow_burn:.1f}x)"
                f"{tag}"
            )
        if not self.alerts:
            out.append("  (none)")

        out.append("")
        counts = self._anomaly_counts()
        by_kind = " ".join(f"{k}={n}" for k, n in counts.items())
        out.append(
            f"-- anomalies ({len(self.all_anomalies)}"
            + (f": {by_kind}" if counts else "")
            + ") --"
        )
        shown = self.all_anomalies[:MAX_ANOMALY_ROWS]
        for e in shown:
            out.append(
                f"  {e.kind} t={e.time:.1f}s value={e.value:.3f} "
                f"score={e.score:.2f} (> {e.threshold:g})  {e.detail}"
            )
        hidden = len(self.all_anomalies) - len(shown)
        if hidden:
            out.append(f"  (... {hidden} more, see the JSON report)")
        if not self.all_anomalies:
            out.append("  (none)")

        if self.profile is not None:
            out.append("")
            out.append("-- simulated-time hotspots --")
            out.extend(
                "  " + line
                for line in render_hotspots(self.profile).splitlines()
            )

        out.append("")
        out.append("-- where the delay went (critical path) --")
        if self.breakdown is not None and self.breakdown.traces:
            out.extend(
                "  " + line
                for line in render_breakdown(self.breakdown).splitlines()
            )
        else:
            out.append("  (no batch traces retained)")

        out.append("")
        out.append(f"-- chaos faults ({len(self.faults)}) --")
        for f in self.faults:
            mttr = f"{f.mttr:.1f}s" if math.isfinite(f.mttr) else "never"
            over = (
                f"{f.overshoot:.1f}s" if f.overshoot is not None else "n/a"
            )
            out.append(
                f"  #{f.event_id} {f.name} [{f.kind}] fired t={f.fired_at:.1f}s "
                f"mttr={mttr} overshoot={over} trace={f.trace_id or '-'}"
            )
        if not self.faults:
            out.append("  (none)")
        if self.orphan_fault_events:
            out.append(
                f"  ({self.orphan_fault_events} fault event(s) had no "
                f"matching trace span)"
            )

        out.append("")
        out.append("-- resources --")
        if self.resources:
            for name, value in sorted(self.resources.items()):
                out.append(f"  {name} = {value:g}")
        else:
            out.append("  (no sweep activity)")

        out.append("")
        out.append("-- SPSA --")
        out.append(
            f"  decisions={self.decisions} guarded={self.guarded_decisions} "
            f"(watchdog scanned {self.watchdog.rounds_scanned}: "
            f"sign-flip {self.watchdog.sign_flip_fraction:.0%}, "
            f"step-clip {self.watchdog.step_clip_fraction:.0%})"
        )
        for f in self.rule_firings:
            out.append(
                f"  rule {f.kind} @ round {f.round_index} "
                f"t={f.sim_time:.1f}s: {f.detail}"
            )
        if self.rate_shift_agreement is not None:
            cusum_fired = any(
                e.kind == "rate_shift" for e in self.anomalies
            )
            out.append(
                f"  rate-shift cross-check: CUSUM "
                f"{'fired' if cusum_fired else 'quiet'}, NoStop resets="
                f"{self.resets} -> "
                f"{'AGREE' if self.rate_shift_agreement else 'DISAGREE'}"
            )

        out.append("")
        if self.critical_breach:
            broken = [
                v.slo.name
                for v in self.verdicts
                if not v.passed and v.severity == "critical"
            ]
            out.append(f"verdict: CRITICAL BREACH ({', '.join(broken)})")
        else:
            out.append("verdict: OK (no critical SLO breach)")
        return "\n".join(out)

    # -- HTML rendering ------------------------------------------------------

    def render_html(self) -> str:
        e = _html.escape

        def table(headers: List[str], rows: List[List[str]], cls: str = "") -> str:
            head = "".join(f"<th>{e(h)}</th>" for h in headers)
            body = "".join(
                "<tr>" + "".join(f"<td>{cell}</td>" for cell in row) + "</tr>"
                for row in rows
            )
            return (
                f'<table class="{cls}"><thead><tr>{head}</tr></thead>'
                f"<tbody>{body}</tbody></table>"
            )

        def badge(ok: bool, yes: str = "PASS", no: str = "FAIL") -> str:
            cls = "ok" if ok else "bad"
            return f'<span class="badge {cls}">{yes if ok else no}</span>'

        slo_rows = []
        for v in self.verdicts:
            value = f"{v.value:.3f}" if math.isfinite(v.value) else "&infin;"
            violated = (
                f"t={v.violated_at:.1f}s" if v.violated_at is not None else "—"
            )
            slo_rows.append([
                badge(v.passed),
                e(v.slo.name),
                e(v.severity),
                value,
                f"&le; {v.slo.threshold:g}",
                violated,
                e(v.detail),
            ])

        during = {id(a) for a in self.alerts_during_faults()}
        alert_rows = []
        for a in self.alerts:
            resolved = (
                f"{a.resolved_at:.1f}" if a.resolved_at is not None else "active"
            )
            alert_rows.append([
                e(a.policy),
                e(a.severity),
                f"{a.fired_at:.1f}",
                resolved,
                f"{a.fast_burn:.1f}&times;",
                f"{a.slow_burn:.1f}&times;",
                "yes" if id(a) in during else "—",
            ])

        anomaly_rows = [
            [
                e(ev.kind),
                f"{ev.time:.1f}",
                f"{ev.value:.3f}",
                f"{ev.score:.2f}",
                f"{ev.threshold:g}",
                e(ev.detail),
            ]
            for ev in self.all_anomalies[:MAX_ANOMALY_ROWS]
        ]
        hidden_anomalies = len(self.all_anomalies) - len(anomaly_rows)

        hotspot_rows = []
        if self.profile is not None:
            for c in self.profile.hotspots(len(self.profile.components)):
                hotspot_rows.append([
                    e(c.name),
                    f"{c.total:.3f}",
                    str(c.count),
                    f"{c.mean:.3f}",
                    f"{c.max:.3f}",
                    f"{c.share:.1%}",
                ])

        epoch_rows = []
        if self.breakdown is not None:
            for ep in self.breakdown.epochs:
                config = (
                    f"{ep.interval:.2f} s &times; {ep.executors}"
                    if ep.interval is not None and ep.executors is not None
                    else "—"
                )
                top = ", ".join(
                    f"{s.name} {s.share:.0%}" for s in ep.critical[:3]
                )
                row = [str(ep.index), config, str(ep.traces)]
                row.extend(
                    f"{s.total:.3f} ({s.share:.0%})" for s in ep.segments
                )
                row.append(e(top) if top else "—")
                epoch_rows.append(row)

        fault_rows = []
        for f in self.faults:
            mttr = f"{f.mttr:.1f}" if math.isfinite(f.mttr) else "never"
            over = f"{f.overshoot:.1f}" if f.overshoot is not None else "n/a"
            fault_rows.append([
                str(f.event_id),
                e(f.name),
                e(f.kind),
                f"{f.fired_at:.1f}",
                mttr,
                over,
                e(f.trace_id or "—"),
                e(f.recover_trace_id or "—"),
            ])

        firing_rows = [
            [e(f.kind), str(f.round_index), f"{f.sim_time:.1f}", e(f.detail)]
            for f in self.rule_firings
        ]

        pause = (
            f"paused at round {self.first_pause_round}"
            if self.first_pause_round is not None
            else "never paused"
        )
        agreement = ""
        if self.rate_shift_agreement is not None:
            agreement = (
                "<p>rate-shift cross-check (CUSUM vs &sect;5.5 restart): "
                + badge(self.rate_shift_agreement, "AGREE", "DISAGREE")
                + "</p>"
            )
        proc = (
            f"{self.profile.processing_total:.3f}"
            if self.profile is not None
            else "0.000"
        )

        parts = [
            "<!DOCTYPE html>",
            '<html lang="en"><head><meta charset="utf-8">',
            f"<title>{e(self.title)}</title>",
            "<style>",
            "body{font:14px/1.5 -apple-system,Segoe UI,sans-serif;"
            "margin:2rem auto;max-width:70rem;padding:0 1rem;color:#1a1a2e}",
            "h1{font-size:1.4rem}h2{font-size:1.1rem;margin-top:2rem;"
            "border-bottom:1px solid #ddd;padding-bottom:.25rem}",
            "table{border-collapse:collapse;width:100%;margin:.5rem 0}",
            "th,td{border:1px solid #e2e2ea;padding:.3rem .6rem;"
            "text-align:left;font-variant-numeric:tabular-nums}",
            "th{background:#f6f6fa}",
            ".badge{padding:.05rem .45rem;border-radius:.6rem;"
            "font-size:.8rem;font-weight:600}",
            ".badge.ok{background:#e3f6e8;color:#116329}",
            ".badge.bad{background:#fde8e8;color:#b42318}",
            ".meta{color:#555}",
            "</style></head><body>",
            f"<h1>{e(self.title)} "
            + badge(not self.critical_breach, "OK", "CRITICAL BREACH")
            + "</h1>",
            f'<p class="meta">workload <b>{e(self.workload)}</b> · '
            f"seed {self.seed} · {self.rounds} rounds · "
            f"{self.batches} batches · {self.records_total} records · "
            f"{self.sim_duration:.1f} s simulated · final config "
            f"{self.final_interval:.2f} s &times; {self.final_executors} "
            f"executors · {e(pause)} · resets={self.resets}</p>",
            "<h2>SLO verdicts</h2>",
            table(
                ["", "SLO", "severity", "value", "threshold",
                 "first violated", "detail"],
                slo_rows,
            ),
            f"<h2>Burn-rate alerts ({len(self.alerts)})</h2>",
            table(
                ["policy", "severity", "fired (s)", "resolved (s)",
                 "fast burn", "slow burn", "during fault"],
                alert_rows,
            ) if alert_rows else "<p>(none)</p>",
            f"<h2>Anomalies ({len(self.all_anomalies)})</h2>",
            table(
                ["kind", "t (s)", "value", "score", "threshold", "detail"],
                anomaly_rows,
            ) if anomaly_rows else "<p>(none)</p>",
            (
                f'<p class="meta">&hellip; {hidden_anomalies} more '
                "(see the JSON report)</p>"
                if hidden_anomalies
                else ""
            ),
            "<h2>Simulated-time hotspots</h2>",
            table(
                ["component", "total (s)", "count", "mean (s)", "max (s)",
                 "share"],
                hotspot_rows,
            ) if hotspot_rows else "<p>(no spans profiled)</p>",
            f'<p class="meta">schedule + execute = {proc} s '
            "(total batch processing time)</p>",
            "<h2>Where the delay went (critical path)</h2>",
            table(
                ["epoch", "config", "traces", "ingest", "queue",
                 "schedule", "execute", "critical-path time"],
                epoch_rows,
            ) if epoch_rows else "<p>(no batch traces retained)</p>",
            (
                f'<p class="meta">{self.breakdown.traces} traces '
                f"({self.breakdown.complete} complete, "
                f"{self.breakdown.dropped} dropped, "
                f"{self.breakdown.partial} partial); max tiling residual "
                f"{self.breakdown.max_tiling_residual:.2e} s</p>"
                if self.breakdown is not None and self.breakdown.traces
                else ""
            ),
            f"<h2>Chaos faults ({len(self.faults)})</h2>",
            table(
                ["#", "fault", "kind", "fired (s)", "MTTR (s)",
                 "overshoot (s)", "trace", "recovery trace"],
                fault_rows,
            ) if fault_rows else "<p>(none)</p>",
            (
                f'<p class="meta">{self.orphan_fault_events} fault event(s) '
                "had no matching trace span</p>"
                if self.orphan_fault_events
                else ""
            ),
            "<h2>Resources</h2>",
            table(
                ["counter", "value"],
                [
                    [e(name), f"{value:g}"]
                    for name, value in sorted(self.resources.items())
                ],
            ) if self.resources else "<p>(no sweep activity)</p>",
            "<h2>SPSA</h2>",
            f"<p>{self.decisions} decisions ({self.guarded_decisions} "
            f"guarded); watchdog scanned {self.watchdog.rounds_scanned} "
            f"rounds: sign-flip {self.watchdog.sign_flip_fraction:.0%}, "
            f"step-clip {self.watchdog.step_clip_fraction:.0%}</p>",
            table(
                ["rule", "round", "t (s)", "detail"], firing_rows
            ) if firing_rows else "<p>(no rule firings)</p>",
            agreement,
            "</body></html>",
        ]
        return "\n".join(p for p in parts if p)


def build_run_report(
    judge: RunJudge,
    telemetry: Telemetry,
    *,
    title: str = "NoStop run report",
    workload: str = "",
    seed: int = 0,
    rounds: int = 0,
    nostop_report=None,
    chaos_records: Optional[Sequence] = None,
    batches: Optional[Sequence] = None,
    sim_duration: float = 0.0,
    records_total: int = 0,
    watchdog: Optional[SpsaWatchdog] = None,
    consecutive_stable: int = 3,
) -> RunReport:
    """Stitch one run's signals into a :class:`RunReport`.

    ``judge`` holds the incremental verdicts (attach it to the listener
    before the run); ``telemetry`` supplies spans, metrics, and the audit
    trail; ``chaos_records`` (the engine's ``records``) and ``batches``
    (the listener's batch history) drive the per-fault MTTR/overshoot
    join.  ``nostop_report`` fills the optimizer-side summary.
    """
    from repro.analysis.chaos import (
        delay_overshoot,
        join_faults_to_traces,
        time_to_recover,
    )

    judge.alerter.finish(judge.last_time)

    # Settle the flight recorder's tail retention before reading spans:
    # the fault join and the critical-path decomposition should both see
    # the final retained set.  ``finalize_all`` is idempotent, so callers
    # that already finalized (or run with tracing disabled) are
    # unaffected.
    telemetry.tracer.finalize_all()

    # Per-fault recovery metrics + trace join.
    faults: List[FaultOutcome] = []
    orphans = 0
    mttr_pairs = []
    if chaos_records:
        batch_history = list(batches or [])
        join = join_faults_to_traces(
            telemetry.tracer.spans, records=chaos_records
        )
        orphans = join.orphans
        by_event = {j.event_id: j for j in join}
        for rec in chaos_records:
            mttr = time_to_recover(
                batch_history,
                fault_start=rec.fired_at,
                consecutive=consecutive_stable,
            )
            overshoot = delay_overshoot(
                batch_history,
                fault_start=rec.fired_at,
                recovered_by=(
                    rec.fired_at + mttr if math.isfinite(mttr) else None
                ),
            )
            j = by_event.get(rec.event_id)
            faults.append(FaultOutcome(
                event_id=rec.event_id,
                name=rec.name,
                kind=rec.kind,
                fired_at=rec.fired_at,
                mttr=mttr,
                overshoot=overshoot,
                trace_id=j.trace_id if j is not None else "",
                recover_trace_id=(
                    j.recover_trace_id if j is not None else None
                ),
            ))
            mttr_pairs.append((rec.name, mttr))

    verdicts = judge.evaluator.verdicts(
        fault_mttrs=mttr_pairs or None, registry=telemetry.metrics
    )

    # Sweep-runner/supervisor resource accounting: whatever of the
    # runner-side counters this run's registry saw.  The name list is
    # enumerated from the catalog (not a hand-maintained tuple), so a
    # newly cataloged runner counter shows up here automatically.  A
    # judged chaos run with no sweep activity reports an empty section,
    # deterministically.
    resources: Dict[str, float] = {}
    for metric_name in catalog.names(
        subsystem=("runner", "supervisor"), kind="counter"
    ):
        metric = telemetry.metrics.get(metric_name)
        if metric is not None:
            resources[metric_name] = float(metric.value)

    spans = telemetry.tracer.spans
    breakdown = analyze_spans(spans) if spans else None

    profile = profile_spans(spans)
    wd_report = (watchdog or SpsaWatchdog()).scan(telemetry.audit)

    resets = sum(1 for f in telemetry.audit.firings if f.kind == "reset")
    cusum_fired = bool(judge.rate_detector.events)
    agreement: Optional[bool] = None
    if telemetry.audit.enabled:
        agreement = cusum_fired == (resets > 0)

    first_pause = None
    final_interval = 0.0
    final_executors = 0
    report_resets = resets
    if nostop_report is not None:
        first_pause = nostop_report.first_pause_round
        final_interval = nostop_report.final_interval
        final_executors = nostop_report.final_executors
        report_resets = nostop_report.resets

    return RunReport(
        title=title,
        workload=workload,
        seed=seed,
        rounds=rounds,
        sim_duration=sim_duration,
        batches=judge.batches,
        records_total=records_total,
        final_interval=final_interval,
        final_executors=final_executors,
        first_pause_round=first_pause,
        resets=report_resets,
        verdicts=verdicts,
        alerts=list(judge.alerter.log),
        anomalies=judge.anomalies(),
        watchdog=wd_report,
        profile=profile,
        faults=faults,
        orphan_fault_events=orphans,
        rule_firings=list(telemetry.audit.firings),
        decisions=len(telemetry.audit.decisions),
        guarded_decisions=sum(
            1 for d in telemetry.audit.decisions if d.guarded
        ),
        rate_shift_agreement=agreement,
        resources=resources,
        breakdown=breakdown,
    )
