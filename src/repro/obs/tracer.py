"""The flight-recorder tracer and the :class:`Telemetry` hub.

The tracer owns span identity (a monotonic counter — deterministic under
the seeded sim clock, unlike random ids) and the span store.  Components
receive the tracer explicitly through their constructors and parent new
spans off an explicit :class:`~repro.obs.span.TraceContext`; there is no
ambient "current span" global.

The store is a **flight recorder**, not a keep-everything archive:

* **Ring bound** — at most ``max_spans`` spans are live; the globally
  oldest span is evicted in O(1) (finalized traces first, in
  finalization order, then the oldest still-open trace).  Evicting an
  unfinished span marks its trace *partial* and is accounted separately
  (``dropped_unfinished``); a ``finish_span`` arriving for an
  already-evicted span is counted too (``late_finishes``) instead of
  being silently swallowed.
* **Deterministic head sampling** — each trace is pre-selected by
  ``SHA-256(trace_id) mod sample_rate == 0``.  The decision depends only
  on the trace id, so the same traces are kept across runs, processes,
  and replays under a fixed seed.
* **Tail-based retention** — every trace is recorded provisionally and
  its fate decided at *finalization* (when its root has finished, on the
  next ``start_trace`` or an explicit :meth:`Tracer.finalize_all`).
  Interesting traces are always kept, even when head sampling would
  discard them: traces carrying ``chaos.*`` span events, traces
  overlapping a :meth:`Tracer.note_interest` window (SLO breaches,
  detector anomalies, NoStop pause/resume/reset/reconfig decisions), and
  traces force-marked via :meth:`Tracer.mark_interesting`.  Everything
  else that fails head sampling is discarded wholesale and accounted as
  an evicted trace.

All accounting lands on the cataloged ``repro_obs_trace_*`` metric
families when the tracer is constructed with a registry (the
:class:`Telemetry` hub does this).

``Telemetry`` bundles the three telemetry surfaces of the subsystem —
tracer, metrics registry, SPSA audit trail — behind a single object that
is threaded through the stack.  :data:`NOOP_TELEMETRY` is the shared
disabled instance every component defaults to; its hot-path cost is one
``enabled`` check or an empty method call.
"""

from __future__ import annotations

import hashlib
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple, Union

from . import catalog
from .audit import AuditTrail
from .registry import NOOP_REGISTRY, MetricsRegistry
from .span import NOOP_SPAN, Span, TraceContext

ParentLike = Union[Span, TraceContext, None]

#: Retention reason for traces kept by head sampling alone.
RETAIN_SAMPLED = "sampled"
#: Retention reason for traces carrying ``chaos.*`` span events.
RETAIN_CHAOS = "chaos"
#: Eviction reason for traces that failed head sampling and matched no
#: interest window.
EVICT_SAMPLED_OUT = "sampled_out"
#: Eviction reason for traces whose spans were all consumed by the ring.
EVICT_RING = "ring"


class Tracer:
    """Span factory and flight-recorder store for batch-lifecycle traces.

    Parameters
    ----------
    enabled:
        When False every ``start_*`` call returns the shared no-op span.
    task_detail:
        Opt-in per-task execution spans (potentially thousands per batch);
        instrumentation sites check this flag before emitting task spans.
    max_spans:
        Ring bound on live spans so week-long simulated runs cannot grow
        memory without limit; the newest spans win.
    sample_rate:
        Deterministic head-sampling rate: a trace is pre-selected iff
        ``SHA-256(trace_id) mod sample_rate == 0``.  ``1`` (the default)
        keeps every trace.
    retain_interesting:
        Tail-based retention switch.  When True (default), traces with
        ``chaos.*`` span events, traces overlapping a
        :meth:`note_interest` window, and force-marked traces survive
        finalization even when head sampling would discard them.
    registry:
        Destination for the cataloged ``repro_obs_trace_*`` accounting
        families; defaults to the no-op registry.
    """

    def __init__(
        self,
        enabled: bool = True,
        task_detail: bool = False,
        max_spans: int = 200_000,
        sample_rate: int = 1,
        retain_interesting: bool = True,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        if sample_rate < 1:
            raise ValueError("sample_rate must be >= 1")
        self.enabled = enabled
        self.task_detail = task_detail
        self.max_spans = max_spans
        self.sample_rate = int(sample_rate)
        self.retain_interesting = retain_interesting
        reg = registry if registry is not None else NOOP_REGISTRY
        self._m_sampled = catalog.instrument(
            reg, "repro_obs_trace_sampled_total"
        )
        self._m_retained = catalog.instrument(
            reg, "repro_obs_trace_retained_total"
        )
        self._m_evicted = catalog.instrument(
            reg, "repro_obs_trace_evicted_total"
        )
        self._m_span_drops = catalog.instrument(
            reg, "repro_obs_trace_spans_dropped_total"
        )
        #: Optional hook fired at finalization for every retained trace:
        #: ``on_retained(trace_id, spans, reason)``.  The Telemetry hub
        #: wires this to the emission batcher.
        self.on_retained: Optional[Callable[[str, List[Span], str], None]] = (
            None
        )
        self._reset_state()

    def _reset_state(self) -> None:
        #: Finalized retained spans in ring-eviction order (finalization
        #: order; within a trace, creation order).  Only used to drive
        #: O(1) eviction — queries go through ``_by_trace``.
        self._archive: Deque[Span] = deque()
        #: Per-trace span buffers (open and retained traces alike), in
        #: trace-creation order; entries are pruned when they empty.
        self._by_trace: Dict[str, Deque[Span]] = {}
        #: Open (not yet finalized) traces: trace id → root span.
        self._open: Dict[str, Span] = {}
        self._head_keep: Dict[str, bool] = {}
        self._forced: Dict[str, str] = {}
        self._partial: Dict[str, bool] = {}
        self._interest: List[Tuple[float, float, str]] = []
        self._by_id: Dict[int, Span] = {}
        self._children: Dict[int, Deque[Span]] = {}
        self._next_span_id = 1
        self._open_span_count = 0
        #: Spans consumed by the ring bound (any reason).
        self.dropped_spans = 0
        #: Subset of ``dropped_spans`` that were still unfinished.
        self.dropped_unfinished = 0
        #: ``finish_span`` calls that arrived after their span was evicted.
        self.late_finishes = 0
        #: Traces pre-selected by head sampling.
        self.sampled_traces = 0
        #: Traces kept / discarded at finalization, with per-reason splits.
        self.retained_traces = 0
        self.evicted_traces = 0
        self.retained_by_reason: Dict[str, int] = {}
        self.evicted_by_reason: Dict[str, int] = {}

    # -- span creation -------------------------------------------------------

    def _new_span(
        self,
        name: str,
        trace_id: str,
        parent_id: Optional[int],
        start: float,
        attributes: Dict[str, object],
    ) -> Span:
        span = Span(
            trace_id=trace_id,
            span_id=self._next_span_id,
            parent_id=parent_id,
            name=name,
            start=start,
            attributes=attributes,
        )
        self._next_span_id += 1
        while len(self._archive) + self._open_span_count >= self.max_spans:
            self._evict_one_span()
        buf = self._by_trace.get(trace_id)
        if buf is None:
            buf = self._by_trace[trace_id] = deque()
        buf.append(span)
        if parent_id is not None and trace_id not in self._open and len(buf) > 1:
            # Late child of an already-finalized retained trace: keep the
            # archive (eviction order) in lockstep with the buffer.
            self._archive.append(span)
        else:
            self._open_span_count += 1
        self._by_id[span.span_id] = span
        if parent_id is not None:
            siblings = self._children.get(parent_id)
            if siblings is None:
                siblings = self._children[parent_id] = deque()
            siblings.append(span)
        return span

    def start_trace(
        self, name: str, trace_id: str, start: float, **attributes: object
    ) -> Span:
        """Open a root span, beginning a new trace.

        Opening a trace also finalizes every earlier trace whose root has
        finished — the point where sampling and tail-based retention
        decide each trace's fate.
        """
        if not self.enabled:
            return NOOP_SPAN  # type: ignore[return-value]
        self._finalize_decidable()
        span = self._new_span(name, trace_id, None, start, dict(attributes))
        self._open[trace_id] = span
        keep = self._head_sampled(trace_id)
        self._head_keep[trace_id] = keep
        if keep:
            self.sampled_traces += 1
            self._m_sampled.inc()
        return span

    def start_span(
        self, name: str, parent: ParentLike, start: float, **attributes: object
    ) -> Span:
        """Open a child span under ``parent`` (a span or a trace context)."""
        if not self.enabled or parent is None or parent is NOOP_SPAN:
            return NOOP_SPAN  # type: ignore[return-value]
        return self._new_span(
            name, parent.trace_id, parent.span_id, start, dict(attributes)
        )

    # -- sampling and retention ----------------------------------------------

    def _head_sampled(self, trace_id: str) -> bool:
        """Deterministic head-sampling decision for one trace id."""
        if self.sample_rate <= 1:
            return True
        digest = hashlib.sha256(trace_id.encode("utf-8")).hexdigest()
        return int(digest, 16) % self.sample_rate == 0

    def note_interest(self, start: float, end: float, reason: str) -> None:
        """Declare ``[start, end]`` (sim seconds) interesting.

        Any trace overlapping the window survives finalization with
        ``reason`` as its retention label, regardless of head sampling.
        Instrumentation sites call this for SLO breaches, detector
        anomalies, chaos outage windows, and NoStop audit decisions.
        """
        if not self.enabled:
            return
        lo, hi = float(start), float(end)
        if hi < lo:
            lo, hi = hi, lo
        self._interest.append((lo, hi, str(reason)))

    def mark_interesting(self, trace_id: str, reason: str = "forced") -> None:
        """Force-retain one specific trace at finalization."""
        if self.enabled:
            self._forced[trace_id] = str(reason)

    @property
    def interest_windows(self) -> List[Tuple[float, float, str]]:
        return list(self._interest)

    def _retention_reason(
        self,
        root: Span,
        spans: List[Span],
        head: bool,
        forced: Optional[str],
    ) -> Optional[str]:
        """The reason this trace survives finalization, or None to evict."""
        if forced is not None:
            return forced
        if self.retain_interesting:
            for s in spans:
                for ev in s.events:
                    if ev.name.startswith("chaos."):
                        return RETAIN_CHAOS
            lo = root.start
            hi = root.end if root.end is not None else root.start
            for s in spans:
                lo = min(lo, s.start)
                hi = max(hi, s.start if s.end is None else s.end)
            for w_lo, w_hi, w_reason in self._interest:
                if w_lo <= hi and w_hi >= lo:
                    return w_reason
        return RETAIN_SAMPLED if head else None

    def _finalize_decidable(self) -> None:
        """Finalize every open trace whose fate is decidable.

        Decidable means the root has finished, or the root itself was
        consumed by the ring (it can never finish through the tracer, so
        deferring further would leak the open-trace entry).
        """
        done = [
            tid
            for tid, root in self._open.items()
            if root.finished or root.span_id not in self._by_id
        ]
        for tid in done:
            self._finalize_trace(tid)

    def finalize_all(self) -> None:
        """Flush retention decisions for every decidable open trace.

        Call after a run completes (the CLI and report builders do) so
        the last trace's fate is decided without waiting for a next
        ``start_trace``.  Traces whose root is still unfinished stay
        open and visible.
        """
        if self.enabled:
            self._finalize_decidable()

    def _finalize_trace(self, tid: str) -> None:
        root = self._open.pop(tid)
        head = self._head_keep.pop(tid, False)
        forced = self._forced.pop(tid, None)
        partial = self._partial.pop(tid, False)
        buf = self._by_trace.get(tid)
        spans = list(buf) if buf else []
        if partial:
            root.set_attribute("partial", True)
        reason = self._retention_reason(root, spans, head, forced)
        if reason is None or not spans:
            for s in spans:
                self._unindex(s)
            if buf is not None:
                del self._by_trace[tid]
            self._open_span_count -= len(spans)
            evict_reason = EVICT_RING if not spans else EVICT_SAMPLED_OUT
            self.evicted_traces += 1
            self.evicted_by_reason[evict_reason] = (
                self.evicted_by_reason.get(evict_reason, 0) + 1
            )
            self._m_evicted.labels(reason=evict_reason).inc()
            return
        self._archive.extend(spans)
        self._open_span_count -= len(spans)
        self.retained_traces += 1
        self.retained_by_reason[reason] = (
            self.retained_by_reason.get(reason, 0) + 1
        )
        self._m_retained.labels(reason=reason).inc()
        cb = self.on_retained
        if cb is not None:
            cb(tid, spans, reason)

    # -- ring eviction -------------------------------------------------------

    def _evict_one_span(self) -> None:
        """Evict the globally oldest live span in O(1).

        Finalized (retained) spans go first, in finalization order; when
        none remain, the oldest open trace loses its oldest span.  The
        archive front and its trace-buffer front are the same span by
        construction, so both pops are O(1).
        """
        if self._archive:
            span = self._archive.popleft()
            buf = self._by_trace.get(span.trace_id)
            if buf and buf[0] is span:
                buf.popleft()
                if not buf:
                    del self._by_trace[span.trace_id]
            self._drop_span(span)
            return
        # No retained spans left: every _by_trace entry is an open trace.
        tid = next(iter(self._by_trace))
        buf = self._by_trace[tid]
        span = buf.popleft()
        if not buf:
            del self._by_trace[tid]
        self._open_span_count -= 1
        self._drop_span(span)

    def _drop_span(self, span: Span) -> None:
        self._unindex(span)
        self.dropped_spans += 1
        if span.finished:
            self._m_span_drops.labels(reason="ring").inc()
        else:
            self.dropped_unfinished += 1
            self._m_span_drops.labels(reason="unfinished").inc()
            self._partial[span.trace_id] = True

    def _unindex(self, span: Span) -> None:
        self._by_id.pop(span.span_id, None)
        self._children.pop(span.span_id, None)
        if span.parent_id is not None:
            siblings = self._children.get(span.parent_id)
            if siblings and siblings[0] is span:
                siblings.popleft()
                if not siblings:
                    del self._children[span.parent_id]

    # -- context plumbing ----------------------------------------------------

    def span_for(self, ctx: Optional[TraceContext]) -> Span:
        """Resolve a propagated context back to its live span.

        Returns the no-op span for None / disabled / already-evicted
        contexts so call sites never need a null check.
        """
        if not self.enabled or ctx is None:
            return NOOP_SPAN  # type: ignore[return-value]
        return self._by_id.get(ctx.span_id, NOOP_SPAN)  # type: ignore[arg-type]

    def finish_span(self, ctx: Optional[TraceContext], end: float) -> None:
        """Finish the span behind ``ctx``; account for evicted spans.

        A finish arriving for a span the ring already consumed is not
        silently swallowed: it is counted (``late_finishes`` and the
        ``late_finish`` drop reason) and the trace is marked partial so
        analyzers and exports can see data went missing.
        """
        span = self.span_for(ctx)
        if span is NOOP_SPAN:
            if self.enabled and ctx is not None:
                self.late_finishes += 1
                self._m_span_drops.labels(reason="late_finish").inc()
                if ctx.trace_id in self._open:
                    self._partial[ctx.trace_id] = True
            return
        span.finish(end)

    # -- queries -------------------------------------------------------------

    @property
    def spans(self) -> List[Span]:
        """All live spans, grouped by trace in trace-creation order."""
        return [s for buf in self._by_trace.values() for s in buf]

    def trace(self, trace_id: str) -> List[Span]:
        """All spans of one trace, in creation order (O(trace size))."""
        return list(self._by_trace.get(trace_id, ()))

    def trace_ids(self) -> List[str]:
        """Distinct live trace ids in first-seen order."""
        return list(self._by_trace)

    def children_of(self, span: Span) -> List[Span]:
        """Direct children of ``span`` in creation order (O(children))."""
        return list(self._children.get(span.span_id, ()))

    def roots(self) -> List[Span]:
        return [
            s
            for buf in self._by_trace.values()
            for s in buf
            if s.parent_id is None
        ]

    def partial_trace_ids(self) -> List[str]:
        """Open traces currently marked partial, in first-marked order."""
        return list(self._partial)

    def clear(self) -> None:
        """Drop every span, index, window, and counter consistently."""
        self._reset_state()


class Telemetry:
    """The bundle of telemetry surfaces threaded through the stack."""

    def __init__(
        self,
        enabled: bool = True,
        task_detail: bool = False,
        max_spans: int = 200_000,
        sample_rate: int = 1,
        retain_interesting: bool = True,
    ) -> None:
        self.enabled = enabled
        # The registry must exist before the tracer: the flight recorder
        # instruments its cataloged repro_obs_trace_* families against it.
        self.metrics: MetricsRegistry = (
            MetricsRegistry() if enabled else NOOP_REGISTRY
        )
        self.tracer = Tracer(
            enabled=enabled,
            task_detail=task_detail,
            max_spans=max_spans,
            sample_rate=sample_rate,
            retain_interesting=retain_interesting,
            registry=self.metrics if enabled else None,
        )
        self.audit = AuditTrail(enabled=enabled)
        #: Optional :class:`~repro.obs.emit.EmissionBatcher`.  ``None``
        #: by default: the hot-path cost of no emitter is one attribute
        #: check at the few sites that produce emission events.
        self.emitter = None

    def attach_emitter(self, batcher) -> None:
        """Attach a batched emission pipeline (no-op hub refuses it).

        Also wires the flight recorder's retained-trace hook: every
        trace that survives finalization ships a one-line summary event
        (id, reason, delay decomposition) through the batcher.
        """
        if not self.enabled:
            raise ValueError(
                "cannot attach an emitter to disabled telemetry"
            )
        from .emit import trace_summary_event

        self.emitter = batcher

        def _ship(trace_id: str, spans, reason: str) -> None:
            event = trace_summary_event(trace_id, spans, reason)
            batcher.emit(event, now=float(event["time"]))  # type: ignore[arg-type]

        self.tracer.on_retained = _ship

    def close_emitter(self) -> None:
        """Flush-on-close the attached emitter, if any.  Idempotent."""
        if self.emitter is not None:
            self.emitter.close()


#: Shared disabled hub: the default for every instrumented component.
NOOP_TELEMETRY = Telemetry(enabled=False)
