"""Tracer and the :class:`Telemetry` hub.

The tracer owns span identity (a monotonic counter — deterministic under
the seeded sim clock, unlike random ids) and the span store.  Components
receive the tracer explicitly through their constructors and parent new
spans off an explicit :class:`~repro.obs.span.TraceContext`; there is no
ambient "current span" global.

``Telemetry`` bundles the three telemetry surfaces of the subsystem —
tracer, metrics registry, SPSA audit trail — behind a single object that
is threaded through the stack.  :data:`NOOP_TELEMETRY` is the shared
disabled instance every component defaults to; its hot-path cost is one
``enabled`` check or an empty method call.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from .audit import AuditTrail
from .registry import NOOP_REGISTRY, MetricsRegistry
from .span import NOOP_SPAN, Span, TraceContext

ParentLike = Union[Span, TraceContext, None]


class Tracer:
    """Span factory and store for batch-lifecycle traces.

    Parameters
    ----------
    enabled:
        When False every ``start_*`` call returns the shared no-op span.
    task_detail:
        Opt-in per-task execution spans (potentially thousands per batch);
        instrumentation sites check this flag before emitting task spans.
    max_spans:
        Ring bound on retained finished spans so week-long simulated runs
        cannot grow memory without limit; the newest spans win.
    """

    def __init__(
        self,
        enabled: bool = True,
        task_detail: bool = False,
        max_spans: int = 200_000,
    ) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self.enabled = enabled
        self.task_detail = task_detail
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self._by_id: Dict[int, Span] = {}
        self._next_span_id = 1
        self.dropped_spans = 0

    # -- span creation -------------------------------------------------------

    def _new_span(
        self,
        name: str,
        trace_id: str,
        parent_id: Optional[int],
        start: float,
        attributes: Dict[str, object],
    ) -> Span:
        span = Span(
            trace_id=trace_id,
            span_id=self._next_span_id,
            parent_id=parent_id,
            name=name,
            start=start,
            attributes=attributes,
        )
        self._next_span_id += 1
        if len(self.spans) >= self.max_spans:
            evicted = self.spans.pop(0)
            self._by_id.pop(evicted.span_id, None)
            self.dropped_spans += 1
        self.spans.append(span)
        self._by_id[span.span_id] = span
        return span

    def start_trace(
        self, name: str, trace_id: str, start: float, **attributes: object
    ) -> Span:
        """Open a root span, beginning a new trace."""
        if not self.enabled:
            return NOOP_SPAN  # type: ignore[return-value]
        return self._new_span(name, trace_id, None, start, dict(attributes))

    def start_span(
        self, name: str, parent: ParentLike, start: float, **attributes: object
    ) -> Span:
        """Open a child span under ``parent`` (a span or a trace context)."""
        if not self.enabled or parent is None or parent is NOOP_SPAN:
            return NOOP_SPAN  # type: ignore[return-value]
        return self._new_span(
            name, parent.trace_id, parent.span_id, start, dict(attributes)
        )

    # -- context plumbing ----------------------------------------------------

    def span_for(self, ctx: Optional[TraceContext]) -> Span:
        """Resolve a propagated context back to its live span.

        Returns the no-op span for None / disabled / already-evicted
        contexts so call sites never need a null check.
        """
        if not self.enabled or ctx is None:
            return NOOP_SPAN  # type: ignore[return-value]
        return self._by_id.get(ctx.span_id, NOOP_SPAN)  # type: ignore[arg-type]

    def finish_span(self, ctx: Optional[TraceContext], end: float) -> None:
        self.span_for(ctx).finish(end)

    # -- queries -------------------------------------------------------------

    def trace(self, trace_id: str) -> List[Span]:
        """All spans of one trace, in creation order."""
        return [s for s in self.spans if s.trace_id == trace_id]

    def trace_ids(self) -> List[str]:
        """Distinct trace ids in first-seen order."""
        seen: Dict[str, None] = {}
        for s in self.spans:
            seen.setdefault(s.trace_id, None)
        return list(seen)

    def children_of(self, span: Span) -> List[Span]:
        return [
            s
            for s in self.spans
            if s.parent_id == span.span_id and s.trace_id == span.trace_id
        ]

    def roots(self) -> List[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def clear(self) -> None:
        self.spans.clear()
        self._by_id.clear()


class Telemetry:
    """The bundle of telemetry surfaces threaded through the stack."""

    def __init__(
        self,
        enabled: bool = True,
        task_detail: bool = False,
        max_spans: int = 200_000,
    ) -> None:
        self.enabled = enabled
        self.tracer = Tracer(
            enabled=enabled, task_detail=task_detail, max_spans=max_spans
        )
        self.metrics: MetricsRegistry = (
            MetricsRegistry() if enabled else NOOP_REGISTRY
        )
        self.audit = AuditTrail(enabled=enabled)
        #: Optional :class:`~repro.obs.emit.EmissionBatcher`.  ``None``
        #: by default: the hot-path cost of no emitter is one attribute
        #: check at the few sites that produce emission events.
        self.emitter = None

    def attach_emitter(self, batcher) -> None:
        """Attach a batched emission pipeline (no-op hub refuses it)."""
        if not self.enabled:
            raise ValueError(
                "cannot attach an emitter to disabled telemetry"
            )
        self.emitter = batcher

    def close_emitter(self) -> None:
        """Flush-on-close the attached emitter, if any.  Idempotent."""
        if self.emitter is not None:
            self.emitter.close()


#: Shared disabled hub: the default for every instrumented component.
NOOP_TELEMETRY = Telemetry(enabled=False)
