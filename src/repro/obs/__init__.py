"""Telemetry subsystem: tracing, metrics, and the SPSA audit trail.

Zero-dependency observability for the NoStop reproduction (DESIGN.md
§10).  Three surfaces, bundled behind one :class:`Telemetry` hub that is
threaded explicitly through the stack:

* :class:`Tracer` — span-based tracing of the batch lifecycle, one trace
  per micro-batch with ingest / queue / schedule / execute child spans;
* :class:`MetricsRegistry` — counters, gauges, and fixed-bucket
  histograms named ``repro_<subsystem>_<name>_<unit>``;
* :class:`AuditTrail` — a per-iteration record of every SPSA decision,
  replayable to prove the log matches the optimizer's actual steps.

Everything defaults to :data:`NOOP_TELEMETRY`; the disabled path is a
handful of no-op method calls per batch (benchmarked <5% overhead on the
wordcount workload, see ``benchmarks/test_telemetry_overhead.py``).
"""

from .alerts import (
    Alert,
    BurnRateAlerter,
    BurnRatePolicy,
    default_policies,
    delay_above,
    unstable_batch,
)
from .audit import (
    AuditTrail,
    ReplayMismatch,
    RuleFiring,
    SPSADecision,
    clipped_axes,
)
from .detect import (
    MAD_TO_SIGMA,
    AnomalyEvent,
    CusumDetector,
    EwmaMadDetector,
    SpsaWatchdog,
    WatchdogReport,
)
from .exporters import (
    escape_help_text,
    escape_label_value,
    parse_jsonl_spans,
    prometheus_text,
    render_metrics_summary,
    render_timeline,
    save_spans,
    spans_to_jsonl,
    validate_prometheus_text,
)
from .profiler import (
    COMPONENT_SPANS,
    PROCESSING_SPANS,
    ComponentTime,
    SpanProfile,
    WallClockProfiler,
    profile_spans,
    render_hotspots,
)
from .catalog import (
    CATALOG,
    MetricSpec,
    catalog_json,
    catalog_markdown,
    check_registry,
    governance_report,
    lint_catalog,
)
from .dash import build_dashboard, dashboard_json
from .emit import (
    EmissionBatcher,
    JsonlSink,
    metric_events,
    parse_jsonl_events,
)
from .report import (
    FaultOutcome,
    RunJudge,
    RunReport,
    build_run_report,
)
from .slo import (
    SLO,
    SLOEvaluator,
    SLOVerdict,
    default_slos,
    has_critical_breach,
    worst_breaches,
)
from .registry import (
    CARDINALITY_REJECTED_NAME,
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_MAX_CHILDREN,
    DEFAULT_SECONDS_BUCKETS,
    NOOP_FAMILY,
    NOOP_INSTRUMENT,
    NOOP_REGISTRY,
    Counter,
    CounterFamily,
    Gauge,
    GaugeFamily,
    Histogram,
    HistogramFamily,
    MetricFamily,
    MetricsRegistry,
)
from .span import NOOP_SPAN, Span, SpanEvent, TraceContext
from .tracer import NOOP_TELEMETRY, Telemetry, Tracer

__all__ = [
    "Alert",
    "BurnRateAlerter",
    "BurnRatePolicy",
    "default_policies",
    "delay_above",
    "unstable_batch",
    "MAD_TO_SIGMA",
    "AnomalyEvent",
    "CusumDetector",
    "EwmaMadDetector",
    "SpsaWatchdog",
    "WatchdogReport",
    "escape_help_text",
    "escape_label_value",
    "CATALOG",
    "MetricSpec",
    "catalog_json",
    "catalog_markdown",
    "check_registry",
    "governance_report",
    "lint_catalog",
    "build_dashboard",
    "dashboard_json",
    "EmissionBatcher",
    "JsonlSink",
    "metric_events",
    "parse_jsonl_events",
    "COMPONENT_SPANS",
    "PROCESSING_SPANS",
    "ComponentTime",
    "SpanProfile",
    "WallClockProfiler",
    "profile_spans",
    "render_hotspots",
    "FaultOutcome",
    "RunJudge",
    "RunReport",
    "build_run_report",
    "SLO",
    "SLOEvaluator",
    "SLOVerdict",
    "default_slos",
    "has_critical_breach",
    "worst_breaches",
    "AuditTrail",
    "ReplayMismatch",
    "RuleFiring",
    "SPSADecision",
    "clipped_axes",
    "parse_jsonl_spans",
    "prometheus_text",
    "render_metrics_summary",
    "render_timeline",
    "save_spans",
    "spans_to_jsonl",
    "validate_prometheus_text",
    "CARDINALITY_REJECTED_NAME",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_MAX_CHILDREN",
    "DEFAULT_SECONDS_BUCKETS",
    "NOOP_FAMILY",
    "NOOP_INSTRUMENT",
    "NOOP_REGISTRY",
    "Counter",
    "CounterFamily",
    "Gauge",
    "GaugeFamily",
    "Histogram",
    "HistogramFamily",
    "MetricFamily",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Span",
    "SpanEvent",
    "TraceContext",
    "NOOP_TELEMETRY",
    "Telemetry",
    "Tracer",
]
