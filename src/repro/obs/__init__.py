"""Telemetry subsystem: tracing, metrics, and the SPSA audit trail.

Zero-dependency observability for the NoStop reproduction (DESIGN.md
§10).  Three surfaces, bundled behind one :class:`Telemetry` hub that is
threaded explicitly through the stack:

* :class:`Tracer` — span-based tracing of the batch lifecycle, one trace
  per micro-batch with ingest / queue / schedule / execute child spans;
* :class:`MetricsRegistry` — counters, gauges, and fixed-bucket
  histograms named ``repro_<subsystem>_<name>_<unit>``;
* :class:`AuditTrail` — a per-iteration record of every SPSA decision,
  replayable to prove the log matches the optimizer's actual steps.

Everything defaults to :data:`NOOP_TELEMETRY`; the disabled path is a
handful of no-op method calls per batch (benchmarked <5% overhead on the
wordcount workload, see ``benchmarks/test_telemetry_overhead.py``).
"""

from .alerts import (
    Alert,
    BurnRateAlerter,
    BurnRatePolicy,
    default_policies,
    delay_above,
    unstable_batch,
)
from .audit import (
    AuditTrail,
    ReplayMismatch,
    RuleFiring,
    SPSADecision,
    clipped_axes,
)
from .detect import (
    MAD_TO_SIGMA,
    AnomalyEvent,
    CusumDetector,
    EwmaMadDetector,
    SpsaWatchdog,
    WatchdogReport,
)
from .exporters import (
    escape_help_text,
    escape_label_value,
    parse_jsonl_spans,
    prometheus_text,
    render_metrics_summary,
    render_timeline,
    save_spans,
    spans_to_jsonl,
    validate_prometheus_text,
)
from .profiler import (
    COMPONENT_SPANS,
    PROCESSING_SPANS,
    ComponentTime,
    SpanProfile,
    WallClockProfiler,
    profile_spans,
    render_hotspots,
)
from .report import (
    FaultOutcome,
    RunJudge,
    RunReport,
    build_run_report,
)
from .slo import (
    SLO,
    SLOEvaluator,
    SLOVerdict,
    default_slos,
    has_critical_breach,
    worst_breaches,
)
from .registry import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_SECONDS_BUCKETS,
    NOOP_INSTRUMENT,
    NOOP_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .span import NOOP_SPAN, Span, SpanEvent, TraceContext
from .tracer import NOOP_TELEMETRY, Telemetry, Tracer

__all__ = [
    "Alert",
    "BurnRateAlerter",
    "BurnRatePolicy",
    "default_policies",
    "delay_above",
    "unstable_batch",
    "MAD_TO_SIGMA",
    "AnomalyEvent",
    "CusumDetector",
    "EwmaMadDetector",
    "SpsaWatchdog",
    "WatchdogReport",
    "escape_help_text",
    "escape_label_value",
    "COMPONENT_SPANS",
    "PROCESSING_SPANS",
    "ComponentTime",
    "SpanProfile",
    "WallClockProfiler",
    "profile_spans",
    "render_hotspots",
    "FaultOutcome",
    "RunJudge",
    "RunReport",
    "build_run_report",
    "SLO",
    "SLOEvaluator",
    "SLOVerdict",
    "default_slos",
    "has_critical_breach",
    "worst_breaches",
    "AuditTrail",
    "ReplayMismatch",
    "RuleFiring",
    "SPSADecision",
    "clipped_axes",
    "parse_jsonl_spans",
    "prometheus_text",
    "render_metrics_summary",
    "render_timeline",
    "save_spans",
    "spans_to_jsonl",
    "validate_prometheus_text",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_SECONDS_BUCKETS",
    "NOOP_INSTRUMENT",
    "NOOP_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Span",
    "SpanEvent",
    "TraceContext",
    "NOOP_TELEMETRY",
    "Telemetry",
    "Tracer",
]
