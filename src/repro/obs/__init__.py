"""Telemetry subsystem: tracing, metrics, and the SPSA audit trail.

Zero-dependency observability for the NoStop reproduction (DESIGN.md
§10).  Three surfaces, bundled behind one :class:`Telemetry` hub that is
threaded explicitly through the stack:

* :class:`Tracer` — span-based tracing of the batch lifecycle, one trace
  per micro-batch with ingest / queue / schedule / execute child spans;
* :class:`MetricsRegistry` — counters, gauges, and fixed-bucket
  histograms named ``repro_<subsystem>_<name>_<unit>``;
* :class:`AuditTrail` — a per-iteration record of every SPSA decision,
  replayable to prove the log matches the optimizer's actual steps.

Everything defaults to :data:`NOOP_TELEMETRY`; the disabled path is a
handful of no-op method calls per batch (benchmarked <5% overhead on the
wordcount workload, see ``benchmarks/test_telemetry_overhead.py``).
"""

from .audit import (
    AuditTrail,
    ReplayMismatch,
    RuleFiring,
    SPSADecision,
    clipped_axes,
)
from .exporters import (
    parse_jsonl_spans,
    prometheus_text,
    render_metrics_summary,
    render_timeline,
    save_spans,
    spans_to_jsonl,
    validate_prometheus_text,
)
from .registry import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_SECONDS_BUCKETS,
    NOOP_INSTRUMENT,
    NOOP_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .span import NOOP_SPAN, Span, SpanEvent, TraceContext
from .tracer import NOOP_TELEMETRY, Telemetry, Tracer

__all__ = [
    "AuditTrail",
    "ReplayMismatch",
    "RuleFiring",
    "SPSADecision",
    "clipped_axes",
    "parse_jsonl_spans",
    "prometheus_text",
    "render_metrics_summary",
    "render_timeline",
    "save_spans",
    "spans_to_jsonl",
    "validate_prometheus_text",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_SECONDS_BUCKETS",
    "NOOP_INSTRUMENT",
    "NOOP_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Span",
    "SpanEvent",
    "TraceContext",
    "NOOP_TELEMETRY",
    "Telemetry",
    "Tracer",
]
