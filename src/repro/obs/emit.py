"""Batched telemetry emission: a bounded queue in front of a JSONL sink.

Fleet-volume telemetry cannot afford a write syscall per event, and an
unbounded buffer is a memory leak wearing a trench coat.  The
:class:`EmissionBatcher` sits between instrumentation call sites and the
JSONL exporter:

* events are **enqueued** (cheap append) and flushed to the sink as one
  batch per **sim-time flush interval** — the batcher is driven by
  simulation time like everything else, so output is deterministic;
* the queue is **bounded**: when full, the newest event is dropped and
  the drop is accounted (``repro_obs_emit_dropped_total`` and
  :attr:`EmissionBatcher.dropped`) — backpressure never propagates into
  the simulation;
* **flush-on-close** guarantees no tail loss on orderly shutdown.

The default sink is :class:`JsonlSink` — one ``json.dumps(…,
sort_keys=True)`` line per event, the same archive convention as span
JSONL.  :func:`metric_events` snapshots a registry (flat metrics and
family children alike) into emission events, which is how ``repro
metrics --events-out`` ships periodic registry snapshots through the
pipeline.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional, TextIO, Union

from . import catalog
from .critical import decompose
from .registry import (
    NOOP_REGISTRY,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from .span import Span

#: An emission event is a flat JSON-serialisable dict.
Event = Dict[str, object]

Sink = Union["JsonlSink", Callable[[List[Event]], None]]

DEFAULT_MAX_PENDING = 4096
DEFAULT_FLUSH_INTERVAL = 10.0


class JsonlSink:
    """Append-only JSONL writer: one sorted-key object per line."""

    def __init__(self, target: Union[str, TextIO]) -> None:
        if isinstance(target, str):
            self._fh: TextIO = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._fh = target
            self._owns = False
        self.lines_written = 0

    def __call__(self, events: List[Event]) -> None:
        for event in events:
            self._fh.write(json.dumps(event, sort_keys=True) + "\n")
        self.lines_written += len(events)

    def close(self) -> None:
        self._fh.flush()
        if self._owns:
            self._fh.close()


def parse_jsonl_events(text: str) -> List[Event]:
    """Parse a :class:`JsonlSink` file back into events."""
    events: List[Event] = []
    for i, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(f"malformed event on line {i}: {exc}") from exc
    return events


class EmissionBatcher:
    """Bounded-queue, sim-time-interval batcher in front of a sink.

    Parameters
    ----------
    sink:
        Where flushed batches go — a :class:`JsonlSink` or any callable
        taking a list of events.
    registry:
        Destination for the batcher's own accounting instruments
        (enqueued / dropped / flushed counters, queue-length gauge).
        Defaults to the no-op registry.
    max_pending:
        Hard queue bound.  An ``emit()`` against a full queue drops the
        incoming event with accounting; it never blocks or grows.
    flush_interval:
        Simulated seconds between automatic flushes.  ``emit`` and
        ``tick`` both advance the clock; a flush fires the first time
        the interval has elapsed since the previous flush.
    """

    def __init__(
        self,
        sink: Sink,
        registry: Optional[MetricsRegistry] = None,
        max_pending: int = DEFAULT_MAX_PENDING,
        flush_interval: float = DEFAULT_FLUSH_INTERVAL,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if flush_interval <= 0:
            raise ValueError(
                f"flush_interval must be > 0, got {flush_interval}"
            )
        self.sink = sink
        self.max_pending = int(max_pending)
        self.flush_interval = float(flush_interval)
        self._pending: List[Event] = []
        self._last_flush: Optional[float] = None
        self.closed = False
        #: Lifetime accounting (mirrored on the metrics below).
        self.enqueued = 0
        self.dropped = 0
        self.flushed = 0
        self.flushes = 0
        reg = registry if registry is not None else NOOP_REGISTRY
        self._m_enqueued = catalog.instrument(
            reg, "repro_obs_emit_enqueued_total"
        )
        self._m_dropped = catalog.instrument(
            reg, "repro_obs_emit_dropped_total"
        )
        self._m_flushed = catalog.instrument(
            reg, "repro_obs_emit_flushed_total"
        )
        self._m_flushes = catalog.instrument(
            reg, "repro_obs_emit_flushes_total"
        )
        self._m_queue = catalog.instrument(
            reg, "repro_obs_emit_queue_length"
        )

    @property
    def pending(self) -> int:
        return len(self._pending)

    def emit(self, event: Event, now: float) -> bool:
        """Enqueue one event at sim time ``now``.

        Returns False (with drop accounting) when the queue is full or
        the batcher is closed; flushes first if the interval elapsed.
        """
        if self.closed:
            return False
        self.maybe_flush(now)
        if len(self._pending) >= self.max_pending:
            self.dropped += 1
            self._m_dropped.inc()
            return False
        self._pending.append(event)
        self.enqueued += 1
        self._m_enqueued.inc()
        self._m_queue.set(len(self._pending))
        return True

    def maybe_flush(self, now: float) -> bool:
        """Flush if ``flush_interval`` simulated seconds have elapsed."""
        if self._last_flush is None:
            # First activity anchors the flush clock; nothing to ship.
            self._last_flush = now
            return False
        if now - self._last_flush >= self.flush_interval:
            self.flush(now)
            return True
        return False

    def flush(self, now: Optional[float] = None) -> int:
        """Ship everything pending to the sink as one batch."""
        if now is not None:
            self._last_flush = now
        if not self._pending:
            return 0
        batch, self._pending = self._pending, []
        self.sink(batch)
        self.flushed += len(batch)
        self.flushes += 1
        self._m_flushed.inc(len(batch))
        self._m_flushes.inc()
        self._m_queue.set(0)
        return len(batch)

    def close(self) -> None:
        """Flush the tail and close an owning sink.  Idempotent."""
        if self.closed:
            return
        self.flush()
        self.closed = True
        close = getattr(self.sink, "close", None)
        if close is not None:
            close()


# -- registry snapshots as events --------------------------------------------


def _sample(
    name: str,
    kind: str,
    metric: object,
    time: float,
    labels: Optional[Dict[str, str]] = None,
) -> Event:
    event: Event = {
        "name": name,
        "kind": kind,
        "labels": labels or {},
        "time": time,
    }
    if isinstance(metric, Histogram):
        event["sum"] = metric.sum
        event["count"] = metric.count
        event["buckets"] = dict(
            zip((repr(b) for b in metric.bounds), metric.cumulative_counts())
        )
    else:
        event["value"] = metric.value  # type: ignore[attr-defined]
    return event


def metric_events(registry: MetricsRegistry, time: float = 0.0) -> List[Event]:
    """Snapshot a registry as one event per sample, deterministic order.

    Flat metrics yield one event; families yield one event per child
    (sorted by label values).  This is the JSONL twin of the Prometheus
    text exposition — same data, machine-shaped.
    """
    events: List[Event] = []
    for metric in registry.collect():
        name = metric.name  # type: ignore[attr-defined]
        kind = metric.kind  # type: ignore[attr-defined]
        if isinstance(metric, MetricFamily):
            for values, child in metric.children():
                labels = dict(zip(metric.labelnames, values))
                events.append(_sample(name, kind, child, time, labels))
        else:
            events.append(_sample(name, kind, metric, time))
    return events


# -- retained-trace summaries -------------------------------------------------


def trace_summary_event(
    trace_id: str, spans: "List[Span]", reason: str
) -> Event:
    """One emission event summarizing a trace the flight recorder kept.

    The Telemetry hub wires this through ``Tracer.on_retained``, so every
    retained trace ships a one-line summary (retention reason, span
    count, and — when the trace decomposes — the §5 delay-model
    segments) through the batched emission pipeline alongside metric
    snapshots.
    """
    root = next((s for s in spans if s.parent_id is None), None)
    if root is not None and root.end is not None:
        time = root.end
    elif spans:
        last = spans[-1]
        time = last.end if last.end is not None else last.start
    else:
        time = 0.0
    event: Event = {
        "event": "trace_retained",
        "traceId": trace_id,
        "reason": reason,
        "spans": len(spans),
        "time": time,
    }
    d = decompose(spans)
    if d is not None:
        event["ingest"] = d.ingest
        event["queue"] = d.queue
        event["schedule"] = d.schedule
        event["execute"] = d.execute
        event["complete"] = d.complete
        event["criticalPath"] = ";".join(
            step.name for step in d.critical_path
        )
    return event
