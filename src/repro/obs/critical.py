"""Critical-path analytics over batch traces (DESIGN.md §16).

NoStop's premise is that end-to-end delay decomposes into queue wait +
scheduling + processing (the §5 delay model).  The tracer records that
decomposition — one trace per micro-batch whose root is tiled exactly by
its ``ingest`` / ``queue`` / ``schedule`` / ``execute`` children — and
this module *analyzes* it:

* :func:`decompose` tiles one trace's root duration into the four
  segments and extracts the **critical path** (the longest-duration
  chain of spans from the root to a leaf);
* :func:`analyze_spans` aggregates decompositions into a deterministic
  "where the delay went" table, split into **epochs** at each
  reconfiguration so before/after comparisons fall out directly;
* :func:`steady_state_agreement` cross-checks the aggregated
  wait/schedule/execute decomposition against the steady-state delay
  identity (``E[e2e] = interval/2 + scheduling delay + processing
  time``) that ``check/oracles.py`` validates from the batch side.

Everything here is pure over ``Span`` values, so it works identically on
a live tracer's spans and on spans reloaded from ``repro trace --out``
JSONL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .span import Span

#: Direct children of a batch root that tile its duration, in timeline
#: order: the arrival window, the queue wait, then the scheduler's
#: setup/coordination slices interleaved with stage execution.
SEGMENT_SPANS = ("ingest", "queue", "schedule", "execute")

#: Tiling tolerance: the segments are contiguous by construction, so the
#: residual is pure float-summation noise, orders of magnitude below this.
TILING_TOL = 1e-9


@dataclass(frozen=True)
class CriticalStep:
    """One span on a trace's critical path."""

    name: str
    start: float
    duration: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
        }


@dataclass(frozen=True)
class TraceDecomposition:
    """One batch trace tiled into the §5 delay-model segments."""

    trace_id: str
    start: float
    end: float
    ingest: float
    queue: float
    schedule: float
    execute: float
    complete: bool
    """All four segments present under a finished, non-partial root —
    only complete decompositions enter aggregate segment tables."""
    dropped: bool
    """Queue-evicted batch: the root finished at the boundary with no
    processing spans."""
    partial: bool
    """The flight recorder evicted unfinished spans of this trace."""
    batch_index: Optional[int]
    records: Optional[int]
    interval: Optional[float]
    executors: Optional[int]
    scheduling_delay: Optional[float]
    processing_time: Optional[float]
    first_after_reconfig: bool
    critical_path: Tuple[CriticalStep, ...]

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def wait(self) -> float:
        """Time before processing: arrival window plus queue wait."""
        return self.ingest + self.queue

    @property
    def segment_sum(self) -> float:
        return self.ingest + self.queue + self.schedule + self.execute

    @property
    def residual(self) -> float:
        """Root duration minus the segment tiling (≈0 when complete)."""
        return self.duration - self.segment_sum

    @property
    def expected_delay(self) -> float:
        """Per-trace steady-state identity: with uniform arrivals a
        record waits ``ingest/2`` on average, then the queue, then the
        scheduler and executor — the trace-side twin of the oracle's
        ``interval/2 + scheduling delay + processing time``."""
        return self.ingest / 2.0 + self.queue + self.schedule + self.execute

    def to_dict(self) -> Dict[str, object]:
        return {
            "traceId": self.trace_id,
            "start": self.start,
            "end": self.end,
            "ingest": self.ingest,
            "queue": self.queue,
            "schedule": self.schedule,
            "execute": self.execute,
            "residual": self.residual,
            "complete": self.complete,
            "dropped": self.dropped,
            "partial": self.partial,
            "batchIndex": self.batch_index,
            "records": self.records,
            "interval": self.interval,
            "executors": self.executors,
            "firstAfterReconfig": self.first_after_reconfig,
            "criticalPath": [s.to_dict() for s in self.critical_path],
        }


def group_spans_by_trace(
    spans: Sequence[Span],
) -> Dict[str, List[Span]]:
    """Spans keyed by trace id, first-seen order, creation order within."""
    by_trace: Dict[str, List[Span]] = {}
    for s in spans:
        by_trace.setdefault(s.trace_id, []).append(s)
    return by_trace


def critical_path(spans: Sequence[Span]) -> List[Span]:
    """The longest chain through one trace's span tree.

    Greedy maximum-duration descent from the root: at each node the
    longest-duration child continues the chain (ties break to the
    earliest-created child, so the walk is deterministic).  Returns the
    root-to-leaf spans, root first; empty when the trace has no root.
    """
    children: Dict[Optional[int], List[Span]] = {}
    for s in spans:
        children.setdefault(s.parent_id, []).append(s)
    roots = children.get(None, [])
    if not roots:
        return []
    node = max(roots, key=lambda s: (s.duration, -s.span_id))
    path = [node]
    while True:
        kids = children.get(node.span_id)
        if not kids:
            return path
        node = max(kids, key=lambda s: (s.duration, -s.span_id))
        path.append(node)


def decompose(spans: Sequence[Span]) -> Optional[TraceDecomposition]:
    """Tile one trace's root span into the delay-model segments.

    Returns None when the trace has no finished root (still in flight,
    or its root was ring-evicted).  ``spans`` must belong to a single
    trace (use :func:`decompose_spans` for a mixed collection).
    """
    root = next(
        (s for s in spans if s.parent_id is None and s.finished), None
    )
    if root is None:
        return None
    totals = dict.fromkeys(SEGMENT_SPANS, 0.0)
    counts = dict.fromkeys(SEGMENT_SPANS, 0)
    for s in spans:
        if s.parent_id == root.span_id and s.name in totals:
            totals[s.name] += s.duration
            counts[s.name] += 1
    attrs = root.attributes
    dropped = bool(attrs.get("dropped"))
    partial = bool(attrs.get("partial"))
    complete = (
        not partial
        and not dropped
        and all(counts[name] > 0 for name in SEGMENT_SPANS)
    )
    path = tuple(
        CriticalStep(name=s.name, start=s.start, duration=s.duration)
        for s in critical_path(spans)
    )

    def _float(key: str) -> Optional[float]:
        v = attrs.get(key)
        return float(v) if isinstance(v, (int, float)) else None

    def _int(key: str) -> Optional[int]:
        v = attrs.get(key)
        return int(v) if isinstance(v, (int, float)) else None

    return TraceDecomposition(
        trace_id=root.trace_id,
        start=root.start,
        end=root.end if root.end is not None else root.start,
        ingest=totals["ingest"],
        queue=totals["queue"],
        schedule=totals["schedule"],
        execute=totals["execute"],
        complete=complete,
        dropped=dropped,
        partial=partial,
        batch_index=_int("batch_index"),
        records=_int("records"),
        interval=_float("interval"),
        executors=_int("executors"),
        scheduling_delay=_float("scheduling_delay"),
        processing_time=_float("processing_time"),
        first_after_reconfig=bool(attrs.get("first_after_reconfig")),
        critical_path=path,
    )


def decompose_spans(spans: Sequence[Span]) -> List[TraceDecomposition]:
    """Decompose every trace in a mixed span collection.

    Traces without a finished root are skipped; results are ordered by
    root start time (ties by trace id) so aggregation is deterministic
    regardless of store ordering.
    """
    out = []
    for trace_spans in group_spans_by_trace(spans).values():
        d = decompose(trace_spans)
        if d is not None:
            out.append(d)
    out.sort(key=lambda d: (d.start, d.trace_id))
    return out


# -- aggregation -------------------------------------------------------------


@dataclass(frozen=True)
class SegmentStat:
    """One row of a "where the delay went" table."""

    name: str
    total: float
    count: int
    share: float
    """Fraction of the table's total time attributed to this row."""

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "total": self.total,
            "count": self.count,
            "mean": self.mean,
            "share": self.share,
        }


def _segment_table(decomps: Sequence[TraceDecomposition]) -> List[SegmentStat]:
    totals = dict.fromkeys(SEGMENT_SPANS, 0.0)
    n = 0
    for d in decomps:
        if not d.complete:
            continue
        n += 1
        totals["ingest"] += d.ingest
        totals["queue"] += d.queue
        totals["schedule"] += d.schedule
        totals["execute"] += d.execute
    grand = sum(totals.values())
    return [
        SegmentStat(
            name=name,
            total=totals[name],
            count=n,
            share=totals[name] / grand if grand else 0.0,
        )
        for name in SEGMENT_SPANS
    ]


def _critical_table(
    decomps: Sequence[TraceDecomposition],
) -> List[SegmentStat]:
    """Per-span-name contribution to the critical paths."""
    totals: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for d in decomps:
        for step in d.critical_path:
            totals[step.name] = totals.get(step.name, 0.0) + step.duration
            counts[step.name] = counts.get(step.name, 0) + 1
    grand = sum(totals.values())
    rows = [
        SegmentStat(
            name=name,
            total=totals[name],
            count=counts[name],
            share=totals[name] / grand if grand else 0.0,
        )
        for name in totals
    ]
    rows.sort(key=lambda r: (-r.total, r.name))
    return rows


@dataclass(frozen=True)
class Epoch:
    """A run of batches under one configuration (between reconfigs)."""

    index: int
    interval: Optional[float]
    executors: Optional[int]
    traces: int
    complete: int
    dropped: int
    partial: int
    segments: Tuple[SegmentStat, ...]
    critical: Tuple[SegmentStat, ...]

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "interval": self.interval,
            "executors": self.executors,
            "traces": self.traces,
            "complete": self.complete,
            "dropped": self.dropped,
            "partial": self.partial,
            "segments": [s.to_dict() for s in self.segments],
            "critical": [s.to_dict() for s in self.critical],
        }


@dataclass(frozen=True)
class DelayBreakdown:
    """The full "where the delay went" analysis for one run."""

    traces: int
    complete: int
    dropped: int
    partial: int
    max_tiling_residual: float
    segments: Tuple[SegmentStat, ...]
    critical: Tuple[SegmentStat, ...]
    epochs: Tuple[Epoch, ...]

    def to_dict(self) -> Dict[str, object]:
        return {
            "traces": self.traces,
            "complete": self.complete,
            "dropped": self.dropped,
            "partial": self.partial,
            "maxTilingResidual": self.max_tiling_residual,
            "segments": [s.to_dict() for s in self.segments],
            "critical": [s.to_dict() for s in self.critical],
            "epochs": [e.to_dict() for e in self.epochs],
        }


def split_epochs(
    decomps: Sequence[TraceDecomposition],
) -> List[List[TraceDecomposition]]:
    """Split a start-ordered decomposition list at each reconfiguration.

    A new epoch opens at a ``first_after_reconfig`` batch or whenever the
    (interval, executors) attributes change between consecutive batches;
    traces without config attributes (dropped batches) ride in whichever
    epoch they fall.
    """
    epochs: List[List[TraceDecomposition]] = []
    current: List[TraceDecomposition] = []
    config: Optional[Tuple[float, int]] = None
    for d in decomps:
        d_config = (
            (d.interval, d.executors)
            if d.interval is not None and d.executors is not None
            else None
        )
        boundary = d.first_after_reconfig or (
            d_config is not None and config is not None and d_config != config
        )
        if boundary and current:
            epochs.append(current)
            current = []
        current.append(d)
        if d_config is not None:
            config = d_config
    if current:
        epochs.append(current)
    return epochs


def _epoch_summary(
    index: int, decomps: Sequence[TraceDecomposition]
) -> Epoch:
    interval: Optional[float] = None
    executors: Optional[int] = None
    for d in decomps:
        if d.interval is not None and d.executors is not None:
            interval, executors = d.interval, d.executors
            break
    return Epoch(
        index=index,
        interval=interval,
        executors=executors,
        traces=len(decomps),
        complete=sum(1 for d in decomps if d.complete),
        dropped=sum(1 for d in decomps if d.dropped),
        partial=sum(1 for d in decomps if d.partial),
        segments=tuple(_segment_table(decomps)),
        critical=tuple(_critical_table(decomps)),
    )


def analyze_decompositions(
    decomps: Sequence[TraceDecomposition],
) -> DelayBreakdown:
    epoch_lists = split_epochs(decomps)
    return DelayBreakdown(
        traces=len(decomps),
        complete=sum(1 for d in decomps if d.complete),
        dropped=sum(1 for d in decomps if d.dropped),
        partial=sum(1 for d in decomps if d.partial),
        max_tiling_residual=max(
            (abs(d.residual) for d in decomps if d.complete), default=0.0
        ),
        segments=tuple(_segment_table(decomps)),
        critical=tuple(_critical_table(decomps)),
        epochs=tuple(
            _epoch_summary(i + 1, ds) for i, ds in enumerate(epoch_lists)
        ),
    )


def analyze_spans(spans: Sequence[Span]) -> DelayBreakdown:
    """One-call entry: group, decompose, and aggregate a span store."""
    return analyze_decompositions(decompose_spans(spans))


# -- oracle cross-check ------------------------------------------------------


@dataclass(frozen=True)
class OracleAgreement:
    """Trace-side decomposition vs. the batch-side steady-state oracle."""

    expected: float
    """Mean per-trace ``ingest/2 + queue + schedule + execute``."""
    actual: float
    """Mean observed end-to-end delay of the matched batches."""
    tolerance: float
    samples: int

    @property
    def ok(self) -> bool:
        return self.samples == 0 or abs(
            self.expected - self.actual
        ) <= self.tolerance

    def to_dict(self) -> Dict[str, object]:
        return {
            "expected": self.expected,
            "actual": self.actual,
            "tolerance": self.tolerance,
            "samples": self.samples,
            "ok": self.ok,
        }


def steady_state_agreement(
    decomps: Sequence[TraceDecomposition],
    batches: Sequence,
    rel_tol: float = 0.15,
) -> OracleAgreement:
    """Check the trace decomposition against the steady-state identity.

    Matches complete, non-reconfig decompositions to ``BatchInfo``
    records by batch index and compares the mean per-trace expected
    delay (``ingest/2 + queue + schedule + execute``) to the mean
    observed end-to-end delay, with the same relative tolerance the
    batch-side oracle uses (fraction of the mean interval).
    """
    by_index = {b.batch_index: b for b in batches}
    expected_sum = actual_sum = interval_sum = 0.0
    n = 0
    for d in decomps:
        if not d.complete or d.first_after_reconfig or d.batch_index is None:
            continue
        b = by_index.get(d.batch_index)
        if b is None or b.records <= 0:
            continue
        expected_sum += d.expected_delay
        actual_sum += b.end_to_end_delay
        interval_sum += b.interval
        n += 1
    if n == 0:
        return OracleAgreement(
            expected=0.0, actual=0.0, tolerance=0.0, samples=0
        )
    return OracleAgreement(
        expected=expected_sum / n,
        actual=actual_sum / n,
        tolerance=rel_tol * interval_sum / n,
        samples=n,
    )


# -- rendering ---------------------------------------------------------------


def render_breakdown(breakdown: DelayBreakdown) -> str:
    """Terminal table: where the delay went, per epoch."""
    lines: List[str] = []
    lines.append(
        f"{breakdown.traces} batch traces analyzed "
        f"({breakdown.complete} complete, {breakdown.dropped} dropped, "
        f"{breakdown.partial} partial); max tiling residual "
        f"{breakdown.max_tiling_residual:.2e}s"
    )
    for epoch in breakdown.epochs:
        config = (
            f"interval={epoch.interval:.2f}s x {epoch.executors} executors"
            if epoch.interval is not None and epoch.executors is not None
            else "config unknown"
        )
        lines.append(
            f"epoch {epoch.index}: {config}, {epoch.traces} batches "
            f"({epoch.complete} complete)"
        )
        lines.append("  segment     total(s)    share   mean(s)")
        for s in epoch.segments:
            lines.append(
                f"  {s.name:<10}{s.total:>10.3f}  {s.share:>6.1%}"
                f"  {s.mean:>8.3f}"
            )
        top = ", ".join(
            f"{s.name} {s.share:.0%}" for s in epoch.critical[:3]
        )
        lines.append(f"  critical-path time: {top or '(none)'}")
    return "\n".join(lines)
