"""Telemetry exporters: JSONL traces, Prometheus text, CLI renderings.

Three consumption paths for the same data:

* **JSONL** — one span per line, sorted keys, floats via ``repr``; the
  machine-readable archive format (``repro trace --out``) with an exact
  parse round-trip (:func:`parse_jsonl_spans`);
* **Prometheus text exposition** — a point-in-time snapshot of the
  metrics registry in the v0.0.4 text format, scrapeable as-is;
* **human renderings** — an indented per-trace timeline and a metrics
  summary table for terminal use.
"""

from __future__ import annotations

import json
import re
from typing import Dict, Iterable, List, Optional, Sequence

from .registry import (
    Counter,
    Gauge,
    Histogram,
    HistogramFamily,
    MetricFamily,
    MetricsRegistry,
)
from .span import Span

# -- JSONL trace export ------------------------------------------------------


def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """One JSON object per line, in span-creation order."""
    return "\n".join(
        json.dumps(s.to_dict(), sort_keys=True) for s in spans
    )


def parse_jsonl_spans(text: str) -> List[Span]:
    """Parse :func:`spans_to_jsonl` output back into spans."""
    spans: List[Span] = []
    for i, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            spans.append(Span.from_dict(json.loads(line)))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed span on line {i}: {exc}") from exc
    return spans


def save_spans(spans: Iterable[Span], path: str) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(spans_to_jsonl(spans) + "\n")
    return path


# -- Chrome Trace Event JSON (Perfetto / chrome://tracing) -------------------


def chrome_trace_json(spans: Sequence[Span]) -> str:
    """Chrome Trace Event JSON — load in Perfetto or chrome://tracing.

    One virtual thread per trace (so each batch renders as its own
    lane), named via ``thread_name`` metadata events.  Finished spans
    become complete (``X``) events with microsecond timestamps, spans
    still open at export time become unpaired begin (``B``) events, and
    span events (chaos injections, queue drops) become thread-scoped
    instant (``i``) events.  Output is byte-deterministic for a given
    span sequence: insertion-ordered events, sorted keys, compact
    separators.
    """
    tids: Dict[str, int] = {}
    for s in spans:
        if s.trace_id not in tids:
            tids[s.trace_id] = len(tids)
    events: List[Dict[str, object]] = [
        {
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "name": "thread_name",
            "args": {"name": trace_id},
        }
        for trace_id, tid in tids.items()
    ]
    for s in spans:
        tid = tids[s.trace_id]
        args: Dict[str, object] = dict(s.attributes)
        args["spanId"] = s.span_id
        if s.parent_id is not None:
            args["parentId"] = s.parent_id
        event: Dict[str, object] = {
            "ph": "X" if s.finished else "B",
            "pid": 0,
            "tid": tid,
            "name": s.name,
            "cat": "batch",
            "ts": s.start * 1e6,
            "args": args,
        }
        if s.finished:
            event["dur"] = s.duration * 1e6
        events.append(event)
        for ev in s.events:
            events.append({
                "ph": "i",
                "pid": 0,
                "tid": tid,
                "name": ev.name,
                "cat": "event",
                "s": "t",
                "ts": ev.time * 1e6,
                "args": dict(ev.attributes),
            })
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def save_chrome_trace(spans: Sequence[Span], path: str) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(chrome_trace_json(spans) + "\n")
    return path


# -- folded stacks (flamegraph text) -----------------------------------------


def folded_stacks(spans: Sequence[Span]) -> str:
    """Folded-stack flamegraph text: ``root;child;leaf <self-µs>``.

    Each finished span contributes its *self* time (duration minus its
    finished children) in integer microseconds to the stack of names
    from its trace root down; identical stacks aggregate across traces.
    Lines are sorted lexicographically, so output is byte-deterministic.
    Unfinished spans carry no duration and are skipped.  Feed the result
    to any flamegraph renderer (e.g. ``flamegraph.pl`` or speedscope).
    """
    by_id = {s.span_id: s for s in spans}
    child_sum: Dict[int, float] = {}
    for s in spans:
        if s.parent_id is not None and s.finished:
            child_sum[s.parent_id] = (
                child_sum.get(s.parent_id, 0.0) + s.duration
            )
    agg: Dict[str, int] = {}
    for s in spans:
        if not s.finished:
            continue
        names = [s.name]
        parent_id = s.parent_id
        while parent_id is not None:
            parent = by_id.get(parent_id)
            if parent is None:
                break
            names.append(parent.name)
            parent_id = parent.parent_id
        stack = ";".join(reversed(names))
        self_time = max(0.0, s.duration - child_sum.get(s.span_id, 0.0))
        agg[stack] = agg.get(stack, 0) + int(round(self_time * 1e6))
    return "\n".join(
        f"{stack} {value}" for stack, value in sorted(agg.items())
    )


def save_folded(spans: Sequence[Span], path: str) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(folded_stacks(spans) + "\n")
    return path


# -- Prometheus text exposition ----------------------------------------------


def _fmt(value: float) -> str:
    """Prometheus sample value: integers without a trailing .0."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def escape_label_value(value: str) -> str:
    """Escape a label value per the text-exposition rules.

    Backslash, double quote, and line feed are the only characters the
    format escapes (``\\\\``, ``\\"``, ``\\n``); everything else passes
    through verbatim.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def escape_help_text(text: str) -> str:
    """Escape HELP text: backslash and line feed only (quotes are legal)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def label_fragment(
    labelnames: Sequence[str],
    values: Sequence[str],
    extra: Optional[str] = None,
) -> str:
    """``{k="v",…}`` sample-line fragment with escaped label values."""
    pairs = [
        f'{k}="{escape_label_value(v)}"'
        for k, v in zip(labelnames, values)
    ]
    if extra is not None:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}"


def _histogram_lines(
    name: str,
    hist: Histogram,
    lines: List[str],
    labelnames: Sequence[str] = (),
    values: Sequence[str] = (),
) -> None:
    """Bucket/sum/count samples for one histogram (child), labels first,
    ``le`` last, and the mandatory ``+Inf`` bucket always present."""
    cumulative = hist.cumulative_counts()
    for bound, count in zip(hist.bounds, cumulative):
        frag = label_fragment(
            labelnames, values, extra=f'le="{_fmt(bound)}"'
        )
        lines.append(f"{name}_bucket{frag} {count}")
    inf_frag = label_fragment(labelnames, values, extra='le="+Inf"')
    lines.append(f"{name}_bucket{inf_frag} {hist.count}")
    suffix_frag = label_fragment(labelnames, values) if labelnames else ""
    lines.append(f"{name}_sum{suffix_frag} {_fmt(hist.sum)}")
    lines.append(f"{name}_count{suffix_frag} {hist.count}")


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in Prometheus text exposition format v0.0.4.

    Labeled families render one ``HELP``/``TYPE`` pair followed by a
    sample per child, children sorted by label values (deterministic); a
    family with no children yet renders just its metadata lines.  An
    empty registry renders to the empty string — callers writing
    snapshot files should treat that as "nothing to export" rather than
    producing a zero-byte scrape file.
    """
    lines: List[str] = []
    for metric in registry.collect():
        name = metric.name  # type: ignore[attr-defined]
        help_text = escape_help_text(metric.help or name)  # type: ignore[attr-defined]
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {metric.kind}")  # type: ignore[attr-defined]
        if isinstance(metric, MetricFamily):
            for values, child in metric.children():
                if isinstance(metric, HistogramFamily):
                    _histogram_lines(
                        name, child, lines,  # type: ignore[arg-type]
                        labelnames=metric.labelnames, values=values,
                    )
                else:
                    frag = label_fragment(metric.labelnames, values)
                    lines.append(
                        f"{name}{frag} {_fmt(child.value)}"  # type: ignore[attr-defined]
                    )
        elif isinstance(metric, Histogram):
            _histogram_lines(name, metric, lines)
        elif isinstance(metric, (Counter, Gauge)):
            lines.append(f"{name} {_fmt(metric.value)}")
    return "\n".join(lines) + "\n" if lines else ""


#: A label value is a run of non-special characters and *valid* escape
#: sequences (``\\``, ``\"``, ``\n``); a stray backslash before anything
#: else makes the sample malformed.
_LABEL_VALUE = r'(?:[^"\\]|\\["\\n])*'
_SAMPLE_RE = re.compile(
    r"^[a-z_:][a-z0-9_:]*"
    r"(\{[a-zA-Z0-9_]+=\"" + _LABEL_VALUE + r"\""
    r"(,[a-zA-Z0-9_]+=\"" + _LABEL_VALUE + r"\")*\})? "
    r"[-+]?([0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|Inf|NaN)$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z0-9_]+)="((?:[^"\\]|\\.)*)"')
#: A fully-valid label value: plain characters and complete escape pairs.
#: Matched against the whole captured value (a lookahead-based stray-
#: backslash scan would wrongly flag the second half of ``\\\\``).
_LABEL_VALUE_OK_RE = re.compile(r'(?:[^\\]|\\["\\n])*\Z')


def validate_prometheus_text(text: str) -> List[str]:
    """Structural validity check on an exposition snapshot.

    Returns a list of problems (empty = valid): malformed sample lines,
    samples with no preceding ``# TYPE``, label values with invalid
    escape sequences, histograms missing their mandatory ``+Inf``
    bucket, non-monotone histogram buckets, and ``_count`` disagreeing
    with the ``+Inf`` bucket.  Histogram accounting is keyed per *child*
    (base name + labels excluding ``le``), so labeled families validate
    each label set independently.  An empty snapshot (no-op export of an
    empty registry) is valid.
    """
    problems: List[str] = []
    typed: Dict[str, str] = {}
    # Histogram series keyed per child: (base, sorted non-le label pairs).
    buckets: Dict[tuple, List[float]] = {}
    inf_bucket: Dict[tuple, float] = {}
    counts: Dict[tuple, float] = {}

    def _child_desc(key: tuple) -> str:
        base, pairs = key
        if not pairs:
            return base
        frag = ",".join(f'{k}="{v}"' for k, v in pairs)
        return f"{base}{{{frag}}}"

    for i, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                problems.append(f"line {i}: malformed TYPE line")
            else:
                typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            problems.append(f"line {i}: unknown comment directive")
            continue
        bad_escape = False
        pairs = []
        for m in _LABEL_PAIR_RE.finditer(line):
            if not _LABEL_VALUE_OK_RE.match(m.group(2)):
                problems.append(
                    f"line {i}: invalid escape sequence in label value "
                    f"{m.group(2)!r}"
                )
                bad_escape = True
            pairs.append((m.group(1), m.group(2)))
        if bad_escape:
            continue
        if not _SAMPLE_RE.match(line):
            problems.append(f"line {i}: malformed sample line: {line!r}")
            continue
        name = re.split(r"[{ ]", line, maxsplit=1)[0]
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in typed and base not in typed:
            problems.append(f"line {i}: sample {name!r} has no TYPE")
        value = float(line.rsplit(" ", 1)[1])
        child = (base, tuple(sorted(p for p in pairs if p[0] != "le")))
        if name.endswith("_bucket"):
            le = dict(pairs).get("le")
            if le is None:
                problems.append(f"line {i}: histogram bucket missing le label")
                continue
            if le == "+Inf":
                inf_bucket[child] = value
            else:
                buckets.setdefault(child, []).append(value)
        elif name.endswith("_count") and typed.get(base) == "histogram":
            counts[child] = value

    for child, series in buckets.items():
        desc = _child_desc(child)
        if any(b > a for a, b in zip(series[1:], series)):
            problems.append(f"{desc}: bucket counts not monotone")
        if child in inf_bucket and series and series[-1] > inf_bucket[child]:
            problems.append(f"{desc}: +Inf bucket below last finite bucket")
    # Every histogram child must emit its mandatory +Inf bucket — a
    # snapshot with finite buckets (or a _count) but no +Inf is
    # unscrapeable.
    for child in sorted(set(buckets) | set(counts)):
        if typed.get(child[0]) == "histogram" and child not in inf_bucket:
            problems.append(
                f"{_child_desc(child)}: histogram missing its +Inf bucket"
            )
    for child, n in counts.items():
        if child in inf_bucket and n != inf_bucket[child]:
            problems.append(
                f"{_child_desc(child)}: _count {n} disagrees with "
                f"+Inf bucket {inf_bucket[child]}"
            )
    return problems


# -- human renderings --------------------------------------------------------


def _render_span(
    span: Span,
    children_index: Dict[Optional[int], List[Span]],
    depth: int,
    lines: List[str],
) -> None:
    pad = "  " * depth
    end = "…" if span.end is None else f"{span.end:.3f}"
    lines.append(
        f"{pad}{span.name}  [{span.start:.3f} → {end}]"
        f"  ({span.duration:.3f}s)"
        + (f"  {span.attributes}" if span.attributes else "")
    )
    for ev in span.events:
        lines.append(f"{pad}  • {ev.name} @ {ev.time:.3f}  {ev.attributes}")
    for child in children_index.get(span.span_id, []):
        _render_span(child, children_index, depth + 1, lines)


def render_timeline(
    spans: Sequence[Span], last_n_traces: Optional[int] = None
) -> str:
    """Indented per-trace tree with durations and span events."""
    by_trace: Dict[str, List[Span]] = {}
    order: List[str] = []
    for s in spans:
        if s.trace_id not in by_trace:
            order.append(s.trace_id)
        by_trace.setdefault(s.trace_id, []).append(s)
    if last_n_traces is not None:
        order = order[-last_n_traces:]
    lines: List[str] = []
    for trace_id in order:
        trace_spans = by_trace[trace_id]
        children: Dict[Optional[int], List[Span]] = {}
        for s in trace_spans:
            children.setdefault(s.parent_id, []).append(s)
        lines.append(f"trace {trace_id}")
        for root in children.get(None, []):
            _render_span(root, children, 1, lines)
        lines.append("")
    return "\n".join(lines).rstrip("\n")


def _summary_line(name: str, metric: object) -> str:
    if isinstance(metric, Histogram):
        p50 = metric.quantile(0.50)
        p95 = metric.quantile(0.95)
        p99 = metric.quantile(0.99)
        mean = metric.sum / metric.count if metric.count else 0.0
        return (
            f"{name}: n={metric.count} mean={mean:.3f} "
            f"p50~{p50:.3f} p95~{p95:.3f} p99~{p99:.3f}"
        )
    return f"{name}: {_fmt(metric.value)}"  # type: ignore[attr-defined]


def render_metrics_summary(registry: MetricsRegistry) -> str:
    """Terminal-friendly summary: one line per metric (or family child)."""
    lines: List[str] = []
    for metric in registry.collect():
        if isinstance(metric, MetricFamily):
            if not len(metric):
                lines.append(f"{metric.name}: (no children)")
            for values, child in metric.children():
                frag = label_fragment(metric.labelnames, values)
                lines.append(_summary_line(f"{metric.name}{frag}", child))
            if metric.rejected:
                lines.append(
                    f"{metric.name}: {metric.rejected} label set(s) "
                    f"rejected over budget ({metric.max_children})"
                )
        else:
            lines.append(_summary_line(metric.name, metric))  # type: ignore[attr-defined]
    return "\n".join(lines)
