"""Declarative SLOs over the streaming telemetry.

An :class:`SLO` names an objective ("delay p95 stays under 60 s"), a
severity, and where its signal comes from; the :class:`SLOEvaluator`
consumes the listener's per-batch stream *incrementally* (it subscribes
like any other listener observer) and renders :class:`SLOVerdict` rows
on demand.  Verdicts carry the simulated time of first violation, so a
run report can say "breached its delay SLO at t=340 s" rather than just
"failed".

Supported objectives:

* ``delay_p95``          — end-to-end delay p95 over the run (seconds);
* ``stability_ratio``    — fraction of batches violating the paper's
  stability condition (processing time > interval);
* ``scheduling_delay_max`` — worst batch scheduling delay (seconds);
* ``recovery_time``      — worst per-fault time-to-recover against the
  chaos engine's firing log (seconds; ``inf`` when never recovered);
* ``counter_max``        — ceiling on a metrics-registry counter/gauge
  value (e.g. dropped batches), read at verdict time.

The evaluator is pure arithmetic over simulated timestamps — verdicts
are byte-deterministic for a given run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.streaming.metrics import BatchInfo, percentile

SEVERITIES = ("critical", "warning", "info")

OBJECTIVES = (
    "delay_p95",
    "stability_ratio",
    "scheduling_delay_max",
    "recovery_time",
    "counter_max",
)


@dataclass(frozen=True)
class SLO:
    """One service-level objective: a named threshold on a run signal."""

    name: str
    objective: str
    threshold: float
    severity: str = "warning"
    description: str = ""
    metric: str = ""
    """Registry metric name, only for ``counter_max`` objectives."""

    def __post_init__(self) -> None:
        if self.objective not in OBJECTIVES:
            raise ValueError(
                f"unknown objective {self.objective!r}; expected one of "
                f"{OBJECTIVES}"
            )
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r}; expected one of "
                f"{SEVERITIES}"
            )
        if self.threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {self.threshold}")
        if self.objective == "counter_max" and not self.metric:
            raise ValueError("counter_max SLOs need a registry metric name")

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "objective": self.objective,
            "threshold": self.threshold,
            "severity": self.severity,
            "description": self.description,
            "metric": self.metric,
        }


@dataclass(frozen=True)
class SLOVerdict:
    """One SLO judged against one run."""

    slo: SLO
    value: float
    passed: bool
    violated_at: Optional[float] = None
    """Simulated time the running signal first crossed the threshold
    (None when the SLO held throughout)."""
    detail: str = ""

    @property
    def severity(self) -> str:
        return self.slo.severity

    def to_dict(self) -> Dict[str, object]:
        return {
            "slo": self.slo.name,
            "objective": self.slo.objective,
            "severity": self.slo.severity,
            "threshold": self.slo.threshold,
            "value": None if not math.isfinite(self.value) else self.value,
            "passed": self.passed,
            "violatedAt": self.violated_at,
            "detail": self.detail,
        }


def default_slos(
    delay_p95: float = 120.0,
    stability_ratio: float = 0.65,
    scheduling_delay_max: float = 240.0,
    recovery_time: float = 600.0,
    dropped_batches: float = 500.0,
) -> List[SLO]:
    """The stock objective set for judging a NoStop run.

    Critical thresholds are sized for an *optimization* run under chaos:
    SPSA deliberately probes bad configurations and the chaos engine
    deliberately breaks the substrate, so tails are wide by design; the
    critical line is "the run never left the rails" (bounded tails, every
    fault recovered, no mass data loss), while the tighter steady-state
    expectations ride along at warning severity.
    """
    return [
        SLO(
            name="delay-p95",
            objective="delay_p95",
            threshold=delay_p95,
            severity="critical",
            description="end-to-end delay p95 stays bounded over the run",
        ),
        SLO(
            name="delay-p95-steady",
            objective="delay_p95",
            threshold=delay_p95 / 2.0,
            severity="warning",
            description="steady-state expectation for the delay tail",
        ),
        SLO(
            name="stability-ratio",
            objective="stability_ratio",
            threshold=stability_ratio,
            severity="critical",
            description=(
                "fraction of batches violating processing <= interval"
            ),
        ),
        SLO(
            name="stability-ratio-steady",
            objective="stability_ratio",
            threshold=stability_ratio / 2.0,
            severity="warning",
            description="steady-state expectation for stability violations",
        ),
        SLO(
            name="sched-delay-ceiling",
            objective="scheduling_delay_max",
            threshold=scheduling_delay_max,
            severity="critical",
            description="no batch waits longer than this to start",
        ),
        SLO(
            name="recovery-time",
            objective="recovery_time",
            threshold=recovery_time,
            severity="critical",
            description="every injected fault recovers within this window",
        ),
        SLO(
            name="no-mass-data-loss",
            objective="counter_max",
            threshold=dropped_batches,
            severity="critical",
            metric="repro_streaming_batches_dropped_total",
            description="bounded-queue sheds stay below a mass-loss level",
        ),
    ]


class SLOEvaluator:
    """Incremental SLO evaluation over the listener's batch stream.

    Subscribe via :meth:`repro.streaming.listener.StreamingListener.watch`
    (or call :meth:`observe_batch` directly); running state is O(batches)
    only for the exact-percentile signal, everything else is counters.
    First-violation times are detected *as the stream arrives*, i.e. at
    the batch whose completion pushed the running statistic over the
    threshold — not retro-fitted after the run.
    """

    def __init__(self, slos: Optional[Sequence[SLO]] = None) -> None:
        self.slos: List[SLO] = list(slos) if slos is not None else default_slos()
        names = [s.name for s in self.slos]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names in spec: {names}")
        self._delays: List[float] = []
        self._batches = 0
        self._unstable = 0
        self._sched_max = 0.0
        #: slo name -> first simulated violation time
        self._violated_at: Dict[str, float] = {}

    # -- streaming interface -------------------------------------------------

    def observe_batch(self, info: BatchInfo) -> None:
        """Fold one completed batch into the running signals."""
        now = info.processing_end
        self._batches += 1
        self._delays.append(info.end_to_end_delay)
        if not info.stable:
            self._unstable += 1
        self._sched_max = max(self._sched_max, info.scheduling_delay)

        for slo in self.slos:
            if slo.name in self._violated_at:
                continue
            value = self._running_value(slo)
            if value is not None and value > slo.threshold:
                self._violated_at[slo.name] = now

    def _running_value(self, slo: SLO) -> Optional[float]:
        if slo.objective == "delay_p95":
            return percentile(self._delays, 0.95) if self._delays else None
        if slo.objective == "stability_ratio":
            return self._unstable / self._batches if self._batches else None
        if slo.objective == "scheduling_delay_max":
            return self._sched_max if self._batches else None
        return None  # recovery_time / counter_max are end-of-run signals

    # -- verdicts ------------------------------------------------------------

    def verdicts(
        self,
        fault_mttrs: Optional[Sequence[Tuple[str, float]]] = None,
        registry=None,
    ) -> List[SLOVerdict]:
        """Judge every SLO against the stream observed so far.

        ``fault_mttrs`` supplies ``(fault_name, mttr_seconds)`` pairs for
        the ``recovery_time`` objective (from
        :func:`repro.analysis.chaos.time_to_recover` over the chaos
        engine's firing log); ``registry`` supplies the metrics registry
        for ``counter_max`` objectives.
        """
        out: List[SLOVerdict] = []
        for slo in self.slos:
            value, detail = self._final_value(slo, fault_mttrs, registry)
            if value is None:
                out.append(SLOVerdict(
                    slo=slo, value=0.0, passed=True,
                    detail="no signal observed",
                ))
                continue
            passed = value <= slo.threshold
            out.append(SLOVerdict(
                slo=slo,
                value=value,
                passed=passed,
                violated_at=self._violated_at.get(slo.name),
                detail=detail,
            ))
        return out

    def _final_value(
        self,
        slo: SLO,
        fault_mttrs: Optional[Sequence[Tuple[str, float]]],
        registry,
    ) -> Tuple[Optional[float], str]:
        if slo.objective == "recovery_time":
            if not fault_mttrs:
                return None, ""
            worst_name, worst = max(fault_mttrs, key=lambda p: p[1])
            detail = (
                f"worst fault: {worst_name}"
                if math.isfinite(worst)
                else f"{worst_name} never re-stabilized"
            )
            return worst, detail
        if slo.objective == "counter_max":
            if registry is None:
                return None, ""
            metric = registry.get(slo.metric)
            if metric is None:
                return None, f"metric {slo.metric} not registered"
            return float(metric.value), slo.metric
        value = self._running_value(slo)
        detail = f"over {self._batches} batches"
        return value, detail


def worst_breaches(verdicts: Sequence[SLOVerdict]) -> List[SLOVerdict]:
    """Failed verdicts, most severe first (stable order within severity)."""
    order = {sev: i for i, sev in enumerate(SEVERITIES)}
    failed = [v for v in verdicts if not v.passed]
    return sorted(failed, key=lambda v: order[v.severity])


def has_critical_breach(verdicts: Sequence[SLOVerdict]) -> bool:
    return any(not v.passed and v.severity == "critical" for v in verdicts)
