"""Self-profiler: where did the time go?

Two complementary attributions:

* **Simulated time per pipeline component** — read off the existing
  batch-lifecycle spans (no new instrumentation): ``ingest.kafka`` /
  ``ingest.blocks`` / ``queue`` / ``schedule`` / ``execute`` leaf spans
  are summed per name.  Because ``schedule`` + ``execute`` tile each
  job's run (DESIGN.md §10), their totals sum exactly to the run's total
  batch processing time — the invariant the run report asserts.
* **Wall-clock time per subsystem** — a tiny section profiler
  (:class:`WallClockProfiler`) for the host process itself: the report
  CLI wraps its build/run/judge/render stages in ``section(...)`` blocks
  to show where *real* seconds went.  The clock is injectable, so tests
  are deterministic, and wall-clock numbers are never embedded in
  byte-deterministic artifacts.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .span import Span

#: The leaf span names that partition a batch's simulated lifecycle.
#: ``ingest`` and ``batch`` are parents of these and excluded to avoid
#: double counting; ``task`` spans (opt-in detail) subdivide ``execute``.
COMPONENT_SPANS = (
    "ingest.kafka",
    "ingest.blocks",
    "queue",
    "schedule",
    "execute",
)

#: Components whose durations tile the engine's reported processing time.
PROCESSING_SPANS = ("schedule", "execute")


@dataclass(frozen=True)
class ComponentTime:
    """Aggregate simulated time attributed to one component."""

    name: str
    total: float
    count: int
    mean: float
    max: float
    share: float
    """Fraction of the summed component time (0 when the total is 0)."""

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "total": self.total,
            "count": self.count,
            "mean": self.mean,
            "max": self.max,
            "share": self.share,
        }


@dataclass(frozen=True)
class SpanProfile:
    """Per-component attribution of one run's span store."""

    components: Tuple[ComponentTime, ...]
    processing_total: float
    """Sum of schedule+execute span time == total batch processing time."""
    spans_profiled: int
    spans_skipped: int
    """Unfinished or non-component spans left out of the attribution."""

    def hotspots(self, n: int = 5) -> List[ComponentTime]:
        """Top-``n`` components by total simulated time."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        return sorted(
            self.components, key=lambda c: (-c.total, c.name)
        )[:n]

    def component(self, name: str) -> Optional[ComponentTime]:
        for c in self.components:
            if c.name == name:
                return c
        return None

    def to_dict(self) -> Dict[str, object]:
        return {
            "components": [c.to_dict() for c in self.components],
            "processingTotal": self.processing_total,
            "spansProfiled": self.spans_profiled,
            "spansSkipped": self.spans_skipped,
        }


def profile_spans(
    spans: Iterable[Span],
    component_names: Sequence[str] = COMPONENT_SPANS,
) -> SpanProfile:
    """Attribute simulated time to pipeline components from a span store.

    Only finished spans whose name is in ``component_names`` count;
    everything else (roots, the ``ingest`` parent, task-detail spans,
    unfinished spans from an interrupted run) is tallied as skipped.
    """
    totals: Dict[str, List[float]] = {name: [] for name in component_names}
    profiled = skipped = 0
    for span in spans:
        if span.name not in totals or not span.finished:
            skipped += 1
            continue
        totals[span.name].append(span.duration)
        profiled += 1

    grand_total = sum(sum(v) for v in totals.values())
    components = []
    for name in component_names:
        durations = totals[name]
        total = sum(durations)
        components.append(ComponentTime(
            name=name,
            total=total,
            count=len(durations),
            mean=total / len(durations) if durations else 0.0,
            max=max(durations) if durations else 0.0,
            share=total / grand_total if grand_total > 0 else 0.0,
        ))
    processing_total = sum(
        c.total for c in components if c.name in PROCESSING_SPANS
    )
    return SpanProfile(
        components=tuple(components),
        processing_total=processing_total,
        spans_profiled=profiled,
        spans_skipped=skipped,
    )


def render_hotspots(profile: SpanProfile, n: int = 5) -> str:
    """Terminal table of the top-``n`` simulated-time hotspots."""
    lines = [
        f"{'component':<14} {'total (s)':>12} {'count':>7} "
        f"{'mean (s)':>10} {'max (s)':>10} {'share':>7}"
    ]
    for c in profile.hotspots(n):
        lines.append(
            f"{c.name:<14} {c.total:>12.3f} {c.count:>7d} "
            f"{c.mean:>10.3f} {c.max:>10.3f} {c.share:>6.1%}"
        )
    lines.append(
        f"{'(processing)':<14} {profile.processing_total:>12.3f}"
        f"   = schedule + execute"
    )
    return "\n".join(lines)


class WallClockProfiler:
    """Nested wall-clock sections for the host process.

    ``clock`` defaults to :func:`time.perf_counter`; inject a fake for
    deterministic tests.  Sections with the same name accumulate.
    """

    # Timing clock: measures the harness, never a simulated result.
    def __init__(
        self, clock: Callable[[], float] = time.perf_counter  # det: allow-wallclock
    ) -> None:
        self._clock = clock
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}
        self._order: List[str] = []

    @contextmanager
    def section(self, name: str):
        start = self._clock()
        try:
            yield
        finally:
            elapsed = self._clock() - start
            if name not in self._totals:
                self._totals[name] = 0.0
                self._counts[name] = 0
                self._order.append(name)
            self._totals[name] += elapsed
            self._counts[name] += 1

    def totals(self) -> List[Tuple[str, float, int]]:
        """(section, seconds, entries) in first-entered order."""
        return [
            (name, self._totals[name], self._counts[name])
            for name in self._order
        ]

    def render(self) -> str:
        rows = self.totals()
        if not rows:
            return "(no wall-clock sections recorded)"
        width = max(len(name) for name, _, _ in rows)
        return "\n".join(
            f"{name:<{width}}  {seconds:>9.3f}s  x{count}"
            for name, seconds, count in rows
        )
