"""SPSA decision audit trail.

Every configuration change NoStop makes should be explainable post-hoc:
*which* perturbation Δ_k was drawn, *what* both probes measured, *what*
gradient estimate followed, *which* gains scaled the step, *where* the
box projection clipped, and *when* the pause / resume / reset rules
fired.  The trail records exactly those quantities per optimization
round, and :meth:`AuditTrail.replay` recomputes the SPSA arithmetic from
the recorded inputs to prove the log is faithful to the optimizer's
actual steps (the acceptance check of ISSUE 2).

Records are plain tuples-of-floats dataclasses — JSONL-serializable,
numpy-free on the wire — so a trail written by ``repro trace`` can be
audited by any external tool.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

#: Absolute tolerance for replay comparisons; the trail stores full
#: float64 reprs so replay error is pure arithmetic noise.
REPLAY_ATOL = 1e-9


@dataclass(frozen=True)
class SPSADecision:
    """One SPSA iteration (or guarded non-iteration), fully explained."""

    round_index: int
    k: int
    """Optimizer iteration counter *after* this round (unchanged when
    guarded)."""
    sim_time: float
    rho: float
    a_k: float
    c_k: float
    theta: Tuple[float, ...]
    """Estimate the round started from (scaled space)."""
    delta: Tuple[float, ...]
    theta_plus: Tuple[float, ...]
    theta_minus: Tuple[float, ...]
    probe_clipped: Tuple[bool, ...]
    """Per axis: the box projection moved θ⁺ or θ⁻ off θ ± c_k Δ."""
    y_plus: float
    y_minus: float
    gradient: Optional[Tuple[float, ...]]
    """ĝ_k as the optimizer computed it; None when the round was guarded
    (no SPSA update consumed the measurements)."""
    theta_next: Tuple[float, ...]
    step_clipped: Tuple[bool, ...]
    """Per axis: the projection clipped θ_k − a_k ĝ_k."""
    guarded: bool = False
    plus_corrupted: bool = False
    minus_corrupted: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "type": "decision",
            "round": self.round_index,
            "k": self.k,
            "simTime": self.sim_time,
            "rho": self.rho,
            "aK": self.a_k,
            "cK": self.c_k,
            "theta": list(self.theta),
            "delta": list(self.delta),
            "thetaPlus": list(self.theta_plus),
            "thetaMinus": list(self.theta_minus),
            "probeClipped": list(self.probe_clipped),
            "yPlus": self.y_plus,
            "yMinus": self.y_minus,
            "gradient": None if self.gradient is None else list(self.gradient),
            "thetaNext": list(self.theta_next),
            "stepClipped": list(self.step_clipped),
            "guarded": self.guarded,
            "plusCorrupted": self.plus_corrupted,
            "minusCorrupted": self.minus_corrupted,
        }

    @staticmethod
    def from_dict(d: Dict[str, object]) -> "SPSADecision":
        return SPSADecision(
            round_index=int(d["round"]),  # type: ignore[arg-type]
            k=int(d["k"]),  # type: ignore[arg-type]
            sim_time=float(d["simTime"]),  # type: ignore[arg-type]
            rho=float(d["rho"]),  # type: ignore[arg-type]
            a_k=float(d["aK"]),  # type: ignore[arg-type]
            c_k=float(d["cK"]),  # type: ignore[arg-type]
            theta=tuple(d["theta"]),  # type: ignore[arg-type]
            delta=tuple(d["delta"]),  # type: ignore[arg-type]
            theta_plus=tuple(d["thetaPlus"]),  # type: ignore[arg-type]
            theta_minus=tuple(d["thetaMinus"]),  # type: ignore[arg-type]
            probe_clipped=tuple(bool(v) for v in d["probeClipped"]),  # type: ignore[union-attr]
            y_plus=float(d["yPlus"]),  # type: ignore[arg-type]
            y_minus=float(d["yMinus"]),  # type: ignore[arg-type]
            gradient=(
                None if d.get("gradient") is None
                else tuple(d["gradient"])  # type: ignore[arg-type]
            ),
            theta_next=tuple(d["thetaNext"]),  # type: ignore[arg-type]
            step_clipped=tuple(bool(v) for v in d["stepClipped"]),  # type: ignore[union-attr]
            guarded=bool(d.get("guarded", False)),
            plus_corrupted=bool(d.get("plusCorrupted", False)),
            minus_corrupted=bool(d.get("minusCorrupted", False)),
        )


@dataclass(frozen=True)
class RuleFiring:
    """A §5 operational rule taking effect, or a checkpoint recovery."""

    kind: str
    """``"pause"``, ``"resume"``, ``"reset"``, or ``"restore"``
    (controller rebuilt from a checkpoint after a driver failure)."""
    round_index: int
    sim_time: float
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "type": "rule",
            "kind": self.kind,
            "round": self.round_index,
            "simTime": self.sim_time,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class ReplayMismatch:
    """One discrepancy found while replaying the trail."""

    round_index: int
    what: str
    recorded: Tuple[float, ...]
    recomputed: Tuple[float, ...]


class AuditTrail:
    """Accumulates decisions and rule firings for one controller run."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.decisions: List[SPSADecision] = []
        self.firings: List[RuleFiring] = []

    def record_decision(self, decision: SPSADecision) -> None:
        if self.enabled:
            self.decisions.append(decision)

    def record_firing(
        self, kind: str, round_index: int, sim_time: float, detail: str = ""
    ) -> None:
        if not self.enabled:
            return
        if kind not in ("pause", "resume", "reset", "restore"):
            raise ValueError(f"unknown rule kind {kind!r}")
        self.firings.append(
            RuleFiring(
                kind=kind, round_index=round_index,
                sim_time=sim_time, detail=detail,
            )
        )

    def __len__(self) -> int:
        return len(self.decisions)

    # -- replay --------------------------------------------------------------

    def replay(self, box=None) -> List[ReplayMismatch]:
        """Recompute every recorded step from its inputs; return mismatches.

        For each non-guarded decision the gradient is rebuilt as
        ``(y⁺ − y⁻) / (2 c_k Δ)`` and compared elementwise against the
        recorded estimate; with ``box`` supplied (the optimizer's scaled
        :class:`~repro.core.bounds.Box`), the next estimate
        ``project(θ − a_k ĝ)`` is verified too.  An empty list means the
        trail exactly explains the optimizer's trajectory.
        """
        mismatches: List[ReplayMismatch] = []
        for d in self.decisions:
            if d.guarded:
                # A guarded round must not have moved the estimate.
                if any(
                    abs(a - b) > REPLAY_ATOL for a, b in zip(d.theta, d.theta_next)
                ):
                    mismatches.append(
                        ReplayMismatch(d.round_index, "guarded_moved",
                                       d.theta, d.theta_next)
                    )
                continue
            if d.gradient is None:
                mismatches.append(
                    ReplayMismatch(d.round_index, "missing_gradient", (), ())
                )
                continue
            recomputed = tuple(
                (d.y_plus - d.y_minus) / (2.0 * d.c_k * dv) for dv in d.delta
            )
            if any(
                abs(a - b) > REPLAY_ATOL for a, b in zip(d.gradient, recomputed)
            ):
                mismatches.append(
                    ReplayMismatch(d.round_index, "gradient",
                                   d.gradient, recomputed)
                )
                continue
            if box is not None:
                stepped = tuple(
                    t - d.a_k * g for t, g in zip(d.theta, recomputed)
                )
                projected = tuple(float(v) for v in box.project(stepped))
                if any(
                    abs(a - b) > REPLAY_ATOL
                    for a, b in zip(d.theta_next, projected)
                ):
                    mismatches.append(
                        ReplayMismatch(d.round_index, "theta_next",
                                       d.theta_next, projected)
                    )
        return mismatches

    # -- serialization -------------------------------------------------------

    def to_jsonl(self) -> str:
        """Decisions and rule firings interleaved in round order."""
        entries = [d.to_dict() for d in self.decisions] + [
            f.to_dict() for f in self.firings
        ]
        entries.sort(key=lambda e: (e["round"], 0 if e["type"] == "decision" else 1))
        return "\n".join(json.dumps(e, sort_keys=True) for e in entries)

    @staticmethod
    def from_jsonl(text: str) -> "AuditTrail":
        trail = AuditTrail(enabled=True)
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            if payload.get("type") == "decision":
                trail.decisions.append(SPSADecision.from_dict(payload))
            elif payload.get("type") == "rule":
                trail.firings.append(
                    RuleFiring(
                        kind=str(payload["kind"]),
                        round_index=int(payload["round"]),
                        sim_time=float(payload["simTime"]),
                        detail=str(payload.get("detail", "")),
                    )
                )
            else:
                raise ValueError(f"unknown audit entry type in line: {line!r}")
        return trail

    def save(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl() + "\n")
        return path


def clipped_axes(
    requested: Sequence[float], applied: Sequence[float], atol: float = 1e-12
) -> Tuple[bool, ...]:
    """Per-axis flags: did projection move ``requested`` to ``applied``?"""
    return tuple(
        abs(float(r) - float(a)) > atol for r, a in zip(requested, applied)
    )
