"""Multi-window burn-rate alerting over the batch stream.

The classic SRE construction, transplanted to simulated time: an SLO
with target ``t`` (fraction of good batches) has an error budget
``1 - t``; the *burn rate* over a window is the observed bad fraction
divided by that budget.  A burn rate of 1 consumes the budget exactly at
the sustainable pace; 10 means ten times too fast.

Alerts require **two** windows to agree — a fast window (default 60
simulated seconds) so firing is prompt, and a slow window (default 600 s)
so a single straggler batch cannot page.  The alert resolves when the
fast window drops back under the threshold, and the alerter keeps a
deterministic, append-only log of every firing with the burn rates that
justified it.

Good/bad classification is pluggable per policy: stability (the paper's
``processing_time <= interval``) and delay-ceiling classifiers are
built in.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.streaming.metrics import BatchInfo

BatchClassifier = Callable[[BatchInfo], bool]
"""Returns True when the batch counts *against* the SLO (a "bad" batch)."""


def unstable_batch(info: BatchInfo) -> bool:
    """Bad = the paper's stability condition was violated."""
    return not info.stable


def delay_above(ceiling: float) -> BatchClassifier:
    """Bad = end-to-end delay exceeded ``ceiling`` seconds."""
    if ceiling <= 0:
        raise ValueError(f"ceiling must be positive, got {ceiling}")

    def classify(info: BatchInfo) -> bool:
        return info.end_to_end_delay > ceiling

    return classify


@dataclass(frozen=True)
class BurnRatePolicy:
    """One two-window burn-rate alerting rule."""

    name: str
    target: float
    """SLO target: fraction of batches that must be good (e.g. 0.9)."""
    classifier: BatchClassifier
    fast_window: float = 60.0
    slow_window: float = 600.0
    fast_burn: float = 6.0
    """Burn-rate threshold the fast window must exceed."""
    slow_burn: float = 3.0
    """Burn-rate threshold the slow window must exceed."""
    severity: str = "page"

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target}")
        if self.fast_window <= 0 or self.slow_window <= 0:
            raise ValueError("windows must be positive")
        if self.fast_window > self.slow_window:
            raise ValueError(
                f"fast window ({self.fast_window}s) must not exceed slow "
                f"window ({self.slow_window}s)"
            )
        if self.fast_burn <= 0 or self.slow_burn <= 0:
            raise ValueError("burn thresholds must be positive")

    @property
    def budget(self) -> float:
        return 1.0 - self.target


def default_policies(interval_hint: float = 10.0) -> List[BurnRatePolicy]:
    """Stock alerting rules: stability burn and delay-ceiling burn."""
    return [
        BurnRatePolicy(
            name="stability-burn",
            target=0.90,
            classifier=unstable_batch,
            severity="page",
        ),
        BurnRatePolicy(
            name="delay-burn",
            target=0.90,
            classifier=delay_above(6.0 * interval_hint),
            severity="ticket",
        ),
    ]


@dataclass
class Alert:
    """One firing of a burn-rate policy (append-only log entry)."""

    policy: str
    severity: str
    fired_at: float
    fast_burn: float
    slow_burn: float
    resolved_at: Optional[float] = None

    @property
    def active(self) -> bool:
        return self.resolved_at is None

    def to_dict(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "severity": self.severity,
            "firedAt": self.fired_at,
            "fastBurn": self.fast_burn,
            "slowBurn": self.slow_burn,
            "resolvedAt": self.resolved_at,
        }


class BurnRateAlerter:
    """Evaluates burn-rate policies incrementally over batch completions.

    One alerter carries any number of policies; each keeps independent
    per-window sample deques keyed by batch completion time.  At most one
    alert per policy is active at a time — re-crossings while active
    update nothing, so the log stays a clean fired/resolved history.
    """

    def __init__(self, policies: Optional[List[BurnRatePolicy]] = None) -> None:
        self.policies: List[BurnRatePolicy] = (
            list(policies) if policies is not None else default_policies()
        )
        names = [p.name for p in self.policies]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate policy names: {names}")
        #: policy name -> (fast deque, slow deque) of (time, bad) samples
        self._windows: Dict[str, Tuple[Deque, Deque]] = {
            p.name: (deque(), deque()) for p in self.policies
        }
        self._active: Dict[str, Alert] = {}
        self.log: List[Alert] = []

    @staticmethod
    def _burn(samples: Deque, budget: float) -> float:
        if not samples:
            return 0.0
        bad = sum(1 for _, is_bad in samples if is_bad)
        return (bad / len(samples)) / budget

    def observe_batch(self, info: BatchInfo) -> List[Alert]:
        """Fold one batch in; returns alerts newly fired by this batch."""
        now = info.processing_end
        fired: List[Alert] = []
        for policy in self.policies:
            fast, slow = self._windows[policy.name]
            is_bad = bool(policy.classifier(info))
            fast.append((now, is_bad))
            slow.append((now, is_bad))
            while fast and fast[0][0] < now - policy.fast_window:
                fast.popleft()
            while slow and slow[0][0] < now - policy.slow_window:
                slow.popleft()
            fast_burn = self._burn(fast, policy.budget)
            slow_burn = self._burn(slow, policy.budget)

            active = self._active.get(policy.name)
            if active is None:
                if fast_burn >= policy.fast_burn and slow_burn >= policy.slow_burn:
                    alert = Alert(
                        policy=policy.name,
                        severity=policy.severity,
                        fired_at=now,
                        fast_burn=fast_burn,
                        slow_burn=slow_burn,
                    )
                    self._active[policy.name] = alert
                    self.log.append(alert)
                    fired.append(alert)
            elif fast_burn < policy.fast_burn:
                active.resolved_at = now
                del self._active[policy.name]
        return fired

    def finish(self, now: float) -> None:
        """Resolve every still-active alert at end of run."""
        for alert in list(self._active.values()):
            alert.resolved_at = now
        self._active.clear()

    @property
    def active_alerts(self) -> List[Alert]:
        return [a for a in self.log if a.active]

    def alerts_between(self, start: float, end: float) -> List[Alert]:
        """Alerts whose active period overlaps ``[start, end]``."""
        out = []
        for a in self.log:
            resolved = a.resolved_at if a.resolved_at is not None else float("inf")
            if a.fired_at <= end and resolved >= start:
                out.append(a)
        return out
