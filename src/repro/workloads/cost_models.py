"""Per-workload cost models.

The DES derives task durations from these models; the constants are
calibrated so that each workload, fed at its paper rate band (Fig. 5),
reproduces the paper's qualitative shapes:

* streaming logistic regression at ~10k records/s is stable for batch
  intervals above ~10 s with ~10 executors (Fig. 2) and shows a U-shaped
  processing time over executor count with stability from ~10 executors
  (Fig. 3);
* ML workloads have variable per-batch iteration counts and hence noisy
  processing times; WordCount is the most stable; Page Analyze is complex
  but steady (§6.3).

Costs are in *core-seconds on a speed-1.0 node*; the scheduler divides by
node speed factors and multiplies I/O by disk penalties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class StageCost:
    """Cost structure of one stage, linear in the record count.

    Parameters
    ----------
    name:
        Stage label.
    compute_per_record:
        Core-seconds of compute per input record per iteration.
    io_per_record:
        Core-seconds of SSD I/O per record (HDD nodes pay a penalty).
    fixed_compute:
        Constant per-task compute floor, independent of record count
        (deserialization buffers, connection setup).
    """

    name: str
    compute_per_record: float
    io_per_record: float = 0.0
    fixed_compute: float = 0.0

    def __post_init__(self) -> None:
        if self.compute_per_record < 0 or self.io_per_record < 0:
            raise ValueError("per-record costs must be >= 0")
        if self.fixed_compute < 0:
            raise ValueError("fixed_compute must be >= 0")


@dataclass(frozen=True)
class IterationModel:
    """Distribution of per-batch iteration counts for convergence loops.

    Streaming ML models rerun their gradient stage until (near)
    convergence; "the batch processing time of an unfitted model usually
    takes longer than that of a fitted model" (§6.3).  We draw the count
    uniformly in ``[lo, hi]`` — ``lo == hi`` yields deterministic
    single-pass workloads like WordCount.
    """

    lo: int = 1
    hi: int = 1

    def __post_init__(self) -> None:
        if self.lo < 1 or self.hi < self.lo:
            raise ValueError(f"need 1 <= lo <= hi, got lo={self.lo}, hi={self.hi}")

    @property
    def mean(self) -> float:
        return (self.lo + self.hi) / 2.0

    def draw(self, rng: np.random.Generator) -> int:
        if self.lo == self.hi:
            return self.lo
        return int(rng.integers(self.lo, self.hi + 1))


@dataclass(frozen=True)
class WorkloadCostModel:
    """Full cost description of a workload: stage chain + iteration law.

    ``iterated_stages`` names the stages that repeat per iteration
    (typically the gradient stage); the rest run once.
    """

    stages: Tuple[StageCost, ...]
    iterations: IterationModel = IterationModel()
    iterated_stages: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        names = [s.name for s in self.stages]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names: {names}")
        unknown = set(self.iterated_stages) - set(names)
        if unknown:
            raise ValueError(f"iterated_stages not in stage chain: {sorted(unknown)}")

    def mean_cost_per_record(self) -> float:
        """Expected total core-seconds per record (all stages, mean iters)."""
        total = 0.0
        for s in self.stages:
            reps = self.iterations.mean if s.name in self.iterated_stages else 1.0
            total += reps * (s.compute_per_record + s.io_per_record)
        return total


# --------------------------------------------------------------------------
# Calibrated models for the four paper workloads.
# --------------------------------------------------------------------------

#: Streaming Logistic Regression — iterative SGD over labeled points.
#: Calibrated so that at ~10k records/s with 10 executors the stability
#: crossover sits near a 10 s interval (Fig. 2) and the interval-slope of
#: processing time stays below 0.5 (proc time "increases slowly as the
#: batch interval grows"), which makes the crossover the minimum of the
#: paper's ρ-capped objective.
LOGISTIC_REGRESSION_COSTS = WorkloadCostModel(
    stages=(
        StageCost("parse", compute_per_record=3.0e-5),
        StageCost("gradient", compute_per_record=5.0e-5, fixed_compute=0.02),
        StageCost("update", compute_per_record=0.0, fixed_compute=0.05),
    ),
    iterations=IterationModel(lo=4, hi=7),
    iterated_stages=("gradient",),
)

#: Streaming Linear Regression — cheaper per record, fewer iterations,
#: fed an order of magnitude faster ([80k, 120k] records/s).
LINEAR_REGRESSION_COSTS = WorkloadCostModel(
    stages=(
        StageCost("parse", compute_per_record=4.0e-6),
        StageCost("gradient", compute_per_record=1.2e-5, fixed_compute=0.02),
        StageCost("update", compute_per_record=0.0, fixed_compute=0.05),
    ),
    iterations=IterationModel(lo=2, hi=4),
    iterated_stages=("gradient",),
)

#: WordCount — "a simple workload as it only requires two mapping/reducing
#: operations and has a fixed processing flow" (§6.3).
WORDCOUNT_COSTS = WorkloadCostModel(
    stages=(
        StageCost("map", compute_per_record=1.2e-5),
        StageCost("reduceByKey", compute_per_record=6.0e-6, io_per_record=1.5e-6),
    ),
)

#: Page (Log) Analyze — wash + several transformations + HDFS write-back;
#: complex but steady per-batch cost (§6.3).
PAGE_ANALYZE_COSTS = WorkloadCostModel(
    stages=(
        StageCost("wash", compute_per_record=5.0e-6),
        StageCost("analyze", compute_per_record=7.0e-6),
        StageCost("aggregate", compute_per_record=2.0e-6, io_per_record=1.0e-6),
        StageCost("hdfs_write", compute_per_record=5.0e-7, io_per_record=2.0e-6,
                  fixed_compute=0.05),
    ),
)
