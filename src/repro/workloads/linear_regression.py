"""Streaming Linear Regression workload.

Mirrors Spark MLlib's ``StreamingLinearRegressionWithSGD``: mini-batch
SGD on squared loss, model persisted across batches.  Lighter per record
than logistic regression and fed an order of magnitude faster in the
paper ([80k, 120k] records/s).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.datagen.records import LabeledPoint

from .base import Workload
from .cost_models import LINEAR_REGRESSION_COSTS, WorkloadCostModel


class StreamingLinearRegression(Workload):
    """Online least-squares regressor trained with mini-batch SGD."""

    name = "linear_regression"
    payload_kind = "regression_points"

    def __init__(
        self,
        dim: int = 10,
        step_size: float = 0.1,
        epochs: int = 3,
        partitions: int = 40,
        cost_model: WorkloadCostModel = LINEAR_REGRESSION_COSTS,
    ) -> None:
        super().__init__(cost_model, partitions=partitions)
        if dim < 1:
            raise ValueError("dim must be >= 1")
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        self.dim = dim
        self.step_size = step_size
        self.epochs = epochs
        self.weights = np.zeros(dim)
        self.batches_trained = 0

    def run_kernel(self, payloads: Sequence[LabeledPoint]) -> Dict[str, float]:
        """Train on one batch; returns mean-squared error on the batch."""
        if not payloads:
            return {"mse": float("nan"), "n": 0}
        x = np.array([p.features for p in payloads], dtype=float)
        y = np.array([p.label for p in payloads], dtype=float)
        if x.shape[1] != self.dim:
            raise ValueError(
                f"payload dimension {x.shape[1]} != model dimension {self.dim}"
            )
        n = len(y)
        for _ in range(self.epochs):
            resid = x @ self.weights - y
            grad = x.T @ resid / n
            self.weights -= self.step_size * grad
        resid = x @ self.weights - y
        self.batches_trained += 1
        return {"mse": float(np.mean(resid**2)), "n": n}

    def predict(self, features: Sequence[Sequence[float]]) -> np.ndarray:
        """Point predictions for a feature matrix."""
        return np.asarray(features, dtype=float) @ self.weights
