"""Workload interface.

A workload plays two roles in this reproduction:

1. **Job factory** for the simulator — :meth:`Workload.build_job` turns a
   micro-batch (a record count at a batch time) into a
   :class:`~repro.engine.job.BatchJob` whose task costs come from the
   workload's calibrated :class:`~repro.workloads.cost_models.WorkloadCostModel`.
2. **Real compute kernel** — :meth:`Workload.run_kernel` genuinely
   processes synthesized record payloads (trains a model, counts words,
   parses logs), so examples and tests can demonstrate end-to-end
   semantics beyond the cost model.

Both roles share the same stage structure, documented per workload.
"""

from __future__ import annotations

import abc
from typing import Any, List, Sequence

import numpy as np

from repro.engine.job import BatchJob
from repro.engine.stage import Stage
from repro.engine.task import TaskSpec

from .cost_models import WorkloadCostModel


class Workload(abc.ABC):
    """Base class for the paper's four streaming workloads."""

    #: Workload name used in experiment tables and rate-band lookups.
    name: str = ""
    #: Payload kind understood by :class:`repro.datagen.DataGenerator`.
    payload_kind: str = "text"

    def __init__(self, cost_model: WorkloadCostModel, partitions: int = 40) -> None:
        if partitions < 1:
            raise ValueError(f"partitions must be >= 1, got {partitions}")
        self.cost_model = cost_model
        self.partitions = partitions
        self._job_counter = 0

    # -- job factory --------------------------------------------------------

    def effective_records(self, records: int) -> int:
        """Records the job must actually *process* for this batch.

        Identity for plain workloads; windowed workloads override it to
        cover their window's worth of data (see
        :mod:`repro.workloads.windowed`).
        """
        return records

    def build_job(
        self,
        batch_time: float,
        records: int,
        rng: np.random.Generator,
    ) -> BatchJob:
        """Construct the batch job for ``records`` *newly arrived* records.

        Task costs are sized by :meth:`effective_records` (identity
        except for windowed workloads); records are split evenly across
        ``self.partitions`` tasks per stage (the direct Kafka stream
        gives one task per partition); iteration counts for
        convergence-loop stages are drawn from the cost model's
        iteration law.
        """
        if records < 0:
            raise ValueError(f"records must be >= 0, got {records}")
        cost_records = self.effective_records(records)
        iters = self.cost_model.iterations.draw(rng)
        stages: List[Stage] = []
        for sid, sc in enumerate(self.cost_model.stages):
            per_task, rem = divmod(cost_records, self.partitions)
            tasks = []
            for tid in range(self.partitions):
                n = per_task + (1 if tid < rem else 0)
                tasks.append(
                    TaskSpec(
                        task_id=tid,
                        records=n,
                        compute_cost=sc.fixed_compute / self.partitions
                        + n * sc.compute_per_record,
                        io_cost=n * sc.io_per_record,
                    )
                )
            stages.append(
                Stage(
                    stage_id=sid,
                    name=sc.name,
                    tasks=tasks,
                    iterations=iters if sc.name in self.cost_model.iterated_stages else 1,
                )
            )
        job = BatchJob(
            job_id=self._job_counter,
            batch_time=batch_time,
            records=records,
            stages=stages,
            workload=self.name,
        )
        self._job_counter += 1
        return job

    def expected_cost_per_record(self) -> float:
        """Mean core-seconds of work per record (for analytic baselines)."""
        return self.cost_model.mean_cost_per_record()

    # -- real computation -----------------------------------------------------

    @abc.abstractmethod
    def run_kernel(self, payloads: Sequence) -> Any:
        """Actually process ``payloads`` and return the workload's output."""


def records_per_task(records: int, partitions: int) -> List[int]:
    """Even split of ``records`` over ``partitions`` tasks (helper)."""
    if partitions < 1:
        raise ValueError("partitions must be >= 1")
    if records < 0:
        raise ValueError("records must be >= 0")
    base, rem = divmod(records, partitions)
    return [base + (1 if i < rem else 0) for i in range(partitions)]
