"""The paper's four evaluation workloads (§6.1).

Each workload is both a job factory for the simulator (calibrated cost
model → stage/task chain) and a real compute kernel (NumPy SGD trainers,
word counting, Nginx log analytics).
"""

from typing import Dict, Type

from .base import Workload, records_per_task
from .cost_models import (
    LINEAR_REGRESSION_COSTS,
    LOGISTIC_REGRESSION_COSTS,
    PAGE_ANALYZE_COSTS,
    WORDCOUNT_COSTS,
    IterationModel,
    StageCost,
    WorkloadCostModel,
)
from .linear_regression import StreamingLinearRegression
from .logistic_regression import StreamingLogisticRegression
from .page_analyze import AnalyzeResult, PageAnalyze, PageStats
from .windowed import WindowedWordCount
from .wordcount import WordCount

#: Registry of the paper's workloads by name.
WORKLOADS: Dict[str, Type[Workload]] = {
    StreamingLogisticRegression.name: StreamingLogisticRegression,
    StreamingLinearRegression.name: StreamingLinearRegression,
    WordCount.name: WordCount,
    PageAnalyze.name: PageAnalyze,
    WindowedWordCount.name: WindowedWordCount,
}


def make_workload(name: str, **kwargs) -> Workload:
    """Instantiate a paper workload by registry name."""
    try:
        cls = WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; expected one of {sorted(WORKLOADS)}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "AnalyzeResult",
    "IterationModel",
    "LINEAR_REGRESSION_COSTS",
    "LOGISTIC_REGRESSION_COSTS",
    "PAGE_ANALYZE_COSTS",
    "PageAnalyze",
    "PageStats",
    "StageCost",
    "StreamingLinearRegression",
    "StreamingLogisticRegression",
    "WORDCOUNT_COSTS",
    "WORKLOADS",
    "WindowedWordCount",
    "WordCount",
    "Workload",
    "WorkloadCostModel",
    "make_workload",
    "records_per_task",
]
