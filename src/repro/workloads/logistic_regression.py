"""Streaming Logistic Regression workload.

Mirrors Spark MLlib's ``StreamingLogisticRegressionWithSGD``: every batch
runs several SGD epochs over the batch's labeled points to update a
shared model.  The stage chain is parse → gradient (iterated) → update;
per-batch iteration counts vary, which makes this the noisiest workload
in the paper's Fig. 6.

The kernel is a genuine NumPy SGD implementation operating on
:class:`~repro.datagen.records.LabeledPoint` payloads.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.datagen.records import LabeledPoint

from .base import Workload
from .cost_models import LOGISTIC_REGRESSION_COSTS, WorkloadCostModel


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


class StreamingLogisticRegression(Workload):
    """Online binary classifier trained with mini-batch SGD."""

    name = "logistic_regression"
    payload_kind = "labeled_points"

    def __init__(
        self,
        dim: int = 10,
        step_size: float = 0.5,
        epochs: int = 5,
        partitions: int = 40,
        cost_model: WorkloadCostModel = LOGISTIC_REGRESSION_COSTS,
    ) -> None:
        super().__init__(cost_model, partitions=partitions)
        if dim < 1:
            raise ValueError("dim must be >= 1")
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        self.dim = dim
        self.step_size = step_size
        self.epochs = epochs
        self.weights = np.zeros(dim)
        self.batches_trained = 0

    def run_kernel(self, payloads: Sequence[LabeledPoint]) -> Dict[str, float]:
        """Train on one batch of labeled points; returns loss/accuracy.

        Updates the persistent model (streaming semantics: the model
        carries over between batches).
        """
        if not payloads:
            return {"loss": float("nan"), "accuracy": float("nan"), "n": 0}
        x = np.array([p.features for p in payloads], dtype=float)
        y = np.array([p.label for p in payloads], dtype=float)
        if x.shape[1] != self.dim:
            raise ValueError(
                f"payload dimension {x.shape[1]} != model dimension {self.dim}"
            )
        n = len(y)
        for _ in range(self.epochs):
            p = _sigmoid(x @ self.weights)
            grad = x.T @ (p - y) / n
            self.weights -= self.step_size * grad
        p = _sigmoid(x @ self.weights)
        eps = 1e-12
        loss = float(-np.mean(y * np.log(p + eps) + (1 - y) * np.log(1 - p + eps)))
        accuracy = float(np.mean((p > 0.5) == (y > 0.5)))
        self.batches_trained += 1
        return {"loss": loss, "accuracy": accuracy, "n": n}

    def predict(self, features: Sequence[Sequence[float]]) -> np.ndarray:
        """Class probabilities for a feature matrix."""
        x = np.asarray(features, dtype=float)
        return _sigmoid(x @ self.weights)
