"""WordCount workload.

The paper's CPU-intensive reference workload: "a simple workload as it
only requires two mapping/reducing operations and has a fixed processing
flow", giving it the most stable batch processing time (§6.3).  Stage
chain: map (tokenize) → reduceByKey (count aggregation with a small
shuffle I/O component).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Sequence

from .base import Workload
from .cost_models import WORDCOUNT_COSTS, WorkloadCostModel


class WordCount(Workload):
    """Classic streaming word count with running totals."""

    name = "wordcount"
    payload_kind = "text"

    def __init__(
        self,
        partitions: int = 40,
        cost_model: WorkloadCostModel = WORDCOUNT_COSTS,
    ) -> None:
        super().__init__(cost_model, partitions=partitions)
        #: Running word totals across all processed batches.
        self.totals: Counter = Counter()
        self.batches_processed = 0

    def run_kernel(self, payloads: Sequence[str]) -> Dict[str, int]:
        """Count words in one batch of text lines.

        Returns the batch's counts and folds them into ``self.totals``
        (the streaming ``updateStateByKey`` half of the job).
        """
        batch_counts: Counter = Counter()
        for line in payloads:
            batch_counts.update(line.split())
        self.totals.update(batch_counts)
        self.batches_processed += 1
        return dict(batch_counts)

    def top_words(self, k: int = 10):
        """Most frequent words seen so far."""
        if k < 1:
            raise ValueError("k must be >= 1")
        return self.totals.most_common(k)
