"""Page (Log) Analyze workload.

"Log Analyze simulates the common scenarios in industry, receiving Nginx
log from Kafka, washing and analyzing data, and writing results back into
HDFS" (§6.1).  Stage chain: wash (drop malformed lines) → analyze (parse
and enrich) → aggregate (per-path/status rollups) → hdfs_write (I/O-heavy
output, penalized on HDD nodes).  Complex but steady per-batch cost,
hence a smooth optimization trajectory in Fig. 6.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Sequence

from repro.datagen.records import parse_nginx_log_line

from .base import Workload
from .cost_models import PAGE_ANALYZE_COSTS, WorkloadCostModel


@dataclass
class PageStats:
    """Aggregated per-path statistics for one batch."""

    hits: int = 0
    bytes_out: int = 0
    errors: int = 0
    latency_sum_ms: float = 0.0

    @property
    def mean_latency_ms(self) -> float:
        return self.latency_sum_ms / self.hits if self.hits else 0.0


@dataclass
class AnalyzeResult:
    """Output of one Page Analyze batch."""

    parsed: int = 0
    malformed: int = 0
    per_path: Dict[str, PageStats] = field(default_factory=dict)

    @property
    def error_rate(self) -> float:
        total = self.parsed
        if total == 0:
            return 0.0
        return sum(s.errors for s in self.per_path.values()) / total


class PageAnalyze(Workload):
    """Nginx access-log washing, analysis and aggregation."""

    name = "page_analyze"
    payload_kind = "nginx_logs"

    def __init__(
        self,
        partitions: int = 40,
        cost_model: WorkloadCostModel = PAGE_ANALYZE_COSTS,
    ) -> None:
        super().__init__(cost_model, partitions=partitions)
        self.batches_processed = 0
        #: Simulated HDFS sink: list of per-batch aggregate summaries.
        self.hdfs_sink: list = []

    def run_kernel(self, payloads: Sequence[str]) -> AnalyzeResult:
        """Wash + analyze one batch of log lines; write rollups to the sink."""
        result = AnalyzeResult()
        stats: Dict[str, PageStats] = defaultdict(PageStats)
        for line in payloads:
            parsed = parse_nginx_log_line(line)
            if parsed is None:
                result.malformed += 1  # dropped by the washing stage
                continue
            _ip, _method, path, status, size, latency_ms = parsed
            result.parsed += 1
            s = stats[path]
            s.hits += 1
            s.bytes_out += size
            s.latency_sum_ms += latency_ms
            if status >= 500:
                s.errors += 1
        result.per_path = dict(stats)
        # "writing results back into HDFS"
        self.hdfs_sink.append(
            {
                "batch": self.batches_processed,
                "parsed": result.parsed,
                "malformed": result.malformed,
                "paths": len(result.per_path),
            }
        )
        self.batches_processed += 1
        return result
