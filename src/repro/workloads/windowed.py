"""Windowed streaming operations (``reduceByKeyAndWindow``).

Spark Streaming's windowed transformations aggregate over the last
*window* of micro-batches, re-emitting results every batch.  Two
execution strategies exist, both modeled here:

* **recompute** — every batch reprocesses the whole window's records
  (``reduceByKeyAndWindow(func, windowDuration)``);
* **incremental** — with an invertible reduce function, each batch only
  processes the *entering* and *leaving* batches
  (``reduceByKeyAndWindow(func, invFunc, ...)``), a large saving for
  wide windows.

Windows are expressed in *batches* rather than seconds: real Spark
requires the window duration to be a multiple of the batch interval,
which would couple the window to the very parameter NoStop tunes; a
batch-count window keeps the semantics well-defined under retuning
(documented deviation — the alternative would forbid interval changes).

:class:`WindowedWordCount` is the concrete instance: a sliding word
count whose kernel genuinely maintains per-batch counters and emits the
windowed aggregate.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Deque, Dict, Sequence

from .cost_models import WORDCOUNT_COSTS, WorkloadCostModel
from .wordcount import WordCount


class WindowedWordCount(WordCount):
    """Sliding-window word count over the last ``window_batches`` batches."""

    name = "windowed_wordcount"
    payload_kind = "text"

    def __init__(
        self,
        window_batches: int = 6,
        incremental: bool = True,
        partitions: int = 40,
        cost_model: WorkloadCostModel = WORDCOUNT_COSTS,
    ) -> None:
        super().__init__(partitions=partitions, cost_model=cost_model)
        if window_batches < 1:
            raise ValueError(
                f"window_batches must be >= 1, got {window_batches}"
            )
        self.window_batches = window_batches
        self.incremental = incremental
        #: record counts of the batches currently inside the window
        self._window_counts: Deque[int] = deque(maxlen=window_batches)
        #: per-batch word counters for the kernel's windowed aggregate
        self._window_counters: Deque[Counter] = deque(maxlen=window_batches)

    # -- cost model -------------------------------------------------------

    def effective_records(self, records: int) -> int:
        """Records the windowed job processes for one new batch.

        Recompute strategy: the whole window.  Incremental strategy: the
        entering batch plus the leaving batch (inverse-reduce touches
        both), which is what makes wide windows affordable.
        """
        leaving = (
            self._window_counts[0]
            if len(self._window_counts) == self.window_batches
            else 0
        )
        self._window_counts.append(records)
        if self.incremental:
            return records + leaving
        return sum(self._window_counts)

    # -- kernel -------------------------------------------------------------

    def run_kernel(self, payloads: Sequence[str]) -> Dict[str, int]:
        """Count one batch and return the *windowed* aggregate."""
        batch_counts: Counter = Counter()
        for line in payloads:
            batch_counts.update(line.split())
        self._window_counters.append(batch_counts)
        self.totals.update(batch_counts)
        self.batches_processed += 1
        windowed: Counter = Counter()
        for c in self._window_counters:
            windowed.update(c)
        return dict(windowed)

    def window_fill(self) -> int:
        """How many batches currently populate the window."""
        return len(self._window_counters)
