"""The chaos engine: drives a fault schedule through a live context.

The engine registers itself as a batch-boundary hook on the streaming
context, so faults fire at exactly the simulated times the schedule
names, *wherever* the simulation is being advanced from — an Adjust
measurement loop, a fixed-configuration baseline run, or a raw
``advance_batches`` call.  All stochastic choices (crash victims,
straggler picks) come from one seeded generator, so an identical
(seed, schedule) pair replays an identical fault history.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.obs import catalog
from repro.streaming.context import StreamingContext

from .events import FaultEvent, FaultSchedule


@dataclass
class EventRecord:
    """One firing of a fault event, as logged by the engine."""

    name: str
    kind: str
    fired_at: float
    detail: str
    recover_due: Optional[float] = None
    recovered_at: Optional[float] = None
    event_id: int = 0
    """Engine-wide firing sequence number; the same id is stamped on the
    ``chaos.inject`` span event, so traces and ChaosReport rows join."""

    @property
    def active_at(self) -> bool:
        return self.recover_due is not None and self.recovered_at is None

    def to_dict(self) -> Dict[str, object]:
        return {
            "eventId": self.event_id,
            "name": self.name,
            "kind": self.kind,
            "firedAt": self.fired_at,
            "detail": self.detail,
            "recoverDue": self.recover_due,
            "recoveredAt": self.recovered_at,
        }


@dataclass
class _ActiveFault:
    event: FaultEvent
    record: EventRecord
    recover_at: float = field(default=math.inf)


class ChaosEngine:
    """Fire scheduled faults into a :class:`StreamingContext`.

    Parameters
    ----------
    context:
        The live streaming application to torment.
    schedule:
        The declarative fault schedule.
    seed:
        Seeds victim selection; identical (seed, schedule) pairs replay
        identical fault histories.
    """

    def __init__(
        self,
        context: StreamingContext,
        schedule: FaultSchedule,
        seed: int = 0,
    ) -> None:
        self.context = context
        self.schedule = schedule
        self.rng = np.random.default_rng(seed)
        self.seed = seed
        self._last_tick = -math.inf
        self._last_fired: Dict[str, Optional[float]] = {
            e.name: None for e in schedule
        }
        self._active: List[_ActiveFault] = []
        #: Complete firing log, in firing order.
        self.records: List[EventRecord] = []
        self.telemetry = context.telemetry
        registry = self.telemetry.metrics
        # Injection/recovery counters are labeled by fault kind (a small
        # closed set — crash, straggler, skew, …) so a run report can say
        # *what* fired, not just how often.
        self._m_injections = catalog.instrument(
            registry, "repro_chaos_injections_total"
        )
        self._m_recoveries = catalog.instrument(
            registry, "repro_chaos_recoveries_total"
        )
        self._m_active = catalog.instrument(
            registry, "repro_chaos_active_faults"
        )
        context.add_boundary_hook(self.on_boundary)

    # -- state ---------------------------------------------------------------

    @property
    def faults_active(self) -> bool:
        """Whether any injected fault has not yet recovered."""
        return bool(self._active)

    @property
    def injections(self) -> int:
        return len(self.records)

    def fault_windows(self) -> List[tuple]:
        """``(fired_at, outage_end)`` per firing, in firing order.

        The window closes at the recorded recovery when one happened, at
        the scheduled recovery when still pending, and degenerates to the
        firing instant for no-recovery (instantaneous) events — handy for
        overlapping burn-rate alerts with outages in the run report.
        """
        windows: List[tuple] = []
        for r in self.records:
            if r.recovered_at is not None:
                end = r.recovered_at
            elif r.recover_due is not None:
                end = r.recover_due
            else:
                end = r.fired_at
            windows.append((r.fired_at, end))
        return windows

    def first_fire_time(self) -> Optional[float]:
        return self.records[0].fired_at if self.records else None

    def last_recovery_time(self) -> Optional[float]:
        """Latest recovery (or firing, for no-recovery events) so far."""
        times = [
            r.recovered_at if r.recovered_at is not None else r.fired_at
            for r in self.records
        ]
        return max(times) if times else None

    # -- the boundary hook ---------------------------------------------------

    def on_boundary(self, boundary: float) -> None:
        """Advance chaos state to ``boundary`` (called by the context).

        Recoveries due by the boundary run before new injections, so a
        fault whose window closed cannot shadow the next one.
        """
        self._recover_due(boundary)
        rate = self._observed_rate()
        for event in self.schedule:
            fires = event.trigger.fire_times(
                self._last_tick, boundary, rate, self._last_fired[event.name]
            )
            for t in fires:
                self._fire(event, t, boundary)
        self._last_tick = boundary

    def _observed_rate(self) -> float:
        window = max(self.context.batch_interval, 10.0)
        try:
            return self.context.receiver.observed_rate(window=window)
        except ValueError:
            return 0.0

    def _fire(self, event: FaultEvent, fire_time: float, boundary: float) -> None:
        detail = event.injector.inject(self.context, boundary, self.rng)
        self._last_fired[event.name] = fire_time
        record = EventRecord(
            name=event.name,
            kind=event.injector.kind,
            fired_at=fire_time,
            detail=detail,
            event_id=len(self.records) + 1,
        )
        if event.duration is not None:
            record.recover_due = fire_time + event.duration
            self._active.append(
                _ActiveFault(event=event, record=record,
                             recover_at=fire_time + event.duration)
            )
        self.records.append(record)
        self._m_injections.labels(kind=record.kind).inc()
        self._m_active.set(len(self._active))
        # Fault firings become span events on the batch being formed, so
        # a trace shows exactly which batch absorbed which fault and
        # analysis can join MTTR numbers to traces by event id.
        self.context.current_batch_span.add_event(
            "chaos.inject", fire_time,
            event_id=record.event_id, fault=record.name,
            kind=record.kind, detail=record.detail,
        )
        # The whole outage window is interesting, not just the batch that
        # carries the chaos.inject event: tail retention keeps every
        # trace overlapping [fire, recovery] even under head sampling.
        self.telemetry.tracer.note_interest(
            fire_time,
            record.recover_due if record.recover_due is not None else fire_time,
            "chaos",
        )

    def _recover_due(self, boundary: float) -> None:
        still: List[_ActiveFault] = []
        for af in self._active:
            if af.recover_at <= boundary:
                af.event.injector.recover(self.context, boundary)
                af.record.recovered_at = boundary
                self._m_recoveries.labels(kind=af.record.kind).inc()
                self.context.current_batch_span.add_event(
                    "chaos.recover", boundary,
                    event_id=af.record.event_id, fault=af.record.name,
                )
            else:
                still.append(af)
        self._active = still
        self._m_active.set(len(self._active))

    def finish(self, now: Optional[float] = None) -> None:
        """Recover every still-active fault (end of scenario)."""
        t = self.context.time if now is None else now
        for af in self._active:
            af.event.injector.recover(self.context, t)
            af.record.recovered_at = t
        self._active = []
