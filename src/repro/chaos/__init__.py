"""Chaos engineering for the simulated Spark Streaming stack.

Declarative fault schedules (:mod:`repro.chaos.events`) drive injectors
(:mod:`repro.chaos.injectors`) through a boundary-hooked engine
(:mod:`repro.chaos.engine`); :mod:`repro.chaos.runner` ties a schedule
to a NoStop experiment and :mod:`repro.chaos.report` serializes the
outcome deterministically.
"""

from .engine import ChaosEngine, EventRecord
from .events import AtTime, FaultEvent, FaultSchedule, Periodic, RateAbove
from .injectors import (
    BrokerOutage,
    DataSkewBurst,
    DriverFailure,
    ExecutorCrash,
    Injector,
    NodeOutage,
    StragglerSlowdown,
)
from .report import ChaosReport, EventOutcome, build_event_outcomes
from .runner import ChaosRunResult, run_chaos_scenario, standard_chaos_schedule

__all__ = [
    "AtTime",
    "BrokerOutage",
    "ChaosEngine",
    "ChaosReport",
    "ChaosRunResult",
    "DataSkewBurst",
    "DriverFailure",
    "EventOutcome",
    "EventRecord",
    "ExecutorCrash",
    "FaultEvent",
    "FaultSchedule",
    "Injector",
    "NodeOutage",
    "Periodic",
    "RateAbove",
    "StragglerSlowdown",
    "build_event_outcomes",
    "run_chaos_scenario",
    "standard_chaos_schedule",
]
