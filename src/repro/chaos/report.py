"""ChaosReport: deterministic, serializable outcome of a chaos scenario.

The report is the artifact the paper's robustness claims are judged by:
per-event time-to-recover and delay overshoot, plus the optimizer-side
counters showing what the hardening machinery did (poisoned SPSA steps
avoided, outlier windows rejected, guarded reconfigurations).

``to_json`` is byte-deterministic for a given (seed, schedule) pair:
keys are sorted, floats are emitted via ``repr`` (exact round-trip), and
every value derives from seeded simulation state — so two consecutive
runs of the same scenario diff clean.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.chaos import delay_overshoot, time_to_recover
from repro.streaming.metrics import BatchInfo

from .engine import EventRecord


def _finite_or_none(x: Optional[float]) -> Optional[float]:
    """JSON has no Infinity; encode 'never recovered' as null."""
    if x is None or not math.isfinite(x):
        return None
    return x


@dataclass
class EventOutcome:
    """One fault firing joined with its recovery metrics."""

    record: EventRecord
    mttr: float
    """Seconds from injection to sustained stability (inf = never)."""
    overshoot: Optional[float]
    """Peak end-to-end delay above pre-fault baseline, if measurable."""

    def to_dict(self) -> Dict[str, object]:
        payload = self.record.to_dict()
        payload["mttr"] = _finite_or_none(self.mttr)
        payload["delayOvershoot"] = _finite_or_none(self.overshoot)
        return payload


@dataclass
class ChaosReport:
    """Everything a chaos scenario produced, ready to serialize."""

    scenario: str
    seed: int
    hardened: bool
    events: List[EventOutcome] = field(default_factory=list)

    # optimizer-side counters (zero when no controller was attached)
    poisoned_steps_avoided: int = 0
    poisoned_steps_taken: int = 0
    corrupted_retries: int = 0
    outlier_batches_rejected: int = 0
    failed_applies: int = 0
    rate_resets: int = 0
    executor_failures: int = 0

    # convergence bookkeeping
    pre_fault_objective: Optional[float] = None
    post_fault_objective: Optional[float] = None

    batches_processed: int = 0
    sim_duration: float = 0.0

    # -- aggregates ----------------------------------------------------------

    @property
    def mean_mttr(self) -> float:
        """Mean time-to-recover over events that did recover (inf if any
        event never recovered, which is the honest aggregate)."""
        if not self.events:
            return 0.0
        values = [e.mttr for e in self.events]
        if any(not math.isfinite(v) for v in values):
            return math.inf
        return sum(values) / len(values)

    @property
    def max_overshoot(self) -> Optional[float]:
        values = [e.overshoot for e in self.events if e.overshoot is not None]
        return max(values) if values else None

    @property
    def recovered(self) -> bool:
        return bool(self.events) and math.isfinite(self.mean_mttr)

    def reconverged(self, tolerance: float = 0.10) -> bool:
        """Whether NoStop's post-fault objective is within ``tolerance``
        of its pre-fault objective (the §4.1 transparency claim)."""
        if self.pre_fault_objective is None or self.post_fault_objective is None:
            return False
        return (
            self.post_fault_objective
            <= self.pre_fault_objective * (1.0 + tolerance)
        )

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "hardened": self.hardened,
            "events": [e.to_dict() for e in self.events],
            "meanMttr": _finite_or_none(self.mean_mttr),
            "maxDelayOvershoot": _finite_or_none(self.max_overshoot),
            "recovered": self.recovered,
            "poisonedStepsAvoided": self.poisoned_steps_avoided,
            "poisonedStepsTaken": self.poisoned_steps_taken,
            "corruptedRetries": self.corrupted_retries,
            "outlierBatchesRejected": self.outlier_batches_rejected,
            "failedApplies": self.failed_applies,
            "rateResets": self.rate_resets,
            "executorFailures": self.executor_failures,
            "preFaultObjective": self.pre_fault_objective,
            "postFaultObjective": self.post_fault_objective,
            "reconverged": self.reconverged(),
            "batchesProcessed": self.batches_processed,
            "simDuration": self.sim_duration,
        }

    def to_json(self) -> str:
        """Deterministic JSON: sorted keys, no wall-clock, no set order."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)


def build_event_outcomes(
    records: Sequence[EventRecord],
    batches: Sequence[BatchInfo],
    consecutive_stable: int = 3,
) -> List[EventOutcome]:
    """Join the engine's firing log with recovery metrics from batches."""
    outcomes: List[EventOutcome] = []
    for rec in records:
        mttr = time_to_recover(
            batches, fault_start=rec.fired_at, consecutive=consecutive_stable
        )
        overshoot = delay_overshoot(
            batches,
            fault_start=rec.fired_at,
            recovered_by=(
                rec.fired_at + mttr if math.isfinite(mttr) else None
            ),
        )
        outcomes.append(EventOutcome(record=rec, mttr=mttr, overshoot=overshoot))
    return outcomes
