"""Fault injectors: what a chaos event does to the running system.

Each injector is a small, idempotent pair of actions — ``inject`` at the
firing boundary, ``recover`` when the event's duration elapses — applied
against a live :class:`~repro.streaming.context.StreamingContext`.  They
reach every layer of the simulated stack:

========================  =====================================================
injector                  layer exercised
========================  =====================================================
:class:`ExecutorCrash`    cluster — ``ResourceManager.fail_executor`` with the
                          freed slot optionally held hostage (delayed recovery)
:class:`NodeOutage`       cluster — a whole node offline, all its executors die
:class:`StragglerSlowdown` engine — an executor's service rate degrades
:class:`BrokerOutage`     kafka/streaming — fetches stall, backlog bursts back
:class:`DataSkewBurst`    datagen — offered rate multiplied for a window
========================  =====================================================

Injectors never kill the last live executor: a fully dead pool has no
recovery story for a configuration optimizer (the scheduler would simply
raise), and the paper's churn claims are about *degraded*, not *absent*,
infrastructure.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kafka.broker import KafkaBroker
    from repro.streaming.context import StreamingContext


class Injector(abc.ABC):
    """Inject a fault into a streaming context, and undo it later."""

    @abc.abstractmethod
    def inject(
        self, context: "StreamingContext", now: float, rng: np.random.Generator
    ) -> str:
        """Apply the fault at simulation time ``now``.

        Returns a short human-readable detail string for the event log
        (e.g. which executor died) — it must be deterministic given the
        rng so chaos reports replay byte-identically.
        """

    @abc.abstractmethod
    def recover(self, context: "StreamingContext", now: float) -> None:
        """Undo the fault at simulation time ``now`` (idempotent)."""

    @property
    def kind(self) -> str:
        return type(self).__name__


@dataclass
class ExecutorCrash(Injector):
    """Crash ``count`` executors; optionally hold their slots hostage.

    With ``hold_slot=True`` (default) the crashed machine's capacity
    stays unavailable until the event recovers, so a NoStop configuration
    application asking for the full pool *fails* — exercising the
    guarded-reconfiguration path.  An event with no duration then models
    a machine that never comes back (permanent capacity loss).  With
    ``hold_slot=False`` the slot frees immediately and NoStop's next
    Adjust call heals the pool.
    """

    count: int = 1
    hold_slot: bool = True
    _held: List[tuple] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")

    def inject(
        self, context: "StreamingContext", now: float, rng: np.random.Generator
    ) -> str:
        rm = context.resource_manager
        victims: List[int] = []
        for _ in range(self.count):
            if rm.executor_count <= 1:
                break  # never kill the last executor
            pool = rm.executors
            victim = pool[int(rng.integers(len(pool)))]
            node = victim.node
            rm.fail_executor(victim.executor_id)
            victims.append(victim.executor_id)
            if self.hold_slot:
                # The crashed slot's resources stay unusable until the
                # event recovers (the machine is rebooting).
                node.allocate(rm.executor_cores, rm.executor_memory_gb)
                self._held.append((node, rm.executor_cores, rm.executor_memory_gb))
        return f"crashed executors {victims}" if victims else "no-op (pool at 1)"

    def recover(self, context: "StreamingContext", now: float) -> None:
        while self._held:
            node, cores, mem = self._held.pop()
            node.release(cores, mem)


@dataclass
class NodeOutage(Injector):
    """Take one worker node offline, killing every executor on it.

    ``worker_index`` selects the victim from ``cluster.workers`` (None =
    seeded random choice).  While offline the node refuses allocations
    and contributes zero capacity, so ``max_executors`` shrinks —
    configuration applications that need the node fail until recovery.
    """

    worker_index: Optional[int] = None
    _node: Optional[object] = field(default=None, repr=False)

    def inject(
        self, context: "StreamingContext", now: float, rng: np.random.Generator
    ) -> str:
        workers = context.cluster.workers
        online = [n for n in workers if n.online]
        if not online:
            return "no-op (no online workers)"
        if self.worker_index is not None:
            node = workers[self.worker_index % len(workers)]
            if not node.online:
                return f"no-op (node {node.node_id} already offline)"
        else:
            node = online[int(rng.integers(len(online)))]
        rm = context.resource_manager
        killed: List[int] = []
        for ex in list(rm.executors):
            if ex.node is node and rm.executor_count > 1:
                rm.fail_executor(ex.executor_id)
                killed.append(ex.executor_id)
        node.set_offline()
        self._node = node
        return f"node {node.node_id} offline, killed executors {killed}"

    def recover(self, context: "StreamingContext", now: float) -> None:
        if self._node is not None:
            self._node.set_online()
            self._node = None


@dataclass
class StragglerSlowdown(Injector):
    """Degrade the service rate of ``count`` executors by ``factor``.

    Models a GC-thrashing / noisy-neighbour straggler: tasks landing on
    the victim take ``factor`` times longer, stretching the stage barrier
    and inflating batch processing time without any crash signal — the
    pure-noise fault MAD rejection exists for.
    """

    factor: float = 4.0
    count: int = 1
    _victims: List[object] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.factor <= 1.0:
            raise ValueError(f"factor must be > 1.0, got {self.factor}")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")

    def inject(
        self, context: "StreamingContext", now: float, rng: np.random.Generator
    ) -> str:
        pool = context.resource_manager.executors
        if not pool:
            return "no-op (empty pool)"
        picks = rng.choice(len(pool), size=min(self.count, len(pool)), replace=False)
        ids: List[int] = []
        for i in sorted(int(p) for p in picks):
            pool[i].set_slowdown(self.factor)
            self._victims.append(pool[i])
            ids.append(pool[i].executor_id)
        return f"executors {ids} slowed {self.factor:.1f}x"

    def recover(self, context: "StreamingContext", now: float) -> None:
        while self._victims:
            victim = self._victims.pop()
            # The victim may have been decommissioned meanwhile; clearing
            # its slowdown is harmless either way.
            victim.set_slowdown(1.0)


@dataclass
class BrokerOutage(Injector):
    """Stall ingestion: brokers unreachable, fetches return nothing.

    Records keep accumulating in the topic, so the first post-recovery
    batch carries the whole backlog — the burst that poisons a naive
    measurement window.  ``brokers`` (optional) are also flagged offline
    for observability.
    """

    brokers: Sequence["KafkaBroker"] = ()

    def inject(
        self, context: "StreamingContext", now: float, rng: np.random.Generator
    ) -> str:
        context.receiver.stall()
        for b in self.brokers:
            b.set_offline()
        ids = [b.broker_id for b in self.brokers]
        return f"brokers {ids} down, receiver stalled" if ids else "receiver stalled"

    def recover(self, context: "StreamingContext", now: float) -> None:
        for b in self.brokers:
            b.set_online()
        context.receiver.resume()


@dataclass
class DriverFailure(Injector):
    """Kill the driver process: the controller dies mid-optimization.

    The fault every other injector leaves untouched — not an executor,
    a node, or a broker, but the *control plane* itself.  While the
    driver is down no batches are scheduled (the receiver stalls, so
    records pile up in the topic exactly as for a broker outage) and,
    crucially, the NoStop controller loses its in-memory state: SPSA
    iterate, gain position, ρ, pause history, rate window.

    What happens at recovery is the experiment's independent variable
    and is delegated to an optional bound *host* (see
    :mod:`repro.experiments.recovery`): the paper's §5.5 cold restart
    throws the tuner state away, checkpoint recovery restores it.  The
    injector itself only models the outage window; with no host bound
    it degrades to a pure ingestion stall, so it composes with any
    chaos schedule.
    """

    _host: Optional[object] = field(default=None, repr=False)

    def bind(self, host: object) -> "DriverFailure":
        """Attach a driver host notified on kill/recover (fluent)."""
        self._host = host
        return self

    def inject(
        self, context: "StreamingContext", now: float, rng: np.random.Generator
    ) -> str:
        context.receiver.stall()
        if self._host is not None:
            self._host.on_driver_kill(now)
        return "driver killed; scheduling halted, controller state lost"

    def recover(self, context: "StreamingContext", now: float) -> None:
        context.receiver.resume()
        if self._host is not None:
            self._host.on_driver_recover(now)


@dataclass
class DataSkewBurst(Injector):
    """Multiply the offered ingest rate for the event's duration.

    The data-skew / flash-crowd burst of §5.5: enough sustained surge
    trips the rate monitor's coefficient reset, which is the *intended*
    response — the chaos report counts resets so tests can tell intended
    resets from spurious re-triggers.
    """

    multiplier: float = 3.0

    def __post_init__(self) -> None:
        if self.multiplier <= 1.0:
            raise ValueError(f"multiplier must be > 1.0, got {self.multiplier}")

    def inject(
        self, context: "StreamingContext", now: float, rng: np.random.Generator
    ) -> str:
        context.generator.set_surge(self.multiplier)
        return f"ingest surged {self.multiplier:.1f}x"

    def recover(self, context: "StreamingContext", now: float) -> None:
        context.generator.set_surge(1.0)
