"""Fault-schedule DSL: triggers, events, and schedules.

A :class:`FaultSchedule` is a declarative description of *when* faults
strike; the injectors in :mod:`repro.chaos.injectors` describe *what*
they do.  Three trigger shapes cover the scenarios the paper's
robustness claims imply (§4.1 noise tolerance, §5.5 input churn):

* :class:`AtTime` — a one-shot event at a fixed simulation time (the
  scripted "executor crash at t=120 s" scenario);
* :class:`Periodic` — repeated injection on a fixed period within a
  window (background churn, e.g. an executor crash every 10 minutes);
* :class:`RateAbove` — fires when the observed ingest rate crosses a
  threshold (faults correlated with load, e.g. a broker falling over
  under a traffic surge), with a cooldown so one sustained surge fires
  one event.

Triggers are pure descriptions: all mutable firing state lives in the
:class:`~repro.chaos.engine.ChaosEngine`, which keeps schedules reusable
across runs and replay deterministic.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .injectors import Injector


class Trigger(abc.ABC):
    """When a fault event fires."""

    @abc.abstractmethod
    def fire_times(
        self, t0: float, t1: float, rate: float, last_fired: Optional[float]
    ) -> Tuple[float, ...]:
        """Firing times within the half-open window ``(t0, t1]``.

        ``rate`` is the currently observed ingest rate (records/second);
        ``last_fired`` is the previous firing time of this trigger, or
        None if it has never fired.
        """


@dataclass(frozen=True)
class AtTime(Trigger):
    """One-shot trigger at a fixed simulation time."""

    time: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"time must be >= 0, got {self.time}")

    def fire_times(
        self, t0: float, t1: float, rate: float, last_fired: Optional[float]
    ) -> Tuple[float, ...]:
        if last_fired is not None:
            return ()
        if t0 < self.time <= t1:
            return (self.time,)
        return ()


@dataclass(frozen=True)
class Periodic(Trigger):
    """Fire every ``period`` seconds, from ``start`` until ``end``."""

    period: float
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.end <= self.start:
            raise ValueError("end must be after start")

    def fire_times(
        self, t0: float, t1: float, rate: float, last_fired: Optional[float]
    ) -> Tuple[float, ...]:
        if t1 < self.start:
            return ()
        if t0 < self.start:
            k = 0
        else:
            # smallest k with start + k*period > t0
            k = int(math.floor((t0 - self.start) / self.period)) + 1
        out: List[float] = []
        while True:
            t = self.start + k * self.period
            if t > t1 or t > self.end:
                break
            if last_fired is None or t > last_fired:
                out.append(t)
            k += 1
        return tuple(out)


@dataclass(frozen=True)
class RateAbove(Trigger):
    """Fire when the observed ingest rate exceeds ``threshold``.

    ``cooldown`` seconds must elapse after a firing before the trigger
    can fire again, so one sustained surge injects one fault rather than
    one per batch boundary.
    """

    threshold: float
    cooldown: float = 120.0

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError(f"threshold must be positive, got {self.threshold}")
        if self.cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {self.cooldown}")

    def fire_times(
        self, t0: float, t1: float, rate: float, last_fired: Optional[float]
    ) -> Tuple[float, ...]:
        if rate <= self.threshold:
            return ()
        if last_fired is not None and t1 - last_fired < self.cooldown:
            return ()
        return (t1,)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: a trigger, an injector, and a duration.

    ``duration`` is how long the fault stays active before the engine
    calls the injector's ``recover``; ``None`` means the fault has no
    distinct recovery action (e.g. an executor crash whose healing is
    NoStop's own next configuration application).
    """

    name: str
    trigger: Trigger
    injector: Injector
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("event name must be non-empty")
        if self.duration is not None and self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered, immutable collection of fault events."""

    events: Tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [e.name for e in self.events]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate event names in schedule: {sorted(names)}")

    @staticmethod
    def of(*events: FaultEvent) -> "FaultSchedule":
        return FaultSchedule(tuple(events))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def names(self) -> Sequence[str]:
        return [e.name for e in self.events]
