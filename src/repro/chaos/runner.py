"""Scenario runner: a NoStop experiment under a fault schedule.

:func:`run_chaos_scenario` is the one-call entry point used by the
chaos example, the recovery benchmark, and the chaos test-suite: wire a
:class:`~repro.chaos.engine.ChaosEngine` into an assembled experiment,
run the (optionally hardened) controller, and distill the run into a
deterministic :class:`~repro.chaos.report.ChaosReport`.

:func:`standard_chaos_schedule` is the scripted acceptance scenario —
an executor crash at t=120 s whose slot stays hostage for 60 s (so a
full-pool configuration application *fails* mid-outage), then a broker
stall at t=300 s whose backlog bursts back 30 s later.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.core.gains import GainSchedule
from repro.core.metrics_collector import MetricsCollector
from repro.core.nostop import NoStopController, NoStopReport, RoundRecord
from repro.core.objective import penalized_objective
from repro.core.pause import PauseRule
from repro.core.rate_monitor import RateMonitor

from .engine import ChaosEngine
from .events import AtTime, FaultEvent, FaultSchedule
from .injectors import BrokerOutage, ExecutorCrash
from .report import ChaosReport, build_event_outcomes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.common import ExperimentSetup


def standard_chaos_schedule(
    crash_at: float = 120.0,
    crash_duration: float = 60.0,
    stall_at: float = 300.0,
    stall_duration: float = 30.0,
) -> FaultSchedule:
    """The scripted two-fault scenario used across example/benchmark/tests."""
    return FaultSchedule.of(
        FaultEvent(
            name="executor-crash",
            trigger=AtTime(crash_at),
            injector=ExecutorCrash(count=1, hold_slot=True),
            duration=crash_duration,
        ),
        FaultEvent(
            name="broker-stall",
            trigger=AtTime(stall_at),
            injector=BrokerOutage(),
            duration=stall_duration,
        ),
    )


@dataclass
class ChaosRunResult:
    """Everything one chaos scenario run produced."""

    report: ChaosReport
    nostop: NoStopReport
    engine: ChaosEngine
    controller: NoStopController


def _objective_samples(
    records: List[RoundRecord], rho_cap: float
) -> List[tuple]:
    """(time, objective) pairs at probe granularity.

    Each SPSA probe and each monitoring window yields one sample stamped
    with the time its measurement closed, so a fault firing mid-round
    still leaves the probes completed *before* it on the pre-fault side.
    Corrupted probes and guarded monitor windows are excluded — they are
    measurements of faults, not of configurations.
    """
    samples: List[tuple] = []
    for r in records:
        if r.phase == "optimize":
            for probe in (r.plus_result, r.minus_result):
                if probe is None or probe.corrupted:
                    continue
                obj = penalized_objective(
                    probe.batch_interval,
                    probe.measurement.mean_processing_time,
                    rho_cap,
                )
                samples.append((probe.measured_at, obj))
        elif r.phase == "paused" and r.monitor is not None and not r.guarded:
            obj = penalized_objective(
                r.batch_interval, r.monitor.mean_processing_time, rho_cap
            )
            samples.append((r.sim_time, obj))
    return samples


def _best_objective(samples: List[tuple]) -> Optional[float]:
    return min((obj for _, obj in samples), default=None)


def run_chaos_scenario(
    setup: "ExperimentSetup",
    schedule: FaultSchedule,
    rounds: int = 40,
    seed: int = 0,
    harden: bool = True,
    scenario: str = "chaos",
    gains: Optional[GainSchedule] = None,
    collector_window: int = 3,
    mad_threshold: float = 3.5,
    rate_cooldown: int = 6,
    confirm: bool = True,
    consecutive_stable: int = 3,
) -> ChaosRunResult:
    """Run NoStop on ``setup`` while ``schedule`` injects faults.

    ``harden=True`` enables the full noise-tolerance stack (MAD outlier
    rejection + one-retry windows, guarded SPSA steps, rate-monitor
    cooldown, degraded-mode window widening); ``harden=False`` runs the
    plain paper controller against the same faults, which is the ablation
    arm that shows poisoned SPSA steps actually being taken.
    """
    engine = ChaosEngine(setup.context, schedule, seed=seed)
    setup.system.health_source = engine
    controller = NoStopController(
        system=setup.system,
        scaler=setup.scaler,
        gains=gains,
        pause_rule=PauseRule(n_best=10, std_threshold=1.0),
        rate_monitor=RateMonitor(
            threshold=0.25, cooldown=rate_cooldown if harden else 0
        ),
        # The unhardened arm keeps outlier *detection* on (so poisoned
        # steps can be counted) but never rejects/retries — its
        # measurements are exactly the paper's.
        collector=MetricsCollector(
            window=collector_window,
            mad_threshold=mad_threshold,
            reject_outliers=harden,
        ),
        seed=seed,
        harden=harden,
        # Inherit the setup's telemetry bundle: without it the chaos
        # run's SPSA audit trail (and everything the run report reads
        # from it — watchdog scan, rule firings, the §5.5 cross-check)
        # would silently stay empty.
        telemetry=setup.telemetry,
    )
    nostop = controller.run(rounds, confirm=confirm)
    engine.finish()

    batches = setup.context.listener.metrics.batches
    outcomes = build_event_outcomes(
        engine.records, batches, consecutive_stable=consecutive_stable
    )

    samples = _objective_samples(nostop.rounds, controller.rho.cap)
    first_fire = engine.first_fire_time()
    last_recovery = engine.last_recovery_time()
    pre = post = None
    if first_fire is not None:
        pre = _best_objective([s for s in samples if s[0] < first_fire])
    if last_recovery is not None:
        post = _best_objective([s for s in samples if s[0] >= last_recovery])

    report = ChaosReport(
        scenario=scenario,
        seed=seed,
        hardened=harden,
        events=outcomes,
        poisoned_steps_avoided=nostop.poisoned_steps_avoided,
        poisoned_steps_taken=nostop.poisoned_steps_taken,
        corrupted_retries=nostop.corrupted_retries,
        outlier_batches_rejected=controller.collector.outliers_rejected,
        failed_applies=setup.system.failed_applies,
        rate_resets=controller.rate_monitor.resets_triggered,
        executor_failures=setup.context.resource_manager.executor_failures,
        pre_fault_objective=pre,
        post_fault_objective=post,
        batches_processed=len(batches),
        sim_duration=setup.context.time,
    )
    return ChaosRunResult(
        report=report, nostop=nostop, engine=engine, controller=controller
    )
