"""External streaming data generator.

Binds a rate trace, a record synthesizer, and a Kafka producer into the
"streaming data generator [deployed] outside the cluster, which sends
data to Kafka Brokers at varying data rates" of §6.1.

Counts always flow through Kafka (cheap, segment-based); payloads are
synthesized lazily via :meth:`DataGenerator.sample_payloads` so workload
kernels can run on representative records without materializing millions
of objects.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.kafka.producer import RateControlledProducer
from repro.kafka.topic import Topic

from . import records as rec
from .rates import RateTrace


class DataGenerator:
    """Drive a Kafka topic from a rate trace with typed payloads.

    Parameters
    ----------
    topic:
        Destination topic.
    trace:
        Arrival-rate trace (records/second).
    payload_kind:
        One of ``"labeled_points"``, ``"regression_points"``, ``"text"``,
        ``"nginx_logs"`` — selects the synthesizer used by
        :meth:`sample_payloads`.
    seed:
        Seed for payload synthesis.
    tick:
        Producer tick in seconds.
    count_only:
        Enable the count-only fast path: arrivals are materialized one
        segment per constant-rate span rather than one per tick.  Use for
        cost-model-driven runs that never execute workload kernels (the
        sweep runner enables it for its cells); payload synthesis via
        :meth:`sample_payloads` keeps working either way.
    """

    PAYLOAD_KINDS = ("labeled_points", "regression_points", "text", "nginx_logs")

    def __init__(
        self,
        topic: Topic,
        trace: RateTrace,
        payload_kind: str = "text",
        seed: int = 0,
        tick: float = 1.0,
        rate_cap: Optional[float] = None,
        count_only: bool = False,
    ) -> None:
        if payload_kind not in self.PAYLOAD_KINDS:
            raise ValueError(
                f"unknown payload_kind {payload_kind!r}; "
                f"expected one of {self.PAYLOAD_KINDS}"
            )
        self.producer = RateControlledProducer(
            topic, trace, tick=tick, rate_cap=rate_cap, count_only=count_only
        )
        self.payload_kind = payload_kind
        self._rng = np.random.default_rng(seed)

    @property
    def trace(self) -> RateTrace:
        return self.producer.trace

    def advance_to(self, t: float) -> int:
        """Produce all records implied by the trace up to time ``t``."""
        return self.producer.produce_until(t)

    def set_rate_cap(self, cap: Optional[float]) -> None:
        self.producer.set_rate_cap(cap)

    def set_surge(self, multiplier: float) -> None:
        """Multiplicative burst on the offered rate (chaos data skew)."""
        self.producer.set_surge(multiplier)

    def sample_payloads(self, n: int, dim: int = 10) -> Sequence:
        """Synthesize ``n`` payloads of this generator's kind."""
        if n < 0:
            raise ValueError("n must be >= 0")
        if self.payload_kind == "labeled_points":
            return rec.make_labeled_points(n, dim, self._rng, binary=True)
        if self.payload_kind == "regression_points":
            return rec.make_labeled_points(n, dim, self._rng, binary=False)
        if self.payload_kind == "text":
            return rec.make_text_lines(n, self._rng)
        return rec.make_nginx_log_lines(n, self._rng)


def recent_rate_samples(
    trace: RateTrace, now: float, window: float = 30.0, dt: float = 1.0
) -> List[float]:
    """Rate samples over the trailing ``window`` seconds.

    NoStop's rate monitor (§5.5) computes the standard deviation of the
    "recent input data speed" from samples like these.
    """
    if window <= 0 or dt <= 0:
        raise ValueError("window and dt must be positive")
    start = max(0.0, now - window)
    ts = np.arange(start, now, dt)
    return [trace.rate(float(t)) for t in ts]
