"""Input data-rate traces.

The paper evaluates NoStop under *time-varying* input rates: the external
data generator "sends data items at a random rate within a certain range"
(§6.2.2, Fig. 5), with per-workload bands of [7k,13k] (LR), [80k,120k]
(LinReg), [110k,190k] (WordCount) and [170k,230k] (Page Analyze) records
per second.  Rate traces here are deterministic functions of time given a
seed, so experiments are reproducible; all rates are in records/second.

Traces compose: :class:`SpikeRate` wraps another trace to inject traffic
surges (the E-commerce-promotion scenario of §5.5 that triggers NoStop's
coefficient reset).
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


class RateTrace(abc.ABC):
    """A records-per-second arrival rate as a function of time."""

    @abc.abstractmethod
    def rate(self, t: float) -> float:
        """Instantaneous arrival rate at simulation time ``t`` (>= 0)."""

    def records_between(self, t0: float, t1: float) -> int:
        """Number of records arriving in ``[t0, t1)``.

        Default implementation integrates the (piecewise-constant) rate at
        a fine step; subclasses with closed forms override this.
        """
        if t1 < t0:
            raise ValueError(f"t1 ({t1}) must be >= t0 ({t0})")
        if t1 == t0:
            return 0
        step = 0.25
        n = max(1, int(math.ceil((t1 - t0) / step)))
        edges = np.linspace(t0, t1, n + 1)
        mids = (edges[:-1] + edges[1:]) / 2.0
        rates = np.array([self.rate(float(m)) for m in mids])
        return int(round(float(np.sum(rates * np.diff(edges)))))

    def mean_rate(self, horizon: float) -> float:
        """Average rate over ``[0, horizon)``."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        return self.records_between(0.0, horizon) / horizon

    def constant_until(self, t: float) -> float:
        """Latest time up to which the rate is known constant from ``t``.

        Producers in count-only mode use this to materialize arrivals in
        one segment per constant-rate span instead of one per tick.
        Returning ``t`` (the conservative default for traces without a
        closed form, e.g. :class:`SineRate`) disables the fast path and
        falls back to tick-by-tick production.
        """
        return t


@dataclass(frozen=True)
class ConstantRate(RateTrace):
    """Fixed arrival rate — the unrealistic case prior work assumes."""

    value: float

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError(f"rate must be >= 0, got {self.value}")

    def rate(self, t: float) -> float:
        return self.value

    def records_between(self, t0: float, t1: float) -> int:
        if t1 < t0:
            raise ValueError(f"t1 ({t1}) must be >= t0 ({t0})")
        return int(round(self.value * (t1 - t0)))

    def constant_until(self, t: float) -> float:
        return math.inf


#: Process-wide memo of segment draws, keyed (seed, idx, lo, hi).  The
#: draw is a pure function of the key, so sharing across trace instances
#: is sound — and matters: a sweep builds the same band trace for the
#: optimize cell and every measurement cell of a repeat, and an
#: exact-vs-fast comparison builds it twice; each ``default_rng((seed,
#: idx))`` construction costs ~25µs, which dominates fast-tier runs.
_SEGMENT_MEMO: dict = {}
_SEGMENT_MEMO_MAX = 1 << 20


class UniformRandomRate(RateTrace):
    """Piecewise-constant rate resampled uniformly in ``[lo, hi]``.

    This is the paper's §6.2.2 generator: every ``hold`` seconds a new
    rate is drawn uniformly at random within the band.  Draws are keyed by
    segment index so that ``rate(t)`` is a pure function of ``t``.
    """

    def __init__(self, lo: float, hi: float, hold: float = 10.0, seed: int = 0) -> None:
        if lo < 0 or hi < lo:
            raise ValueError(f"need 0 <= lo <= hi, got lo={lo}, hi={hi}")
        if hold <= 0:
            raise ValueError(f"hold must be positive, got {hold}")
        self.lo = float(lo)
        self.hi = float(hi)
        self.hold = float(hold)
        self.seed = int(seed)

    def _segment_rate(self, idx: int) -> float:
        key = (self.seed, idx, self.lo, self.hi)
        cached = _SEGMENT_MEMO.get(key)
        if cached is None:
            if len(_SEGMENT_MEMO) >= _SEGMENT_MEMO_MAX:
                _SEGMENT_MEMO.clear()
            rng = np.random.default_rng((self.seed, idx))
            cached = float(rng.uniform(self.lo, self.hi))
            _SEGMENT_MEMO[key] = cached
        return cached

    def rate(self, t: float) -> float:
        if t < 0:
            raise ValueError(f"t must be >= 0, got {t}")
        return self._segment_rate(int(t // self.hold))

    def constant_until(self, t: float) -> float:
        if t < 0:
            raise ValueError(f"t must be >= 0, got {t}")
        return (int(t // self.hold) + 1) * self.hold

    def records_between(self, t0: float, t1: float) -> int:
        if t1 < t0:
            raise ValueError(f"t1 ({t1}) must be >= t0 ({t0})")
        total = 0.0
        i0 = int(t0 // self.hold)
        i1 = int(math.ceil(t1 / self.hold))
        for idx in range(i0, max(i1, i0 + 1)):
            seg_start = idx * self.hold
            seg_end = seg_start + self.hold
            overlap = min(t1, seg_end) - max(t0, seg_start)
            if overlap > 0:
                total += overlap * self._segment_rate(idx)
        return int(round(total))


@dataclass(frozen=True)
class StepRate(RateTrace):
    """Rate that jumps between levels at fixed boundaries.

    ``levels`` is a sequence of ``(start_time, rate)`` pairs sorted by
    start time; the first pair must start at 0.
    """

    levels: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("levels must be non-empty")
        starts = [s for s, _ in self.levels]
        if starts[0] != 0:
            raise ValueError("first level must start at t=0")
        if any(b <= a for a, b in zip(starts, starts[1:])):
            raise ValueError("level start times must be strictly increasing")
        if any(r < 0 for _, r in self.levels):
            raise ValueError("rates must be >= 0")

    @staticmethod
    def of(*levels: Tuple[float, float]) -> "StepRate":
        return StepRate(tuple(levels))

    def rate(self, t: float) -> float:
        if t < 0:
            raise ValueError(f"t must be >= 0, got {t}")
        current = self.levels[0][1]
        for start, r in self.levels:
            if t >= start:
                current = r
            else:
                break
        return current

    def constant_until(self, t: float) -> float:
        if t < 0:
            raise ValueError(f"t must be >= 0, got {t}")
        for start, _ in self.levels:
            if start > t:
                return start
        return math.inf


@dataclass(frozen=True)
class SineRate(RateTrace):
    """Smooth diurnal-style oscillation around a base rate."""

    base: float
    amplitude: float
    period: float

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValueError("base must be >= 0")
        if self.amplitude < 0 or self.amplitude > self.base:
            raise ValueError("need 0 <= amplitude <= base (rates must stay >= 0)")
        if self.period <= 0:
            raise ValueError("period must be positive")

    def rate(self, t: float) -> float:
        return self.base + self.amplitude * math.sin(2.0 * math.pi * t / self.period)


@dataclass(frozen=True)
class SpikeRate(RateTrace):
    """Wrap a base trace with multiplicative surges in given windows.

    Models the "surges in traffic (e.g., E-commerce promotion, spike
    activities)" of §5.5 that must trigger NoStop's coefficient reset.
    ``spikes`` is a tuple of ``(start, end, multiplier)`` windows.
    """

    base: RateTrace
    spikes: Tuple[Tuple[float, float, float], ...]

    def __post_init__(self) -> None:
        for start, end, mult in self.spikes:
            if end <= start:
                raise ValueError(f"spike window [{start}, {end}) is empty")
            if mult <= 0:
                raise ValueError(f"spike multiplier must be positive, got {mult}")

    def rate(self, t: float) -> float:
        r = self.base.rate(t)
        for start, end, mult in self.spikes:
            if start <= t < end:
                r *= mult
        return r

    def constant_until(self, t: float) -> float:
        limit = self.base.constant_until(t)
        for start, end, _ in self.spikes:
            if start > t:
                limit = min(limit, start)
            if t < end <= limit:
                limit = end
        return limit


class TraceRate(RateTrace):
    """Replay a recorded rate series (piecewise constant at ``dt``)."""

    def __init__(self, samples: Sequence[float], dt: float = 1.0) -> None:
        if not len(samples):
            raise ValueError("samples must be non-empty")
        if dt <= 0:
            raise ValueError("dt must be positive")
        arr = np.asarray(samples, dtype=float)
        if np.any(arr < 0):
            raise ValueError("rates must be >= 0")
        self._samples = arr
        self.dt = float(dt)

    def rate(self, t: float) -> float:
        if t < 0:
            raise ValueError(f"t must be >= 0, got {t}")
        idx = min(int(t // self.dt), len(self._samples) - 1)
        return float(self._samples[idx])

    def constant_until(self, t: float) -> float:
        if t < 0:
            raise ValueError(f"t must be >= 0, got {t}")
        idx = int(t // self.dt)
        if idx >= len(self._samples) - 1:
            # Past the last sample the series clamps to its final value.
            return math.inf
        return (idx + 1) * self.dt


#: The paper's per-workload rate bands (records/second), Fig. 5.
PAPER_RATE_BANDS = {
    "logistic_regression": (7_000, 13_000),
    "linear_regression": (80_000, 120_000),
    "wordcount": (110_000, 190_000),
    "page_analyze": (170_000, 230_000),
}


#: Derived workloads reuse their base workload's paper band.
RATE_BAND_ALIASES = {"windowed_wordcount": "wordcount"}


def paper_rate_trace(workload: str, seed: int = 0, hold: float = 10.0) -> UniformRandomRate:
    """The §6.2.2 uniform-random-band trace for a named paper workload."""
    name = RATE_BAND_ALIASES.get(workload, workload)
    try:
        lo, hi = PAPER_RATE_BANDS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {workload!r}; expected one of "
            f"{sorted(PAPER_RATE_BANDS) + sorted(RATE_BAND_ALIASES)}"
        ) from None
    return UniformRandomRate(lo, hi, hold=hold, seed=seed)
