"""Streaming data generation substrate.

Rate traces (uniform random bands per the paper's Fig. 5, steps, spikes,
sines), synthetic record payloads for the four workloads, and the
external data generator that feeds the simulated Kafka cluster.
"""

from .generator import DataGenerator, recent_rate_samples
from .rates import (
    PAPER_RATE_BANDS,
    ConstantRate,
    RateTrace,
    SineRate,
    SpikeRate,
    StepRate,
    TraceRate,
    UniformRandomRate,
    paper_rate_trace,
)
from .records import (
    LabeledPoint,
    make_labeled_points,
    make_nginx_log_lines,
    make_text_lines,
    parse_nginx_log_line,
)

__all__ = [
    "ConstantRate",
    "DataGenerator",
    "LabeledPoint",
    "PAPER_RATE_BANDS",
    "RateTrace",
    "SineRate",
    "SpikeRate",
    "StepRate",
    "TraceRate",
    "UniformRandomRate",
    "make_labeled_points",
    "make_nginx_log_lines",
    "make_text_lines",
    "parse_nginx_log_line",
    "paper_rate_trace",
    "recent_rate_samples",
]
