"""Synthetic record generators for the four paper workloads.

Each workload consumes a different record type:

* streaming logistic regression — labeled feature vectors;
* streaming linear regression — feature vectors with a real-valued target;
* WordCount — lines of text;
* Page Analyze — Nginx access-log lines.

The simulator's cost models work from record *counts*, but the workload
kernels in :mod:`repro.workloads` genuinely parse and process these
payloads, so examples and tests can demonstrate end-to-end semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

_WORDS = (
    "stream spark batch executor interval delay kafka broker node tuple "
    "shuffle stage task queue record latency window state driver worker"
).split()

_PATHS = (
    "/index.html",
    "/cart",
    "/checkout",
    "/api/v1/items",
    "/api/v1/users",
    "/static/app.js",
    "/search",
    "/product/42",
    "/login",
    "/logout",
)

_STATUS = (200, 200, 200, 200, 301, 304, 404, 500)
_METHODS = ("GET", "GET", "GET", "POST", "PUT")


@dataclass(frozen=True)
class LabeledPoint:
    """A (label, features) pair, as in Spark MLlib's streaming regressors."""

    label: float
    features: Tuple[float, ...]


def make_labeled_points(
    n: int,
    dim: int,
    rng: np.random.Generator,
    binary: bool = True,
    noise: float = 0.1,
) -> List[LabeledPoint]:
    """Generate ``n`` points from a fixed ground-truth linear model.

    With ``binary=True`` labels are {0,1} via a logistic link (for the
    Streaming Logistic Regression workload); otherwise labels are real
    valued (Streaming Linear Regression).
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
    truth = np.linspace(1.0, -1.0, dim)
    x = rng.normal(size=(n, dim))
    margin = x @ truth + rng.normal(scale=noise, size=n)
    if binary:
        labels = (1.0 / (1.0 + np.exp(-margin)) > 0.5).astype(float)
    else:
        labels = margin
    return [
        LabeledPoint(label=float(labels[i]), features=tuple(float(v) for v in x[i]))
        for i in range(n)
    ]


def make_text_lines(
    n: int, rng: np.random.Generator, words_per_line: int = 8
) -> List[str]:
    """Generate ``n`` lines of space-separated words (WordCount input)."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if words_per_line < 1:
        raise ValueError("words_per_line must be >= 1")
    idx = rng.integers(0, len(_WORDS), size=(n, words_per_line))
    return [" ".join(_WORDS[j] for j in row) for row in idx]


def make_nginx_log_lines(n: int, rng: np.random.Generator) -> List[str]:
    """Generate ``n`` Nginx combined-format access-log lines.

    Page Analyze "receives Nginx log from Kafka, washing and analyzing
    data" — a small fraction of lines is deliberately malformed so the
    washing step has something to drop.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    lines: List[str] = []
    for _ in range(n):
        if rng.random() < 0.02:  # corrupted line for the "washing" stage
            lines.append("!!corrupt!!" + str(rng.integers(0, 10**6)))
            continue
        ip = ".".join(str(int(v)) for v in rng.integers(1, 255, size=4))
        method = _METHODS[int(rng.integers(0, len(_METHODS)))]
        path = _PATHS[int(rng.integers(0, len(_PATHS)))]
        status = _STATUS[int(rng.integers(0, len(_STATUS)))]
        size = int(rng.integers(100, 50_000))
        latency_ms = float(rng.gamma(shape=2.0, scale=20.0))
        lines.append(
            f'{ip} - - [01/Jul/2021:12:00:00 +0000] "{method} {path} HTTP/1.1" '
            f"{status} {size} {latency_ms:.1f}"
        )
    return lines


def parse_nginx_log_line(line: str):
    """Parse one access-log line; returns None for malformed input.

    Returns a ``(ip, method, path, status, size, latency_ms)`` tuple.
    """
    try:
        head, _, tail = line.partition("] \"")
        if not tail:
            return None
        ip = head.split(" ", 1)[0]
        request, _, rest = tail.partition('" ')
        parts = request.split(" ")
        if len(parts) != 3:
            return None
        method, path, _proto = parts
        fields = rest.split()
        if len(fields) < 3:
            return None
        status = int(fields[0])
        size = int(fields[1])
        latency_ms = float(fields[2])
        return (ip, method, path, status, size, latency_ms)
    except (ValueError, IndexError):
        return None


def sample_records(records: Sequence, limit: int) -> Sequence:
    """First ``limit`` records — used to run kernels on a batch sample."""
    if limit < 0:
        raise ValueError("limit must be >= 0")
    return records[:limit]
