"""Bayesian-optimization baseline (§6.4).

The paper compares NoStop against Bayesian Optimization driving the same
live system: each BO evaluation applies one configuration, measures the
penalized objective through the identical Adjust pathway, and updates a
GP surrogate.  The comparison metrics are the paper's three: final
optimization result (end-to-end delay), search time, and configuration
steps — BO pays *one* configuration change per objective evaluation but
needs more evaluations and a surrogate refit per step, while SPSA pays
two changes per iteration and converges in fewer iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.adjust import (
    AdjustFunction,
    AdjustResult,
    ControlledSystem,
    evaluate_config,
)
from repro.core.bounds import Box, MinMaxScaler
from repro.core.metrics_collector import MetricsCollector
from repro.core.pause import PauseRule
from repro.obs import catalog
from repro.obs.registry import NOOP_REGISTRY, MetricsRegistry

from .acquisition import expected_improvement
from .gp import GaussianProcess

#: Finite stand-in for a diverged (non-finite) objective observation.
#: Large enough to rank a diverged configuration strictly worst, small
#: enough to keep the GP solve numerically sane.
DIVERGENCE_PENALTY = 1.0e6


@dataclass(frozen=True)
class BOEvaluation:
    """One configuration evaluation in the BO loop."""

    index: int
    theta: np.ndarray
    objective: float
    end_to_end_delay: float
    sim_time: float


@dataclass
class BOReport:
    """Outcome of a Bayesian-optimization run (Fig. 8 axes)."""

    evaluations: List[BOEvaluation] = field(default_factory=list)
    converged_at: Optional[int] = None
    search_time: Optional[float] = None
    config_changes: int = 0
    final_theta: Optional[np.ndarray] = None
    final_delay: Optional[float] = None

    @property
    def config_steps(self) -> int:
        """Configuration changes consumed (one per evaluation)."""
        return len(self.evaluations)

    def best(self) -> BOEvaluation:
        if not self.evaluations:
            raise RuntimeError("no evaluations recorded")
        # Lexicographic-θ tie-break keeps the winner independent of
        # evaluation order when objectives tie exactly.
        return min(
            self.evaluations, key=lambda e: (e.objective, tuple(e.theta))
        )


class BayesianOptimizer:
    """GP + expected-improvement minimizer over a scaled box."""

    def __init__(
        self,
        box: Box,
        seed: int = 0,
        init_points: int = 5,
        candidates_per_step: int = 256,
        noise_var: float = 0.05,
        length_scale_frac: float = 0.2,
        divergence_penalty: float = DIVERGENCE_PENALTY,
    ) -> None:
        if init_points < 2:
            raise ValueError("init_points must be >= 2")
        if candidates_per_step < 8:
            raise ValueError("candidates_per_step must be >= 8")
        if not np.isfinite(divergence_penalty):
            raise ValueError("divergence_penalty must be finite")
        self.box = box
        self.rng = np.random.default_rng(seed)
        self.init_points = init_points
        self.candidates = candidates_per_step
        self.noise_var = noise_var
        self.length_scale_frac = length_scale_frac
        self.divergence_penalty = divergence_penalty
        #: Non-finite observations clamped to the divergence penalty.
        self.penalized = 0
        self._x: List[np.ndarray] = []
        self._y: List[float] = []
        self._initial_design = self._latin_hypercube(init_points)
        self.instrument(NOOP_REGISTRY)

    def instrument(self, registry: MetricsRegistry) -> None:
        """Bind telemetry instruments (no-op registry by default)."""
        self._m_penalized = catalog.instrument(
            registry, "repro_tuner_penalized_total"
        )

    def _latin_hypercube(self, n: int) -> np.ndarray:
        """Seeded Latin-hypercube design over the box.

        Each axis's range is cut into ``n`` equal strata; a random
        permutation assigns every sample exactly one stratum per axis,
        and the point lands uniformly inside its stratum.  Every
        one-dimensional projection of the design therefore covers all
        ``n`` strata — the space-filling property plain uniform draws
        only achieve in expectation.
        """
        u = self.rng.uniform(size=(n, self.box.dim))
        design = np.empty((n, self.box.dim))
        for axis in range(self.box.dim):
            strata = self.rng.permutation(n)
            design[:, axis] = (strata + u[:, axis]) / n
        return self.box.lower + design * self.box.ranges

    # -- ask/tell ---------------------------------------------------------

    def ask(self) -> np.ndarray:
        """Next configuration to evaluate."""
        if len(self._x) < self.init_points:
            # Space-filling initial design: Latin-hypercube samples drawn
            # at construction (one stratum per axis per sample).
            return self._initial_design[len(self._x)].copy()
        gp = GaussianProcess(
            length_scales=self.box.ranges * self.length_scale_frac,
            signal_var=1.0,
            noise_var=self.noise_var,
        ).fit(np.array(self._x), np.array(self._y))
        cand = self.box.lower + self.rng.uniform(
            size=(self.candidates, self.box.dim)
        ) * self.box.ranges
        mean, std = gp.predict(cand)
        ei = expected_improvement(mean, std, best=min(self._y))
        return cand[int(np.argmax(ei))]

    def tell(self, theta: Sequence[float], y: float) -> None:
        """Record one observation.

        A non-finite objective (a diverged, unstable-queue probe) is
        clamped to the finite divergence penalty instead of raising —
        one bad configuration must not abort a whole tournament run.
        The clamp is counted on ``repro_tuner_penalized_total``.
        """
        t = np.asarray(theta, dtype=float)
        if not self.box.contains(t):
            raise ValueError(f"theta {t} outside the feasible box")
        if not np.isfinite(y):
            y = self.divergence_penalty
            self.penalized += 1
            self._m_penalized.inc()
        self._x.append(t)
        self._y.append(float(y))

    @property
    def observations(self) -> int:
        return len(self._y)

    def best_theta(self) -> np.ndarray:
        if not self._x:
            raise RuntimeError("no observations yet")
        best_y = min(self._y)
        tied = [
            tuple(float(v) for v in x)
            for x, y in zip(self._x, self._y) if y == best_y
        ]
        # Lexicographically smallest θ among exact ties: deterministic
        # under any observation order.
        return np.asarray(min(tied), dtype=float)


def run_bayesian_optimization(
    system: ControlledSystem,
    scaler: MinMaxScaler,
    max_evaluations: int = 40,
    rho: float = 2.0,
    pause_rule: Optional[PauseRule] = None,
    collector: Optional[MetricsCollector] = None,
    seed: int = 0,
    on_evaluation: Optional[Callable[[BOEvaluation], None]] = None,
) -> BOReport:
    """Drive BO against a live system, mirroring the NoStop run loop.

    Uses the same Adjust measurement pathway and the same impeded-
    progress convergence rule as NoStop so the Fig. 8 comparison is
    apples-to-apples.  ``rho`` is fixed at NoStop's penalty cap (BO has
    no iteration-coupled schedule).
    """
    if max_evaluations < 1:
        raise ValueError("max_evaluations must be >= 1")
    collector = collector or MetricsCollector()
    adjust = AdjustFunction(system, scaler, collector)
    optimizer = BayesianOptimizer(scaler.scaled, seed=seed)
    rule = pause_rule or PauseRule()
    report = BOReport()
    start_time = system.time

    for i in range(max_evaluations):
        theta = optimizer.ask()
        result: AdjustResult = adjust(theta, rho)
        optimizer.tell(theta, result.objective)
        evaluated = evaluate_config(result, theta, i + 1, rho_cap=rho)
        rule.record(evaluated)
        evaluation = BOEvaluation(
            index=i + 1,
            theta=np.asarray(theta, dtype=float),
            objective=result.objective,
            end_to_end_delay=evaluated.end_to_end_delay,
            sim_time=system.time,
        )
        report.evaluations.append(evaluation)
        if on_evaluation is not None:
            on_evaluation(evaluation)
        if rule.should_pause():
            report.converged_at = i + 1
            break

    # Confirmation pass (symmetric with NoStopController.confirm_best):
    # re-measure the incumbent best until it has two windows, so BO's
    # reported optimum is not a single lucky measurement.
    for _ in range(4):
        if not rule.evaluations:
            break
        incumbent = rule.best_config()
        if rule.measurement_count(incumbent.theta) >= 2:
            break
        theta = np.asarray(incumbent.theta, dtype=float)
        result = adjust(theta, rho)
        optimizer.tell(theta, result.objective)
        rule.record(evaluate_config(result, theta, optimizer.observations, rho_cap=rho))

    report.search_time = system.time - start_time
    report.config_changes = system.config_changes
    confirmed = rule.best_config() if rule.evaluations else None
    if confirmed is not None:
        report.final_theta = np.asarray(confirmed.theta, dtype=float)
        report.final_delay = confirmed.end_to_end_delay
    return report
