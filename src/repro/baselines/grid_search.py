"""Exhaustive grid search over the configuration space.

The paper's §1 argues exhaustive search is "prohibitively time-consuming
when there is a large value range for the control parameters"; this
module exists to *demonstrate* that claim quantitatively in the
ablation benches: even a coarse grid needs an order of magnitude more
live configuration changes than SPSA.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.adjust import AdjustFunction, ControlledSystem, evaluate_config
from repro.core.bounds import MinMaxScaler
from repro.core.metrics_collector import MetricsCollector
from repro.core.pause import EvaluatedConfig


@dataclass
class GridSearchReport:
    """Outcome of a grid-search sweep."""

    evaluations: List[EvaluatedConfig] = field(default_factory=list)
    search_time: float = 0.0
    config_changes: int = 0

    def best(self) -> EvaluatedConfig:
        if not self.evaluations:
            raise RuntimeError("no evaluations recorded")
        # Exact objective ties break lexicographically on θ, not on grid
        # enumeration order, so the winner survives grid re-orderings.
        return min(self.evaluations, key=lambda e: (e.objective, e.theta))


def grid_points(scaler: MinMaxScaler, points_per_axis: int) -> np.ndarray:
    """Cartesian grid over the scaled box."""
    if points_per_axis < 2:
        raise ValueError("points_per_axis must be >= 2")
    box = scaler.scaled
    axes = [
        np.linspace(box.lower[d], box.upper[d], points_per_axis)
        for d in range(box.dim)
    ]
    mesh = np.meshgrid(*axes, indexing="ij")
    return np.stack([m.ravel() for m in mesh], axis=1)


def run_grid_search(
    system: ControlledSystem,
    scaler: MinMaxScaler,
    points_per_axis: int = 5,
    rho: float = 2.0,
    collector: Optional[MetricsCollector] = None,
    max_evaluations: Optional[int] = None,
) -> GridSearchReport:
    """Evaluate every grid point through the Adjust pathway."""
    collector = collector or MetricsCollector()
    adjust = AdjustFunction(system, scaler, collector)
    report = GridSearchReport()
    start = system.time
    points = grid_points(scaler, points_per_axis)
    if max_evaluations is not None:
        points = points[:max_evaluations]

    for i, theta in enumerate(points):
        result = adjust(theta, rho)
        report.evaluations.append(
            evaluate_config(result, theta, i + 1, rho_cap=rho)
        )

    report.search_time = system.time - start
    report.config_changes = system.config_changes
    return report
