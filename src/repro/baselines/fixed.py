"""Fixed-configuration baselines.

The Fig. 7 comparison point: run the system at an unchanging
configuration and measure steady-state delay.  ``DEFAULT_CONFIGURATION``
stands in for "initial configurations set by default" — the mid-range
batch interval a user who has not tuned anything would pick, with the
modest executor pool Spark standalone grants by default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.streaming.context import StreamingConfig, StreamingContext
from repro.streaming.metrics import BatchInfo, percentiles

#: Untuned stand-in configuration (documented in DESIGN.md): mid-range
#: interval from the paper's [1, 40] s space, 10 executors.
DEFAULT_CONFIGURATION = StreamingConfig(batch_interval=20.0, num_executors=10)


@dataclass(frozen=True)
class FixedRunResult:
    """Steady-state metrics of a fixed-configuration run."""

    config: StreamingConfig
    batches: int
    mean_end_to_end_delay: float
    mean_processing_time: float
    mean_scheduling_delay: float
    unstable_fraction: float
    p50_end_to_end_delay: float = 0.0
    p95_end_to_end_delay: float = 0.0
    p99_end_to_end_delay: float = 0.0
    """Delay tail: an untuned configuration can look fine on the mean
    while its p99 drowns (queue oscillation) — the paper's motivation."""


def run_fixed_configuration(
    context: StreamingContext,
    batches: int = 60,
    warmup: int = 5,
) -> FixedRunResult:
    """Run ``batches`` micro-batches at the context's configuration.

    ``warmup`` initial batches are excluded from the averages (executor
    initialization and queue fill-in effects).
    """
    if batches < 1:
        raise ValueError("batches must be >= 1")
    if warmup < 0 or warmup >= batches:
        raise ValueError("need 0 <= warmup < batches")
    completed: List[BatchInfo] = []
    # Advance boundaries until enough batches complete (unstable configs
    # complete slower than they are formed).
    boundaries = 0
    cap = batches * 50
    while len(completed) < batches and boundaries < cap:
        completed.extend(context.advance_one_batch())
        boundaries += 1
    used = completed[warmup:] if len(completed) > warmup else completed
    n = len(used)
    if n == 0:
        raise RuntimeError("no batches completed; configuration pathological")
    p50, p95, p99 = percentiles([b.end_to_end_delay for b in used])
    return FixedRunResult(
        config=context.config,
        batches=n,
        mean_end_to_end_delay=sum(b.end_to_end_delay for b in used) / n,
        mean_processing_time=sum(b.processing_time for b in used) / n,
        mean_scheduling_delay=sum(b.scheduling_delay for b in used) / n,
        unstable_fraction=sum(1 for b in used if not b.stable) / n,
        p50_end_to_end_delay=p50,
        p95_end_to_end_delay=p95,
        p99_end_to_end_delay=p99,
    )
