"""Back-pressure baseline harness.

Runs a streaming context at a fixed configuration with Spark's PID rate
estimator throttling ingestion (the "Spark Back Pressure solution" the
abstract compares against).  Back pressure protects stability by
*dropping/deferring input* rather than tuning the system, so its
effective throughput falls below the offered load whenever the static
configuration is undersized — the comparison NoStop wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.streaming.backpressure import BackPressureController, PIDRateEstimator
from repro.streaming.context import StreamingContext
from repro.streaming.metrics import BatchInfo


@dataclass(frozen=True)
class BackPressureRunResult:
    """Steady-state metrics of a back-pressure-governed run."""

    batches: int
    mean_end_to_end_delay: float
    mean_processing_time: float
    mean_scheduling_delay: float
    unstable_fraction: float
    final_rate_cap: float
    throttled_records: int
    processed_records: int

    @property
    def throttled_fraction(self) -> float:
        """Share of offered records the throttle refused."""
        total = self.throttled_records + self.processed_records
        return self.throttled_records / total if total else 0.0


def run_backpressure(
    context: StreamingContext,
    batches: int = 60,
    warmup: int = 5,
    estimator: PIDRateEstimator = None,
) -> BackPressureRunResult:
    """Run with PID back pressure at the context's fixed configuration."""
    if batches < 1:
        raise ValueError("batches must be >= 1")
    if warmup < 0 or warmup >= batches:
        raise ValueError("need 0 <= warmup < batches")
    controller = BackPressureController(
        context.listener,
        context.generator.set_rate_cap,
        estimator=estimator,
    )
    completed: List[BatchInfo] = []
    boundaries = 0
    cap = batches * 50
    while len(completed) < batches and boundaries < cap:
        completed.extend(context.advance_one_batch())
        boundaries += 1
    used = completed[warmup:] if len(completed) > warmup else completed
    n = len(used)
    if n == 0:
        raise RuntimeError("no batches completed under back pressure")
    producer = context.generator.producer
    return BackPressureRunResult(
        batches=n,
        mean_end_to_end_delay=sum(b.end_to_end_delay for b in used) / n,
        mean_processing_time=sum(b.processing_time for b in used) / n,
        mean_scheduling_delay=sum(b.scheduling_delay for b in used) / n,
        unstable_fraction=sum(1 for b in used if not b.stable) / n,
        final_rate_cap=controller.last_rate or float("inf"),
        throttled_records=producer.total_throttled,
        processed_records=producer.total_produced,
    )
