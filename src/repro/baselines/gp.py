"""Gaussian-process regression, from scratch on NumPy.

The Bayesian-optimization baseline of §6.4 needs a surrogate model; this
is a standard zero-mean GP with an anisotropic RBF (squared-exponential)
kernel and observation noise, fitted by Cholesky factorization.  Inputs
are normalized by the caller (the optimizer works in NoStop's scaled
configuration space, so length scales are comparable across axes).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np


def rbf_kernel(
    x1: np.ndarray,
    x2: np.ndarray,
    length_scales: np.ndarray,
    signal_var: float,
) -> np.ndarray:
    """Squared-exponential kernel matrix between two point sets."""
    a = np.asarray(x1, dtype=float) / length_scales
    b = np.asarray(x2, dtype=float) / length_scales
    sq = (
        np.sum(a**2, axis=1)[:, None]
        + np.sum(b**2, axis=1)[None, :]
        - 2.0 * a @ b.T
    )
    return signal_var * np.exp(-0.5 * np.maximum(sq, 0.0))


class GaussianProcess:
    """GP posterior over noisy scalar observations.

    Parameters
    ----------
    length_scales:
        Per-dimension RBF length scales (scalar broadcasts).
    signal_var:
        Kernel amplitude (prior variance of the latent function).
    noise_var:
        Observation noise variance — essential here, since every y(θ) is
        a noise-corrupted streaming measurement.
    """

    def __init__(
        self,
        length_scales: Sequence[float] = (1.0,),
        signal_var: float = 1.0,
        noise_var: float = 1e-2,
    ) -> None:
        ls = np.atleast_1d(np.asarray(length_scales, dtype=float))
        if np.any(ls <= 0):
            raise ValueError("length scales must be positive")
        if signal_var <= 0:
            raise ValueError("signal_var must be positive")
        if noise_var < 0:
            raise ValueError("noise_var must be >= 0")
        self.length_scales = ls
        self.signal_var = float(signal_var)
        self.noise_var = float(noise_var)
        self._x: Optional[np.ndarray] = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._chol: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None

    @property
    def fitted(self) -> bool:
        return self._x is not None

    def fit(self, x: Sequence[Sequence[float]], y: Sequence[float]) -> "GaussianProcess":
        """Condition the GP on observations (standardizing y internally)."""
        xa = np.atleast_2d(np.asarray(x, dtype=float))
        ya = np.asarray(y, dtype=float)
        if len(xa) != len(ya):
            raise ValueError(f"{len(xa)} inputs but {len(ya)} observations")
        if len(xa) == 0:
            raise ValueError("need at least one observation")
        if self.length_scales.size == 1 and xa.shape[1] > 1:
            self.length_scales = np.full(xa.shape[1], float(self.length_scales[0]))
        if xa.shape[1] != self.length_scales.size:
            raise ValueError(
                f"input dimension {xa.shape[1]} != length_scales "
                f"dimension {self.length_scales.size}"
            )
        self._y_mean = float(np.mean(ya))
        self._y_std = float(np.std(ya)) or 1.0
        yn = (ya - self._y_mean) / self._y_std

        k = rbf_kernel(xa, xa, self.length_scales, self.signal_var)
        k[np.diag_indices_from(k)] += self.noise_var + 1e-10
        self._chol = np.linalg.cholesky(k)
        self._alpha = np.linalg.solve(
            self._chol.T, np.linalg.solve(self._chol, yn)
        )
        self._x = xa
        return self

    def predict(
        self, x: Sequence[Sequence[float]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation at query points."""
        if not self.fitted:
            raise RuntimeError("predict() before fit()")
        xq = np.atleast_2d(np.asarray(x, dtype=float))
        ks = rbf_kernel(xq, self._x, self.length_scales, self.signal_var)
        mean_n = ks @ self._alpha
        v = np.linalg.solve(self._chol, ks.T)
        var_n = self.signal_var - np.sum(v**2, axis=0)
        var_n = np.maximum(var_n, 1e-12)
        mean = mean_n * self._y_std + self._y_mean
        std = np.sqrt(var_n) * self._y_std
        return mean, std

    def log_marginal_likelihood(self) -> float:
        """Standardized-space log evidence of the fitted data."""
        if not self.fitted:
            raise RuntimeError("log_marginal_likelihood() before fit()")
        yn = np.linalg.solve(self._chol, self._chol @ np.zeros(len(self._x)))
        # Recover standardized targets from alpha: y = K alpha.
        k = self._chol @ self._chol.T
        y_std_space = k @ self._alpha
        n = len(self._x)
        return float(
            -0.5 * y_std_space @ self._alpha
            - np.sum(np.log(np.diag(self._chol)))
            - 0.5 * n * np.log(2.0 * np.pi)
        )
