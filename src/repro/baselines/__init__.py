"""Comparators: Bayesian optimization (from-scratch GP + EI), Spark back
pressure, fixed/default configuration, random search, and grid search.
"""

from .acquisition import expected_improvement, lower_confidence_bound
from .annealing import AnnealingReport, run_simulated_annealing
from .backpressure import BackPressureRunResult, run_backpressure
from .bayesian import (
    BayesianOptimizer,
    BOEvaluation,
    BOReport,
    run_bayesian_optimization,
)
from .fixed import DEFAULT_CONFIGURATION, FixedRunResult, run_fixed_configuration
from .gp import GaussianProcess, rbf_kernel
from .grid_search import GridSearchReport, grid_points, run_grid_search
from .random_search import RandomSearchReport, run_random_search

__all__ = [
    "AnnealingReport",
    "BOEvaluation",
    "BOReport",
    "BackPressureRunResult",
    "BayesianOptimizer",
    "DEFAULT_CONFIGURATION",
    "FixedRunResult",
    "GaussianProcess",
    "GridSearchReport",
    "RandomSearchReport",
    "expected_improvement",
    "grid_points",
    "lower_confidence_bound",
    "rbf_kernel",
    "run_backpressure",
    "run_simulated_annealing",
    "run_bayesian_optimization",
    "run_fixed_configuration",
    "run_grid_search",
    "run_random_search",
]
