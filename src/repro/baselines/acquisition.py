"""Acquisition functions for the Bayesian-optimization baseline.

Expected improvement (the standard choice for noisy hyper-parameter
tuning, and the one implied by the paper's "Bayesian Optimization is
among the most commonly used algorithms in Random Search") plus lower
confidence bound for ablation.  Pure-NumPy normal PDF/CDF via ``erf``.
"""

from __future__ import annotations

import math

import numpy as np


def _norm_pdf(z: np.ndarray) -> np.ndarray:
    return np.exp(-0.5 * z**2) / math.sqrt(2.0 * math.pi)


def _norm_cdf(z: np.ndarray) -> np.ndarray:
    # vectorized via numpy's erf-free path: 0.5*(1+erf(z/sqrt(2)))
    return 0.5 * (1.0 + np.vectorize(math.erf)(z / math.sqrt(2.0)))


def expected_improvement(
    mean: np.ndarray,
    std: np.ndarray,
    best: float,
    xi: float = 0.01,
) -> np.ndarray:
    """EI for *minimization*: E[max(best − f(x) − ξ, 0)].

    ``xi`` trades exploration for exploitation; a small positive value
    avoids premature convergence under measurement noise.
    """
    mean = np.asarray(mean, dtype=float)
    std = np.asarray(std, dtype=float)
    if mean.shape != std.shape:
        raise ValueError("mean and std must have matching shapes")
    if np.any(std < 0):
        raise ValueError("std must be >= 0")
    improvement = best - mean - xi
    with np.errstate(divide="ignore", invalid="ignore"):
        z = np.where(std > 0, improvement / std, 0.0)
    ei = improvement * _norm_cdf(z) + std * _norm_pdf(z)
    # Zero-variance points improve deterministically or not at all.
    ei = np.where(std > 0, ei, np.maximum(improvement, 0.0))
    return np.maximum(ei, 0.0)


def lower_confidence_bound(
    mean: np.ndarray, std: np.ndarray, kappa: float = 2.0
) -> np.ndarray:
    """LCB acquisition for minimization (smaller is more promising)."""
    if kappa < 0:
        raise ValueError("kappa must be >= 0")
    mean = np.asarray(mean, dtype=float)
    std = np.asarray(std, dtype=float)
    if mean.shape != std.shape:
        raise ValueError("mean and std must have matching shapes")
    return mean - kappa * std
