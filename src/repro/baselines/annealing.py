"""Simulated-annealing baseline.

The paper's related work (§2) cites Otterman [16], which "dynamically
adjust[s] parameters to obtain optimal Spark configuration" with
simulated annealing.  This baseline drives the same live system through
the same Adjust pathway: propose a random neighbour of the current
configuration, accept improvements always and regressions with
probability ``exp(-Δ/T)``, and cool geometrically.

Like BO it pays one configuration change per evaluation; unlike SPSA it
has no gradient information, so it needs more evaluations to localize
the stability frontier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.adjust import AdjustFunction, ControlledSystem, evaluate_config
from repro.core.bounds import MinMaxScaler
from repro.core.metrics_collector import MetricsCollector
from repro.core.pause import EvaluatedConfig, PauseRule


@dataclass
class AnnealingReport:
    """Outcome of a simulated-annealing run (Fig. 8-comparable axes)."""

    evaluations: List[EvaluatedConfig] = field(default_factory=list)
    accepted: int = 0
    search_time: float = 0.0
    config_changes: int = 0
    converged_at: Optional[int] = None
    final_temperature: float = 0.0

    @property
    def config_steps(self) -> int:
        return len(self.evaluations)

    def best(self) -> EvaluatedConfig:
        if not self.evaluations:
            raise RuntimeError("no evaluations recorded")
        return min(self.evaluations, key=lambda e: e.sort_key)


def run_simulated_annealing(
    system: ControlledSystem,
    scaler: MinMaxScaler,
    max_evaluations: int = 60,
    rho: float = 2.0,
    initial_temperature: float = 10.0,
    cooling: float = 0.92,
    neighbour_scale: float = 0.15,
    seed: int = 0,
    pause_rule: Optional[PauseRule] = None,
    collector: Optional[MetricsCollector] = None,
) -> AnnealingReport:
    """Anneal over the scaled configuration box against a live system.

    ``neighbour_scale`` is the per-axis proposal std as a fraction of the
    scaled range; ``cooling`` multiplies the temperature each evaluation.
    """
    if max_evaluations < 1:
        raise ValueError("max_evaluations must be >= 1")
    if not (0.0 < cooling < 1.0):
        raise ValueError("cooling must be in (0, 1)")
    if initial_temperature <= 0:
        raise ValueError("initial_temperature must be positive")
    if neighbour_scale <= 0:
        raise ValueError("neighbour_scale must be positive")

    rng = np.random.default_rng(seed)
    collector = collector or MetricsCollector()
    adjust = AdjustFunction(system, scaler, collector)
    rule = pause_rule or PauseRule()
    report = AnnealingReport()
    start_time = system.time
    box = scaler.scaled

    current = box.center()
    current_result = adjust(current, rho)
    current_eval = evaluate_config(current_result, current, 0, rho_cap=rho)
    report.evaluations.append(current_eval)
    rule.record(current_eval)
    temperature = initial_temperature

    for i in range(1, max_evaluations):
        step = rng.normal(scale=neighbour_scale * box.ranges)
        candidate = box.project(current + step)
        result = adjust(candidate, rho)
        evaluated = evaluate_config(result, candidate, i, rho_cap=rho)
        report.evaluations.append(evaluated)
        rule.record(evaluated)

        delta = evaluated.objective - current_eval.objective
        if delta <= 0 or rng.random() < np.exp(-delta / temperature):
            current = candidate
            current_eval = evaluated
            report.accepted += 1
        temperature *= cooling

        if rule.should_pause():
            report.converged_at = i + 1
            break

    report.search_time = system.time - start_time
    report.config_changes = system.config_changes
    report.final_temperature = temperature
    return report
