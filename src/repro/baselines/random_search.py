"""Pure random search over the configuration space.

The simplest member of the "Random Search" family the paper situates
Bayesian Optimization in (§6.4): evaluate uniformly random
configurations through the same Adjust pathway and keep the best.  Used
as a sanity floor in the Fig. 8 bench — BO and SPSA must both beat it on
search efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.adjust import AdjustFunction, ControlledSystem, evaluate_config
from repro.core.bounds import MinMaxScaler
from repro.core.metrics_collector import MetricsCollector
from repro.core.pause import EvaluatedConfig, PauseRule


@dataclass
class RandomSearchReport:
    """Outcome of a random-search run."""

    evaluations: List[EvaluatedConfig] = field(default_factory=list)
    search_time: float = 0.0
    config_changes: int = 0
    converged_at: Optional[int] = None

    def best(self) -> EvaluatedConfig:
        if not self.evaluations:
            raise RuntimeError("no evaluations recorded")
        # Exact objective ties break lexicographically on θ, never on
        # draw order: the reported winner is seed-order independent.
        return min(self.evaluations, key=lambda e: (e.objective, e.theta))


def run_random_search(
    system: ControlledSystem,
    scaler: MinMaxScaler,
    max_evaluations: int = 40,
    rho: float = 2.0,
    seed: int = 0,
    pause_rule: Optional[PauseRule] = None,
    collector: Optional[MetricsCollector] = None,
) -> RandomSearchReport:
    """Uniform random search with the shared convergence rule."""
    if max_evaluations < 1:
        raise ValueError("max_evaluations must be >= 1")
    rng = np.random.default_rng(seed)
    collector = collector or MetricsCollector()
    adjust = AdjustFunction(system, scaler, collector)
    rule = pause_rule or PauseRule()
    report = RandomSearchReport()
    start = system.time
    box = scaler.scaled

    for i in range(max_evaluations):
        theta = box.lower + rng.uniform(size=box.dim) * box.ranges
        result = adjust(theta, rho)
        evaluated = evaluate_config(result, theta, i + 1, rho_cap=rho)
        report.evaluations.append(evaluated)
        rule.record(evaluated)
        if rule.should_pause():
            report.converged_at = i + 1
            break

    report.search_time = system.time - start
    report.config_changes = system.config_changes
    return report
