"""Tournament scenarios, scoring, and the leaderboard builder.

A tournament fans every registered tuner across a set of *scenario
shapes* — input-rate regimes stressing different failure modes of a
configuration optimizer:

* ``steady`` — constant rate at the workload's band midpoint; rewards
  fast, cheap convergence;
* ``step`` — a low→high step at t = 600 s (the §5.5 regime change);
  punishes tuners that park early and never re-localize;
* ``spike`` — a transient ×1.8 surge between 400 s and 700 s; punishes
  over-reaction to temporary load;
* ``sine`` — a ±25 % oscillation (period 300 s); rewards robust-to-
  drift configurations over point optima.

Each (tuner, scenario, seed) cell is one :func:`~repro.tuners.base.run_tuner`
run over the four-axis configuration space (batch interval, executors,
partitions, executor cores).  The leaderboard aggregates cells per
tuner and ranks on the three scores, in order: mean SLO-violation
seconds (safety first), mean convergence batches (speed second), mean
reconfiguration seconds (cost third), with the tuner name as the final
deterministic tie-break.  Every artifact is plain sorted-key JSON with
no wall-clock content — byte-identical at a fixed seed.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence

from repro.core.bounds import MinMaxScaler, full_parameter_space
from repro.datagen.rates import (
    PAPER_RATE_BANDS,
    RATE_BAND_ALIASES,
    ConstantRate,
    RateTrace,
    SineRate,
    SpikeRate,
    StepRate,
)

#: Scenario order is presentation order; the default tournament runs
#: the first three (``sine`` is the opt-in fourth shape).
TOURNAMENT_SCENARIOS = ("steady", "step", "spike", "sine")
DEFAULT_SCENARIOS = ("steady", "step", "spike")

#: The three leaderboard score columns, in ranking priority order.
SCORE_COLUMNS = (
    "sloViolationSeconds",
    "convergenceBatches",
    "reconfigSeconds",
)


def scenario_names() -> List[str]:
    return list(TOURNAMENT_SCENARIOS)


def _band(workload: str) -> tuple:
    key = RATE_BAND_ALIASES.get(workload, workload)
    try:
        return PAPER_RATE_BANDS[key]
    except KeyError:
        raise KeyError(
            f"workload {workload!r} has no paper rate band"
        ) from None


def scenario_trace(scenario: str, workload: str) -> RateTrace:
    """Build one scenario's input-rate trace for a workload.

    Rates derive from the workload's Fig. 5 band so every scenario is
    calibrated to the load the paper's cluster actually handles.
    """
    lo, hi = _band(workload)
    mid = (lo + hi) / 2.0
    if scenario == "steady":
        return ConstantRate(mid)
    if scenario == "step":
        return StepRate(((0.0, float(lo)), (600.0, float(hi))))
    if scenario == "spike":
        return SpikeRate(ConstantRate(mid), spikes=((400.0, 700.0, 1.8),))
    if scenario == "sine":
        return SineRate(mid, 0.25 * mid, 300.0)
    raise KeyError(
        f"unknown scenario {scenario!r}; expected one of "
        f"{list(TOURNAMENT_SCENARIOS)}"
    )


def tournament_space() -> MinMaxScaler:
    """The tournament's four-axis configuration space.

    Batch interval and executors as in the paper, plus partitions and
    per-executor cores — the capacity math keeps 16 two-core executors
    feasible on the Table 2 cluster (36 worker cores).
    """
    return full_parameter_space()


def build_leaderboard(
    rows: Sequence[Mapping[str, Any]],
    budget: int,
    slo_delay: float,
    fidelity: str,
) -> Dict[str, Any]:
    """Aggregate per-cell tuner runs into the ranked leaderboard.

    ``rows`` are ``tournament`` cell results (one per tuner × scenario
    × seed).  Failed cells (no ``tuner`` key) are dropped but counted,
    so a crashing tuner is visible rather than silently absent.
    """
    grouped: Dict[str, List[Mapping[str, Any]]] = {}
    dropped = 0
    for row in rows:
        name = row.get("tuner")
        if not name:
            dropped += 1
            continue
        grouped.setdefault(str(name), []).append(row)

    entries: List[Dict[str, Any]] = []
    for name in sorted(grouped):
        runs = grouped[name]
        n = len(runs)

        def mean(key: str) -> float:
            return float(sum(float(r[key]) for r in runs) / n)

        entries.append({
            "tuner": name,
            "runs": n,
            "converged": int(sum(1 for r in runs if r.get("converged"))),
            "sloViolationSeconds": mean("sloViolationSeconds"),
            "convergenceBatches": mean("convergenceBatches"),
            "reconfigSeconds": mean("reconfigSeconds"),
            "configChanges": mean("configChanges"),
            "bestObjective": mean("bestObjective"),
            "searchTime": mean("searchTime"),
        })
    entries.sort(
        key=lambda e: (
            e["sloViolationSeconds"],
            e["convergenceBatches"],
            e["reconfigSeconds"],
            e["tuner"],
        )
    )
    for rank, entry in enumerate(entries, start=1):
        entry["rank"] = rank

    scenarios = sorted({
        str(r["scenario"]) for r in rows if "scenario" in r
    })
    workloads = sorted({
        str(r["workload"]) for r in rows if "workload" in r
    })
    return {
        "budget": int(budget),
        "sloDelaySeconds": float(slo_delay),
        "fidelity": str(fidelity),
        "scenarios": scenarios,
        "workloads": workloads,
        "scoreColumns": list(SCORE_COLUMNS),
        "cells": len(rows),
        "cellsDropped": dropped,
        "leaderboard": entries,
    }


def render_leaderboard(payload: Mapping[str, Any]) -> str:
    """Human-readable table of a :func:`build_leaderboard` payload."""
    from repro.analysis.tables import format_table

    rows = []
    for e in payload["leaderboard"]:
        rows.append((
            e["rank"],
            e["tuner"],
            f"{e['sloViolationSeconds']:.1f}",
            f"{e['convergenceBatches']:.1f}",
            f"{e['reconfigSeconds']:.1f}",
            f"{e['bestObjective']:.2f}",
            f"{e['converged']}/{e['runs']}",
        ))
    title = (
        f"Tuner tournament: {', '.join(payload['scenarios'])} "
        f"x {', '.join(payload['workloads'])} "
        f"(budget {payload['budget']}, SLO {payload['sloDelaySeconds']:.0f}s, "
        f"{payload['fidelity']} fidelity)"
    )
    return format_table(
        [
            "rank", "tuner", "SLO viol (s)", "conv batches",
            "reconfig (s)", "best G", "converged",
        ],
        rows,
        title=title,
    )
