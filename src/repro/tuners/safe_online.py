"""Safe online tuner: trust-region moves with constraint-aware acceptance.

The restart-free online tuners of arXiv:2309.01901 frame live
reconfiguration as *safe* exploration: a production stream cannot
afford probes that blow the SLO, so candidate configurations stay
inside a trust region around the proven incumbent, and a candidate is
only adopted when it is demonstrably safe.

Policy here:

* propose uniformly inside a per-axis trust region of radius
  ``radius · range`` around the incumbent (no restarts — every move is
  a bounded runtime reconfiguration);
* accept a candidate only when its measurement satisfied both the
  stability constraint (Eq. 2 with margin) *and* the delay SLO, and it
  improves the objective — or the incumbent itself is unsafe, in which
  case any safe candidate is an upgrade;
* on acceptance the region expands (exploration is being rewarded), on
  rejection it shrinks toward the incumbent (the frontier is close).

The asymmetric acceptance makes the tuner conservative exactly when the
paper's penalty-based methods are most aggressive: near the stability
frontier, where a wrong step costs queued batches for the rest of the
run.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.bounds import MinMaxScaler
from repro.core.pause import EvaluatedConfig

from .base import Tuner, clamp_objective, register_tuner


@register_tuner("safe-online")
class SafeOnlineTuner(Tuner):
    """No-restart trust-region search with SLO-aware acceptance."""

    def __init__(
        self,
        scaler: MinMaxScaler,
        seed: int = 0,
        initial_radius: float = 0.12,
        expand: float = 1.3,
        shrink: float = 0.7,
        max_radius: float = 0.4,
        min_radius: float = 0.02,
        slo_delay: float = 30.0,
    ) -> None:
        super().__init__(scaler, seed)
        if not (0.0 < initial_radius <= 1.0):
            raise ValueError("initial_radius must be in (0, 1]")
        if expand <= 1.0 or not (0.0 < shrink < 1.0):
            raise ValueError("expand must be > 1 and shrink in (0, 1)")
        if not (0.0 < min_radius <= initial_radius <= max_radius <= 1.0):
            raise ValueError(
                "need 0 < min_radius <= initial_radius <= max_radius <= 1"
            )
        if slo_delay <= 0:
            raise ValueError("slo_delay must be positive")
        self.radius = float(initial_radius)
        self.expand = float(expand)
        self.shrink = float(shrink)
        self.max_radius = float(max_radius)
        self.min_radius = float(min_radius)
        self.slo_delay = float(slo_delay)
        self.rng = np.random.default_rng(seed)
        self.incumbent: Optional[np.ndarray] = None
        self.incumbent_y = float("inf")
        self.incumbent_safe = False
        self.accepted = 0
        self.rejected = 0

    def _is_safe(self, evaluated: Optional[EvaluatedConfig]) -> bool:
        if evaluated is None:
            return False
        return bool(
            evaluated.stable
            and evaluated.end_to_end_delay <= self.slo_delay
        )

    def ask(self) -> np.ndarray:
        if self.incumbent is None:
            # First probe: the box center, the same neutral start every
            # other tuner gets.
            return self.box.center()
        offset = (
            self.rng.uniform(-1.0, 1.0, size=self.box.dim)
            * self.radius
            * self.box.ranges
        )
        return self.box.project(self.incumbent + offset)

    def observe(
        self,
        theta: np.ndarray,
        objective: float,
        evaluated: Optional[EvaluatedConfig] = None,
    ) -> None:
        y = clamp_objective(objective)
        candidate = np.asarray(theta, dtype=float)
        safe = self._is_safe(evaluated)
        if self.incumbent is None:
            # The starting point is the incumbent by definition — there
            # is nothing proven to retreat to yet.
            self.incumbent = candidate
            self.incumbent_y = y
            self.incumbent_safe = safe
            return
        improves = y < self.incumbent_y
        accept = safe and (improves or not self.incumbent_safe)
        if accept:
            self.incumbent = candidate
            self.incumbent_y = y
            self.incumbent_safe = safe
            self.radius = min(self.max_radius, self.radius * self.expand)
            self.accepted += 1
        else:
            self.radius = max(self.min_radius, self.radius * self.shrink)
            self.rejected += 1

    def checkpoint(self) -> dict:
        return {
            "incumbent": (
                [float(v) for v in self.incumbent]
                if self.incumbent is not None
                else None
            ),
            "incumbentY": float(self.incumbent_y),
            "incumbentSafe": bool(self.incumbent_safe),
            "radius": float(self.radius),
            "accepted": int(self.accepted),
            "rejected": int(self.rejected),
            "rngState": self.rng.bit_generator.state,
        }

    def restore(self, state: dict) -> None:
        incumbent = state["incumbent"]
        self.incumbent = (
            np.asarray(incumbent, dtype=float)
            if incumbent is not None
            else None
        )
        self.incumbent_y = float(state["incumbentY"])
        self.incumbent_safe = bool(state["incumbentSafe"])
        self.radius = float(state["radius"])
        self.accepted = int(state["accepted"])
        self.rejected = int(state["rejected"])
        self.rng.bit_generator.state = state["rngState"]
