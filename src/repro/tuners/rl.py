"""Tabular reinforcement-learning tuner.

Models streaming reconfiguration as a small MDP, after the
Spark-Streaming RL tuners of arXiv:1809.05495 ("a reinforcement
learning approach to dynamically adapt the batch interval"): the agent
observes *discretized telemetry* rather than raw θ, acts by *nudging θ
one axis at a time*, and learns one-step Q-values online from the
penalized objective.

* **State** — ``(load bin, delay bin)``: the processing-time /
  batch-interval ratio binned at the stability-relevant break points
  (0.5, 0.8, 1.0 — comfortably stable, near the frontier, unstable) ×
  end-to-end delay in 10 s bins capped at 5.  Coarse on purpose:
  a tournament budget of tens of evaluations must revisit states for
  tabular learning to converge at all.
* **Actions** — per-axis ±step (a fixed fraction of the scaled range)
  plus no-op: ``2·dim + 1`` arms.
* **Reward** — the negated penalized objective, so the greedy policy
  descends G(θ) while the ε schedule keeps early exploration alive.

Everything is seeded and the Q-table serializes to plain JSON, so a
restored tuner replays the identical ε-greedy trajectory.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.bounds import MinMaxScaler
from repro.core.pause import EvaluatedConfig

from .base import Tuner, clamp_objective, register_tuner

#: Load-ratio bin edges: stable / near-frontier / frontier / unstable.
LOAD_BINS = (0.5, 0.8, 1.0)
#: End-to-end delay bin width (seconds) and cap.
DELAY_BIN_SECONDS = 10.0
DELAY_BIN_MAX = 5


def telemetry_state(evaluated: EvaluatedConfig) -> str:
    """Discretize one evaluation into a Q-table state key."""
    interval = evaluated.batch_interval
    if interval > 0:
        load = evaluated.mean_processing_time / interval
    else:
        load = 0.0
    load_bin = sum(1 for edge in LOAD_BINS if load >= edge)
    delay_bin = min(
        DELAY_BIN_MAX, int(max(0.0, evaluated.end_to_end_delay)
                           // DELAY_BIN_SECONDS)
    )
    return f"{load_bin},{delay_bin}"


@register_tuner("rl")
class RLTuner(Tuner):
    """ε-greedy tabular Q-learning over θ deltas."""

    #: State before the first observation (no telemetry yet).
    INITIAL_STATE = "0,0"

    def __init__(
        self,
        scaler: MinMaxScaler,
        seed: int = 0,
        step_fraction: float = 0.15,
        learning_rate: float = 0.4,
        discount: float = 0.8,
        epsilon: float = 0.9,
        epsilon_decay: float = 0.9,
        epsilon_min: float = 0.05,
    ) -> None:
        super().__init__(scaler, seed)
        if not (0.0 < step_fraction <= 1.0):
            raise ValueError("step_fraction must be in (0, 1]")
        if not (0.0 < learning_rate <= 1.0):
            raise ValueError("learning_rate must be in (0, 1]")
        if not (0.0 <= discount < 1.0):
            raise ValueError("discount must be in [0, 1)")
        self.step_fraction = float(step_fraction)
        self.learning_rate = float(learning_rate)
        self.discount = float(discount)
        self.epsilon = float(epsilon)
        self.epsilon_decay = float(epsilon_decay)
        self.epsilon_min = float(epsilon_min)
        self.rng = np.random.default_rng(seed)
        self.n_actions = 2 * self.box.dim + 1
        self.theta = self.box.center()
        self.state = self.INITIAL_STATE
        self.steps = 0
        self.q: Dict[str, List[float]] = {}
        self._pending_action: Optional[int] = None

    # -- MDP pieces -----------------------------------------------------

    def _q_row(self, key: str) -> List[float]:
        return self.q.setdefault(key, [0.0] * self.n_actions)

    def _action_delta(self, action: int) -> np.ndarray:
        """Action 0 is no-op; 1..2·dim are per-axis +step / −step."""
        delta = np.zeros(self.box.dim)
        if action == 0:
            return delta
        axis, negative = divmod(action - 1, 2)
        sign = -1.0 if negative else 1.0
        delta[axis] = sign * self.step_fraction * self.box.ranges[axis]
        return delta

    def _current_epsilon(self) -> float:
        return max(
            self.epsilon_min,
            self.epsilon * self.epsilon_decay ** self.steps,
        )

    # -- Tuner protocol -------------------------------------------------

    def ask(self) -> np.ndarray:
        row = self._q_row(self.state)
        if self.rng.random() < self._current_epsilon():
            action = int(self.rng.integers(self.n_actions))
        else:
            # Deterministic argmax: lowest action index wins ties.
            action = int(np.argmax(row))
        self._pending_action = action
        return self.box.project(self.theta + self._action_delta(action))

    def observe(
        self,
        theta: np.ndarray,
        objective: float,
        evaluated: Optional[EvaluatedConfig] = None,
    ) -> None:
        if self._pending_action is None:
            raise RuntimeError("observe() without a pending ask()")
        reward = -clamp_objective(objective)
        next_state = (
            telemetry_state(evaluated)
            if evaluated is not None
            else self.state
        )
        row = self._q_row(self.state)
        action = self._pending_action
        target = reward + self.discount * max(self._q_row(next_state))
        row[action] += self.learning_rate * (target - row[action])
        self.state = next_state
        self.theta = np.asarray(theta, dtype=float)
        self.steps += 1
        self._pending_action = None

    def checkpoint(self) -> dict:
        return {
            "theta": [float(v) for v in self.theta],
            "state": self.state,
            "steps": int(self.steps),
            "q": {k: [float(v) for v in row] for k, row in self.q.items()},
            "pendingAction": self._pending_action,
            "rngState": self.rng.bit_generator.state,
        }

    def restore(self, state: dict) -> None:
        self.theta = np.asarray(state["theta"], dtype=float)
        self.state = str(state["state"])
        self.steps = int(state["steps"])
        self.q = {
            str(k): [float(v) for v in row]
            for k, row in state["q"].items()
        }
        pending = state.get("pendingAction")
        self._pending_action = int(pending) if pending is not None else None
        self.rng.bit_generator.state = state["rngState"]
