"""Optimizer zoo behind the unified ask/observe/checkpoint protocol.

Importing this package registers every built-in tuner:

``nostop`` (SPSA + ρ schedule), ``bo`` (GP + expected improvement),
``annealing``, ``random``, ``grid``, ``rl`` (tabular Q-learning over
telemetry states), and ``safe-online`` (trust-region moves with
SLO-aware acceptance).

See :mod:`repro.tuners.base` for the protocol and the run driver,
:mod:`repro.tuners.tournament` for scenarios and the leaderboard.
"""

from .adapters import (
    AnnealingTuner,
    BOTuner,
    GridTuner,
    NoStopTuner,
    RandomTuner,
)
from .base import (
    DIVERGENCE_PENALTY,
    Tuner,
    TunerRunReport,
    clamp_objective,
    make_tuner,
    register_tuner,
    run_tuner,
    tuner_names,
)
from .rl import RLTuner
from .safe_online import SafeOnlineTuner
from .tournament import (
    DEFAULT_SCENARIOS,
    SCORE_COLUMNS,
    TOURNAMENT_SCENARIOS,
    build_leaderboard,
    render_leaderboard,
    scenario_names,
    scenario_trace,
    tournament_space,
)

__all__ = [
    "AnnealingTuner",
    "BOTuner",
    "DEFAULT_SCENARIOS",
    "DIVERGENCE_PENALTY",
    "GridTuner",
    "NoStopTuner",
    "RLTuner",
    "RandomTuner",
    "SCORE_COLUMNS",
    "SafeOnlineTuner",
    "TOURNAMENT_SCENARIOS",
    "Tuner",
    "TunerRunReport",
    "build_leaderboard",
    "clamp_objective",
    "make_tuner",
    "register_tuner",
    "render_leaderboard",
    "run_tuner",
    "scenario_names",
    "scenario_trace",
    "tournament_space",
    "tuner_names",
]
