"""The unified ``Tuner`` interface and the tournament run driver.

Every optimizer in the zoo — SPSA/NoStop, Bayesian optimization,
simulated annealing, grid and random search, the tabular-RL tuner, the
safe online tuner — speaks the same four-verb protocol:

* :meth:`Tuner.ask` — propose the next scaled configuration θ;
* :meth:`Tuner.observe` — feed back the measured penalized objective
  (plus the ranked :class:`~repro.core.pause.EvaluatedConfig`);
* :meth:`Tuner.checkpoint` / :meth:`Tuner.restore` — JSON-safe,
  bit-exact resumable state (RNG bit-generator state included), the same
  contract :class:`~repro.core.spsa.SPSAOptimizer` already honours.

:func:`run_tuner` drives any registered tuner against a live
:class:`~repro.core.adjust.ControlledSystem` through the identical
Adjust measurement pathway NoStop uses, scores the run on the three
tournament axes (convergence batches, SLO-violation seconds, total
reconfiguration cost), and reports a flat, JSON-friendly record — the
unit the ``tournament`` sweep cell fans out over.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

import numpy as np

from repro.core.adjust import AdjustFunction, ControlledSystem, evaluate_config
from repro.core.bounds import MinMaxScaler
from repro.core.metrics_collector import MetricsCollector
from repro.core.pause import EvaluatedConfig, PauseRule
from repro.obs import catalog
from repro.obs.registry import MetricsRegistry

#: Finite stand-in for a diverged (non-finite) objective observation —
#: shared with :mod:`repro.baselines.bayesian` so every tuner ranks a
#: diverged probe identically.
DIVERGENCE_PENALTY = 1.0e6


def clamp_objective(y: float, penalty: float = DIVERGENCE_PENALTY) -> float:
    """Map a non-finite objective to the finite divergence penalty."""
    value = float(y)
    return value if np.isfinite(value) else float(penalty)


class Tuner(abc.ABC):
    """One optimizer behind the ask/observe/checkpoint protocol.

    Subclasses set :attr:`name` (the registry key and metric label) and
    receive the configuration-space scaler plus a seed; every source of
    randomness must derive from that seed so two tuners constructed with
    identical arguments propose identical θ sequences.
    """

    #: Registry key; also the ``tuner`` label on ``repro_tuner_*``.
    name: str = "abstract"

    def __init__(self, scaler: MinMaxScaler, seed: int = 0) -> None:
        self.scaler = scaler
        self.box = scaler.scaled
        self.seed = int(seed)

    @abc.abstractmethod
    def ask(self) -> np.ndarray:
        """Propose the next scaled configuration to evaluate."""

    @abc.abstractmethod
    def observe(
        self,
        theta: np.ndarray,
        objective: float,
        evaluated: Optional[EvaluatedConfig] = None,
    ) -> None:
        """Feed back the measured objective for an asked θ.

        ``objective`` may be non-finite (a diverged probe); tuners clamp
        it through :func:`clamp_objective` rather than raising.
        ``evaluated`` carries the ranked record (stability verdict,
        steady-state delay) for tuners whose policy depends on more than
        the scalar objective.
        """

    @abc.abstractmethod
    def checkpoint(self) -> dict:
        """JSON-safe snapshot of the full resumable state."""

    @abc.abstractmethod
    def restore(self, state: dict) -> None:
        """Resume from a :meth:`checkpoint` snapshot, bit-exactly."""

    @property
    def exhausted(self) -> bool:
        """Whether the tuner has no further proposals (grid search)."""
        return False

    def rho(self, cap: float) -> float:
        """Penalty coefficient for the next measurement.

        Tuners without an iteration-coupled ρ schedule measure at the
        cap (the ranking coefficient), so their objectives are directly
        comparable across the whole run.
        """
        return float(cap)


# -- registry ----------------------------------------------------------------

_REGISTRY: Dict[str, Type[Tuner]] = {}


def register_tuner(name: str) -> Callable[[Type[Tuner]], Type[Tuner]]:
    """Class decorator adding a tuner to the tournament registry."""

    def wrap(cls: Type[Tuner]) -> Type[Tuner]:
        if name in _REGISTRY:
            raise ValueError(f"tuner {name!r} already registered")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return wrap


def tuner_names() -> List[str]:
    """All registered tuner names, sorted (the tournament roster)."""
    return sorted(_REGISTRY)


def make_tuner(
    name: str, scaler: MinMaxScaler, seed: int = 0, **options: Any
) -> Tuner:
    """Instantiate a registered tuner over a configuration space."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown tuner {name!r}; expected one of {tuner_names()}"
        ) from None
    return cls(scaler, seed=seed, **options)


# -- run driver --------------------------------------------------------------


@dataclass
class TunerRunReport:
    """One tuner's scored run — a leaderboard row before aggregation."""

    tuner: str
    evaluations: int = 0
    converged: bool = False
    converged_at: Optional[int] = None
    convergence_batches: int = 0
    """Micro-batches executed when the pause rule fired (total batches
    for runs that never converged — the honest worst-case score)."""
    slo_violation_seconds: float = 0.0
    """Stream-time seconds covered by batches whose end-to-end delay
    breached the SLO."""
    reconfig_seconds: float = 0.0
    """Total reconfiguration pause injected into the pipeline."""
    config_changes: int = 0
    best_objective: float = float("inf")
    best_theta: Tuple[float, ...] = ()
    best_delay: float = 0.0
    best_stable: bool = False
    search_time: float = 0.0
    batches_executed: int = 0
    evaluated: List[EvaluatedConfig] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        """Flat camelCase record for sweep cells and JSON artifacts."""
        return {
            "tuner": self.tuner,
            "evaluations": int(self.evaluations),
            "converged": bool(self.converged),
            "convergedAt": self.converged_at,
            "convergenceBatches": int(self.convergence_batches),
            "sloViolationSeconds": float(self.slo_violation_seconds),
            "reconfigSeconds": float(self.reconfig_seconds),
            "configChanges": int(self.config_changes),
            "bestObjective": float(self.best_objective),
            "bestTheta": [float(v) for v in self.best_theta],
            "bestDelay": float(self.best_delay),
            "bestStable": bool(self.best_stable),
            "searchTime": float(self.search_time),
            "batchesExecuted": int(self.batches_executed),
        }


def _batch_metrics(system: ControlledSystem):
    """The listener batch history, when the system exposes one."""
    context = getattr(system, "context", None)
    listener = getattr(context, "listener", None)
    return getattr(listener, "metrics", None)


def _pause_injected(system: ControlledSystem) -> float:
    context = getattr(system, "context", None)
    engine = getattr(context, "engine", None)
    return float(getattr(engine, "total_pause_injected", 0.0))


def run_tuner(
    tuner: Tuner,
    system: ControlledSystem,
    scaler: MinMaxScaler,
    max_evaluations: int = 30,
    rho_cap: float = 2.0,
    slo_delay: float = 30.0,
    pause_rule: Optional[PauseRule] = None,
    collector: Optional[MetricsCollector] = None,
    registry: Optional[MetricsRegistry] = None,
) -> TunerRunReport:
    """Drive one tuner against a live system and score the run.

    The loop is the tournament's level playing field: every tuner pays
    for its configuration changes through the same Adjust pathway,
    is judged by the same impeded-progress pause rule, and is scored on

    * **convergence batches** — micro-batches the stream executed before
      the pause rule fired (lower = faster convergence);
    * **SLO-violation seconds** — stream seconds inside batches whose
      end-to-end delay exceeded ``slo_delay`` (lower = safer search);
    * **reconfig seconds** — total reconfiguration pause injected
      (lower = cheaper search).
    """
    if max_evaluations < 1:
        raise ValueError("max_evaluations must be >= 1")
    if slo_delay <= 0:
        raise ValueError("slo_delay must be positive")
    collector = collector or MetricsCollector()
    adjust = AdjustFunction(system, scaler, collector)
    rule = pause_rule or PauseRule()
    report = TunerRunReport(tuner=tuner.name)
    metrics = _batch_metrics(system)
    start_time = system.time
    start_changes = system.config_changes
    start_pause = _pause_injected(system)

    for i in range(1, max_evaluations + 1):
        if tuner.exhausted:
            break
        theta = scaler.scaled.project(tuner.ask())
        result = adjust(theta, tuner.rho(rho_cap))
        evaluated = evaluate_config(result, theta, i, rho_cap=rho_cap)
        rule.record(evaluated)
        report.evaluated.append(evaluated)
        tuner.observe(theta, result.objective, evaluated)
        report.evaluations = i
        if rule.should_pause():
            report.converged = True
            report.converged_at = i
            break

    total_batches = len(metrics) if metrics is not None else 0
    report.convergence_batches = total_batches
    report.batches_executed = total_batches
    if metrics is not None:
        report.slo_violation_seconds = float(
            sum(
                b.interval
                for b in metrics.batches
                if b.end_to_end_delay > slo_delay
            )
        )
    report.reconfig_seconds = _pause_injected(system) - start_pause
    report.config_changes = system.config_changes - start_changes
    report.search_time = system.time - start_time
    if rule.evaluations:
        best = rule.best_config()
        report.best_objective = best.objective
        report.best_theta = best.theta
        report.best_delay = best.end_to_end_delay
        report.best_stable = best.stable

    if registry is not None:
        label = tuner.name
        catalog.instrument(registry, "repro_tuner_asks_total").labels(
            tuner=label
        ).inc(report.evaluations)
        catalog.instrument(registry, "repro_tuner_observations_total").labels(
            tuner=label
        ).inc(report.evaluations)
        catalog.instrument(registry, "repro_tuner_convergence_batches").labels(
            tuner=label
        ).set(report.convergence_batches)
        catalog.instrument(
            registry, "repro_tuner_slo_violation_seconds"
        ).labels(tuner=label).set(report.slo_violation_seconds)
        catalog.instrument(registry, "repro_tuner_reconfig_seconds").labels(
            tuner=label
        ).set(report.reconfig_seconds)
        if np.isfinite(report.best_objective):
            catalog.instrument(
                registry, "repro_tuner_best_objective"
            ).labels(tuner=label).set(report.best_objective)
    return report
