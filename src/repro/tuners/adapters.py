"""Tuner adapters over the existing optimizers.

Each adapter retrofits one already-proven optimizer — the SPSA/NoStop
core, the GP Bayesian optimizer, simulated annealing, random search,
grid search — behind the :class:`~repro.tuners.base.Tuner` protocol
without re-implementing its mathematics.  The stateful search logic is
unchanged; only the driving loop moves out into
:func:`~repro.tuners.base.run_tuner`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.baselines.bayesian import BayesianOptimizer
from repro.baselines.grid_search import grid_points
from repro.core.bounds import MinMaxScaler
from repro.core.gains import GainSchedule, paper_gains
from repro.core.objective import RhoSchedule
from repro.core.pause import EvaluatedConfig
from repro.core.spsa import SPSAOptimizer

from .base import Tuner, clamp_objective, register_tuner


@register_tuner("nostop")
class NoStopTuner(Tuner):
    """The paper's optimizer: SPSA with the Algorithm 1 ρ schedule.

    SPSA consumes observations in θ⁺/θ⁻ pairs, so the adapter runs a
    two-phase protocol: the first ``ask`` of an iteration proposes θ⁺,
    the second θ⁻, and the gradient step fires when the minus-side
    observation lands.
    """

    def __init__(
        self,
        scaler: MinMaxScaler,
        seed: int = 0,
        gains: Optional[GainSchedule] = None,
        theta_initial: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(scaler, seed)
        initial = (
            self.box.center() if theta_initial is None else theta_initial
        )
        self.spsa = SPSAOptimizer(
            gains or paper_gains(), self.box, initial, seed=seed
        )
        self.schedule = RhoSchedule()
        self._pending: Optional[dict] = None

    def ask(self) -> np.ndarray:
        if self._pending is None:
            theta_plus, theta_minus, delta, c_k = self.spsa.propose()
            self._pending = {
                "thetaPlus": [float(v) for v in theta_plus],
                "thetaMinus": [float(v) for v in theta_minus],
                "delta": [float(v) for v in delta],
                "ck": float(c_k),
                "yPlus": None,
            }
            return np.asarray(theta_plus, dtype=float)
        return np.asarray(self._pending["thetaMinus"], dtype=float)

    def observe(
        self,
        theta: np.ndarray,
        objective: float,
        evaluated: Optional[EvaluatedConfig] = None,
    ) -> None:
        y = clamp_objective(objective)
        pending = self._pending
        if pending is None:
            raise RuntimeError("observe() without a pending ask()")
        if pending["yPlus"] is None:
            pending["yPlus"] = y
            return
        self.spsa.apply_measurements(
            np.asarray(pending["thetaPlus"], dtype=float),
            np.asarray(pending["thetaMinus"], dtype=float),
            np.asarray(pending["delta"], dtype=float),
            pending["ck"],
            pending["yPlus"],
            y,
        )
        self.schedule.step()
        self._pending = None

    def rho(self, cap: float) -> float:
        return min(self.schedule.value, float(cap))

    def checkpoint(self) -> dict:
        return {
            "spsa": self.spsa.checkpoint(),
            "rho": self.schedule.checkpoint(),
            "pending": dict(self._pending) if self._pending else None,
        }

    def restore(self, state: dict) -> None:
        self.spsa.restore(state["spsa"])
        self.schedule.restore(state["rho"])
        pending = state.get("pending")
        self._pending = dict(pending) if pending else None


@register_tuner("bo")
class BOTuner(Tuner):
    """GP + expected-improvement over the scaled box."""

    def __init__(
        self,
        scaler: MinMaxScaler,
        seed: int = 0,
        init_points: int = 5,
        candidates_per_step: int = 256,
    ) -> None:
        super().__init__(scaler, seed)
        self.optimizer = BayesianOptimizer(
            self.box,
            seed=seed,
            init_points=init_points,
            candidates_per_step=candidates_per_step,
        )

    def ask(self) -> np.ndarray:
        return self.optimizer.ask()

    def observe(
        self,
        theta: np.ndarray,
        objective: float,
        evaluated: Optional[EvaluatedConfig] = None,
    ) -> None:
        # The optimizer clamps non-finite objectives itself (the
        # divergence-penalty bugfix); no pre-clamp here keeps its
        # penalized counter honest.
        self.optimizer.tell(theta, objective)

    def checkpoint(self) -> dict:
        opt = self.optimizer
        return {
            "x": [[float(v) for v in x] for x in opt._x],
            "y": [float(v) for v in opt._y],
            "penalized": int(opt.penalized),
            "initialDesign": [
                [float(v) for v in row] for row in opt._initial_design
            ],
            "rngState": opt.rng.bit_generator.state,
        }

    def restore(self, state: dict) -> None:
        opt = self.optimizer
        opt._x = [np.asarray(x, dtype=float) for x in state["x"]]
        opt._y = [float(v) for v in state["y"]]
        opt.penalized = int(state["penalized"])
        opt._initial_design = np.asarray(
            state["initialDesign"], dtype=float
        )
        opt.rng.bit_generator.state = state["rngState"]


@register_tuner("annealing")
class AnnealingTuner(Tuner):
    """Simulated annealing: accept regressions with ``exp(-Δ/T)``."""

    def __init__(
        self,
        scaler: MinMaxScaler,
        seed: int = 0,
        initial_temperature: float = 10.0,
        cooling: float = 0.92,
        neighbour_scale: float = 0.15,
    ) -> None:
        super().__init__(scaler, seed)
        if not (0.0 < cooling < 1.0):
            raise ValueError("cooling must be in (0, 1)")
        if initial_temperature <= 0:
            raise ValueError("initial_temperature must be positive")
        if neighbour_scale <= 0:
            raise ValueError("neighbour_scale must be positive")
        self.cooling = float(cooling)
        self.neighbour_scale = float(neighbour_scale)
        self.temperature = float(initial_temperature)
        self.rng = np.random.default_rng(seed)
        self.current: Optional[np.ndarray] = None
        self.current_y: float = float("inf")
        self.accepted = 0

    def ask(self) -> np.ndarray:
        if self.current is None:
            return self.box.center()
        step = self.rng.normal(scale=self.neighbour_scale * self.box.ranges)
        return self.box.project(self.current + step)

    def observe(
        self,
        theta: np.ndarray,
        objective: float,
        evaluated: Optional[EvaluatedConfig] = None,
    ) -> None:
        y = clamp_objective(objective)
        candidate = np.asarray(theta, dtype=float)
        if self.current is None:
            self.current = candidate
            self.current_y = y
            return
        delta = y - self.current_y
        if delta <= 0 or self.rng.random() < np.exp(
            -delta / self.temperature
        ):
            self.current = candidate
            self.current_y = y
            self.accepted += 1
        self.temperature *= self.cooling

    def checkpoint(self) -> dict:
        return {
            "current": (
                [float(v) for v in self.current]
                if self.current is not None
                else None
            ),
            "currentY": float(self.current_y),
            "temperature": float(self.temperature),
            "accepted": int(self.accepted),
            "rngState": self.rng.bit_generator.state,
        }

    def restore(self, state: dict) -> None:
        current = state["current"]
        self.current = (
            np.asarray(current, dtype=float) if current is not None else None
        )
        self.current_y = float(state["currentY"])
        self.temperature = float(state["temperature"])
        self.accepted = int(state["accepted"])
        self.rng.bit_generator.state = state["rngState"]


@register_tuner("random")
class RandomTuner(Tuner):
    """Uniform random search — the tournament's sanity floor."""

    def __init__(self, scaler: MinMaxScaler, seed: int = 0) -> None:
        super().__init__(scaler, seed)
        self.rng = np.random.default_rng(seed)
        self.draws = 0

    def ask(self) -> np.ndarray:
        self.draws += 1
        return self.box.lower + self.rng.uniform(
            size=self.box.dim
        ) * self.box.ranges

    def observe(
        self,
        theta: np.ndarray,
        objective: float,
        evaluated: Optional[EvaluatedConfig] = None,
    ) -> None:
        pass  # memoryless: the pause rule keeps the incumbent

    def checkpoint(self) -> dict:
        return {
            "draws": int(self.draws),
            "rngState": self.rng.bit_generator.state,
        }

    def restore(self, state: dict) -> None:
        self.draws = int(state["draws"])
        self.rng.bit_generator.state = state["rngState"]


@register_tuner("grid")
class GridTuner(Tuner):
    """Exhaustive grid enumeration; ``exhausted`` once the grid is done.

    The default resolution adapts to dimensionality (5 points/axis on
    the paper's 2-axis space, 3 on the 4-axis tournament space) so a
    budgeted run still sees every region of the box.
    """

    def __init__(
        self,
        scaler: MinMaxScaler,
        seed: int = 0,
        points_per_axis: Optional[int] = None,
    ) -> None:
        super().__init__(scaler, seed)
        if points_per_axis is None:
            points_per_axis = 5 if self.box.dim <= 2 else 3
        self.points_per_axis = int(points_per_axis)
        self.points = grid_points(scaler, self.points_per_axis)
        self.index = 0

    @property
    def exhausted(self) -> bool:
        return self.index >= len(self.points)

    def ask(self) -> np.ndarray:
        if self.exhausted:
            raise RuntimeError("grid exhausted")
        theta = self.points[self.index].copy()
        self.index += 1
        return theta

    def observe(
        self,
        theta: np.ndarray,
        objective: float,
        evaluated: Optional[EvaluatedConfig] = None,
    ) -> None:
        pass  # non-adaptive: enumeration order is fixed up front

    def checkpoint(self) -> dict:
        return {
            "index": int(self.index),
            "pointsPerAxis": int(self.points_per_axis),
        }

    def restore(self, state: dict) -> None:
        self.points_per_axis = int(state["pointsPerAxis"])
        self.points = grid_points(self.scaler, self.points_per_axis)
        self.index = int(state["index"])
