"""NoStop reproduction: SPSA-based online configuration optimization for
micro-batch stream processing.

Reproduces Ye, Liu & Wu, "NoStop: A Novel Configuration Optimization
Scheme for Spark Streaming" (ICPP 2021) on a from-scratch discrete-event
simulation of the Spark Streaming stack (heterogeneous cluster, Kafka,
micro-batch engine, four evaluation workloads) plus the Bayesian-
optimization and back-pressure baselines.

Quick start::

    from repro import quick_nostop_run
    report = quick_nostop_run("wordcount", rounds=30, seed=7)
    print(report.final_interval, report.final_executors)

See ``examples/`` for complete scenarios and ``benchmarks/`` for the
per-figure reproduction harness.
"""

from __future__ import annotations

__version__ = "1.0.0"

from . import baselines, cluster, core, datagen, engine, kafka, streaming, workloads
from .core import NoStopController, NoStopReport, SPSAOptimizer
from .experiments.common import build_experiment, quick_nostop_run

__all__ = [
    "NoStopController",
    "NoStopReport",
    "SPSAOptimizer",
    "__version__",
    "baselines",
    "build_experiment",
    "cluster",
    "core",
    "datagen",
    "engine",
    "kafka",
    "quick_nostop_run",
    "streaming",
    "workloads",
]
