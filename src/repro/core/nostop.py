"""The NoStop controller (Algorithm 1 + the §5 operational rules).

Ties together every piece of the scheme:

* the :class:`~repro.core.spsa.SPSAOptimizer` in min–max-scaled
  configuration space (§5.1–§5.2),
* the :class:`~repro.core.adjust.AdjustFunction` performing live
  perturbed measurements (Algorithm 2),
* the ρ penalty schedule (Eq. 3),
* the impeded-progress :class:`~repro.core.pause.PauseRule` (§5.3.5),
* the additive-increase :class:`~repro.core.metrics_collector.MetricsCollector`
  window (§5.4),
* the :class:`~repro.core.rate_monitor.RateMonitor` reset trigger (§5.5).

Each call to :meth:`NoStopController.run_round` performs one control
round — an SPSA iteration (two live configuration changes) while
optimizing, or one monitoring window while paused at the best known
configuration.  The run history carries everything needed to draw the
paper's Fig. 6 evolution plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.obs import catalog
from repro.obs.audit import SPSADecision, clipped_axes
from repro.obs.tracer import NOOP_TELEMETRY, Telemetry

from .adjust import AdjustFunction, AdjustResult, ControlledSystem
from .bounds import MinMaxScaler
from .gains import GainSchedule, paper_gains
from .metrics_collector import Measurement, MetricsCollector
from .objective import RhoSchedule
from .pause import EvaluatedConfig, PauseRule
from .perturbation import PerturbationGenerator
from .rate_monitor import RateMonitor
from .spsa import SPSAOptimizer


@dataclass(frozen=True)
class RoundRecord:
    """One control round of NoStop (optimization, monitoring, or reset)."""

    round_index: int
    k: int
    phase: str
    """``"optimize"``, ``"paused"``, or ``"reset"``."""
    sim_time: float
    rho: float
    theta_scaled: np.ndarray
    """Current estimate x after this round (scaled space)."""
    batch_interval: float
    num_executors: int
    """Physical configuration corresponding to ``theta_scaled``."""
    plus_result: Optional[AdjustResult] = None
    minus_result: Optional[AdjustResult] = None
    monitor: Optional[Measurement] = None
    guarded: bool = False
    """True when the round's SPSA update was skipped because a probe was
    corrupted (failed apply or tainted window) — a poisoned step avoided."""

    @property
    def mean_delay(self) -> Optional[float]:
        """Representative end-to-end delay observed this round."""
        if self.monitor is not None:
            return self.monitor.mean_end_to_end_delay
        values = [
            r.measurement.mean_end_to_end_delay
            for r in (self.plus_result, self.minus_result)
            if r is not None
        ]
        return sum(values) / len(values) if values else None

    @property
    def mean_processing_time(self) -> Optional[float]:
        if self.monitor is not None:
            return self.monitor.mean_processing_time
        values = [
            r.measurement.mean_processing_time
            for r in (self.plus_result, self.minus_result)
            if r is not None
        ]
        return sum(values) / len(values) if values else None


@dataclass
class NoStopReport:
    """Outcome of a NoStop run."""

    rounds: List[RoundRecord] = field(default_factory=list)
    resets: int = 0
    first_pause_round: Optional[int] = None
    first_pause_time: Optional[float] = None
    adjust_calls_to_pause: Optional[int] = None
    config_changes: int = 0
    final_interval: float = 0.0
    final_executors: int = 0
    best: Optional[EvaluatedConfig] = None
    poisoned_steps_avoided: int = 0
    """SPSA updates skipped because a probe was corrupted (guard on)."""
    poisoned_steps_taken: int = 0
    """SPSA updates that consumed a corrupted probe (guard off)."""
    corrupted_retries: int = 0
    """Probes re-measured after a corrupted first attempt."""

    @property
    def search_time(self) -> Optional[float]:
        """Simulated seconds from start to first pause (Fig. 8 metric)."""
        return self.first_pause_time

    def optimization_rounds(self) -> List[RoundRecord]:
        return [r for r in self.rounds if r.phase == "optimize"]

    def paused_rounds(self) -> List[RoundRecord]:
        return [r for r in self.rounds if r.phase == "paused"]


class NoStopController:
    """Online configuration optimizer for a controlled streaming system."""

    def __init__(
        self,
        system: ControlledSystem,
        scaler: MinMaxScaler,
        gains: Optional[GainSchedule] = None,
        theta_initial_scaled: Optional[Sequence[float]] = None,
        perturbation: Optional[PerturbationGenerator] = None,
        pause_rule: Optional[PauseRule] = None,
        rate_monitor: Optional[RateMonitor] = None,
        collector: Optional[MetricsCollector] = None,
        rho_schedule: Optional[RhoSchedule] = None,
        seed: int = 0,
        stability_slack: float = 1.05,
        harden: bool = True,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.system = system
        self.scaler = scaler
        self.collector = collector or MetricsCollector()
        self.adjust = AdjustFunction(system, scaler, self.collector)
        theta0 = (
            np.asarray(theta_initial_scaled, dtype=float)
            if theta_initial_scaled is not None
            else scaler.scaled.center()
        )
        self.spsa = SPSAOptimizer(
            gains=gains or paper_gains(),
            box=scaler.scaled,
            theta_initial=theta0,
            perturbation=perturbation,
            seed=seed,
        )
        self.pause_rule = pause_rule or PauseRule()
        self.rate_monitor = rate_monitor or RateMonitor()
        self.rho = rho_schedule or RhoSchedule()
        if stability_slack < 1.0:
            raise ValueError("stability_slack must be >= 1.0")
        self.stability_slack = stability_slack
        #: Fault-tolerant adjust loop: retry corrupted probes once and
        #: skip SPSA updates that would consume a corrupted measurement.
        #: Has no effect while the substrate behaves (corruption flags
        #: only rise during failed applies / tainted windows).
        self.harden = harden
        self.poisoned_steps_avoided = 0
        self.poisoned_steps_taken = 0
        self.corrupted_retries = 0

        self.telemetry = telemetry or NOOP_TELEMETRY
        self.audit = self.telemetry.audit
        registry = self.telemetry.metrics
        self._m_rounds = catalog.instrument(
            registry, "repro_nostop_rounds_total"
        )
        self._m_guarded = catalog.instrument(
            registry, "repro_nostop_guarded_rounds_total"
        )
        self._m_resets = catalog.instrument(
            registry, "repro_nostop_resets_total"
        )

        self.paused = False
        self._rounds_run = 0
        self._start_time = system.time
        self.report = NoStopReport()

    # -- helpers ------------------------------------------------------------

    def _current_configuration(self) -> tuple:
        """(interval, executors) of the current estimate (extra axes of a
        multi-parameter space are dropped from the round record)."""
        from .adjust import theta_to_configuration

        return theta_to_configuration(self.spsa.theta, self.scaler)[:2]

    def _note_trace_interest(self, kind: str) -> None:
        """Mark the batches around an audit-rule firing interesting.

        The flight recorder's tail retention keeps every trace that
        overlaps the window, so the batches that triggered — and the
        batches that absorbed — a reset/pause/resume decision are always
        available for critical-path analysis, regardless of sampling.
        """
        interval, _ = self._current_configuration()
        t = self.system.time
        self.telemetry.tracer.note_interest(t - interval, t + interval, kind)

    def _observe_rate(self) -> None:
        self.rate_monitor.observe(self.system.observed_input_rate())

    def _record_evaluation(self, result: AdjustResult, theta: np.ndarray) -> None:
        from .adjust import evaluate_config

        self.pause_rule.record(
            evaluate_config(result, theta, self.spsa.k, rho_cap=self.rho.cap)
        )

    def _record_decision(
        self,
        theta_before: np.ndarray,
        theta_plus: np.ndarray,
        theta_minus: np.ndarray,
        delta: np.ndarray,
        c_k: float,
        plus: AdjustResult,
        minus: AdjustResult,
        guarded: bool,
    ) -> None:
        """Explain this round's SPSA arithmetic in the audit trail."""
        if not self.audit.enabled:
            return
        probe_clipped = tuple(
            p or m
            for p, m in zip(
                clipped_axes(theta_before + c_k * delta, theta_plus),
                clipped_axes(theta_before - c_k * delta, theta_minus),
            )
        )
        if guarded:
            # No optimizer step was taken, so record the gain that *would*
            # have scaled it and leave the gradient unset.
            a_k = self.spsa.gains.a_k(self.spsa.k + 1)
            gradient = None
            theta_next = tuple(float(v) for v in theta_before)
            step_clipped = tuple(False for _ in theta_before)
        else:
            it = self.spsa.history[-1]
            a_k = it.a_k
            gradient = tuple(float(v) for v in it.gradient)
            theta_next = tuple(float(v) for v in it.theta_next)
            step_clipped = clipped_axes(
                theta_before - a_k * it.gradient, it.theta_next
            )
        self.audit.record_decision(
            SPSADecision(
                round_index=self._rounds_run,
                k=self.spsa.k,
                sim_time=self.system.time,
                rho=self.rho.value,
                a_k=float(a_k),
                c_k=float(c_k),
                theta=tuple(float(v) for v in theta_before),
                delta=tuple(float(v) for v in delta),
                theta_plus=tuple(float(v) for v in theta_plus),
                theta_minus=tuple(float(v) for v in theta_minus),
                probe_clipped=probe_clipped,
                y_plus=float(plus.objective),
                y_minus=float(minus.objective),
                gradient=gradient,
                theta_next=theta_next,
                step_clipped=step_clipped,
                guarded=guarded,
                plus_corrupted=plus.corrupted,
                minus_corrupted=minus.corrupted,
            )
        )

    def _do_reset(self) -> RoundRecord:
        """§5.5 restart: reset k, x, ρ, pause history, and window."""
        # Capture the drift that tripped the trigger before the
        # acknowledgement below clears the monitor's window.
        self._reset_std = self.rate_monitor.current_std()
        self.spsa.reset()
        self.rho.reset()
        self.pause_rule.reset()
        self.collector.reset_window()
        self.rate_monitor.acknowledge_reset()
        self.paused = False
        self.report.resets += 1
        self._m_resets.inc()
        self._note_trace_interest("reset")
        self.audit.record_firing(
            "reset", self._rounds_run, self.system.time,
            detail=(
                f"input-rate drift exceeded the §5.5 threshold "
                f"(rate std {self._reset_std:.3f} > "
                f"{self.rate_monitor.threshold:g})"
            ),
        )
        interval, executors = self._current_configuration()
        return RoundRecord(
            round_index=self._rounds_run,
            k=self.spsa.k,
            phase="reset",
            sim_time=self.system.time,
            rho=self.rho.value,
            theta_scaled=self.spsa.theta.copy(),
            batch_interval=interval,
            num_executors=executors,
        )

    # -- checkpoint / restore ------------------------------------------------

    def checkpoint(self) -> dict:
        """Serialize full resumable tuner state (JSON-safe).

        Captures the SPSA iterate and RNG state, gain-schedule position,
        ρ schedule, pause-rule evaluation history, metrics-collector
        window, rate-monitor window, and round/pause bookkeeping — the
        alternative to the paper's throw-it-all-away §5.5 restart.  See
        :mod:`repro.core.checkpoint`.
        """
        from .checkpoint import controller_checkpoint

        return controller_checkpoint(self)

    def restore(self, state: dict, reapply: bool = False) -> None:
        """Resume from a :meth:`checkpoint` snapshot.

        On the same live system (``reapply=False``) the continuation is
        bit-exact; ``reapply=True`` additionally re-applies the
        checkpointed configuration, as a restarted driver must.
        Records a ``"restore"`` audit firing either way.
        """
        from .checkpoint import controller_restore

        controller_restore(self, state, reapply=reapply)

    # -- control rounds ------------------------------------------------------

    def run_round(self) -> RoundRecord:
        """Execute one control round and return its record."""
        self._rounds_run += 1
        self._m_rounds.inc()
        if self.rate_monitor.need_reset():
            record = self._do_reset()
        elif self.paused:
            record = self._monitor_round()
        else:
            record = self._optimize_round()
        self.report.rounds.append(record)
        return record

    def _probe(self, theta: np.ndarray) -> AdjustResult:
        """One perturbed measurement, re-measured once if corrupted.

        The re-measure re-applies θ, so a transient failure (executor
        slot back, broker recovered) heals within the same round; a
        persisting outage leaves the result corrupted for the guard.
        """
        result = self.adjust(theta, self.rho.value)
        self._observe_rate()
        if result.corrupted and self.harden:
            self.corrupted_retries += 1
            result = self.adjust(theta, self.rho.value)
            self._observe_rate()
        return result

    def _optimize_round(self) -> RoundRecord:
        theta_before = self.spsa.theta.copy()
        theta_plus, theta_minus, delta, c_k = self.spsa.propose()
        plus = self._probe(theta_plus)
        minus = self._probe(theta_minus)
        corrupted = plus.corrupted or minus.corrupted
        guarded = False
        if corrupted and self.harden:
            # Guard: differentiating through a measurement of "some other
            # configuration" (failed apply) or a fault transient would
            # hand SPSA a garbage gradient.  Roll back — θ stays at the
            # current estimate — and let the next round re-probe.
            guarded = True
            self.poisoned_steps_avoided += 1
            self._m_guarded.inc()
        else:
            if corrupted:
                self.poisoned_steps_taken += 1
            self.spsa.apply_measurements(
                theta_plus, theta_minus, delta, c_k,
                plus.objective, minus.objective,
            )
        self._record_decision(
            theta_before, theta_plus, theta_minus, delta, c_k,
            plus, minus, guarded,
        )
        # Corrupted probes never enter the ranking history either: a
        # lucky-looking objective measured under a failed apply would
        # park the system at a configuration that was never tested.
        if not plus.corrupted:
            self._record_evaluation(plus, theta_plus)
        if not minus.corrupted:
            self._record_evaluation(minus, theta_minus)
        self.rho.step()

        if self.pause_rule.should_pause():
            self._enter_pause()

        interval, executors = self._current_configuration()
        return RoundRecord(
            round_index=self._rounds_run,
            k=self.spsa.k,
            phase="optimize",
            sim_time=self.system.time,
            rho=self.rho.value,
            theta_scaled=self.spsa.theta.copy(),
            batch_interval=interval,
            num_executors=executors,
            plus_result=plus,
            minus_result=minus,
            guarded=guarded,
        )

    def _enter_pause(self) -> None:
        """Stop optimizing; run at the best configuration found."""
        self.paused = True
        best = self.pause_rule.best_config()
        from .adjust import theta_to_configuration

        config = theta_to_configuration(np.asarray(best.theta), self.scaler)
        self.system.apply_configuration(
            config[0], config[1],
            partitions=config[2] if len(config) > 2 else None,
            executor_cores=config[3] if len(config) > 3 else None,
        )
        self._note_trace_interest("pause")
        self.audit.record_firing(
            "pause", self._rounds_run, self.system.time,
            detail=(
                f"impeded progress; parked at interval={config[0]:g}, "
                f"executors={config[1]}"
            ),
        )
        if self.report.first_pause_round is None:
            self.report.first_pause_round = self._rounds_run
            self.report.first_pause_time = self.system.time - self._start_time
            self.report.adjust_calls_to_pause = self.adjust.calls

    def _monitor_round(self) -> RoundRecord:
        """One monitoring window while paused at the best configuration."""
        best = self.pause_rule.best_config()
        from .adjust import theta_to_configuration

        config = theta_to_configuration(np.asarray(best.theta), self.scaler)
        interval, executors = config[0], config[1]
        self.collector.set_degraded(self.system.degraded())
        measurement = self.system.collect(self.collector)
        self._observe_rate()
        # Fold the monitoring window back into the parked configuration's
        # evaluation history: a configuration that ranked best off one
        # lucky probe window is corrected by its own steady-state
        # behaviour (the pause rule averages repeated measurements).
        # A tainted monitoring window (fault transient the collector
        # could not reject) is skipped — it would unfairly demote the
        # parked optimum for infrastructure noise it did not cause.
        from .objective import penalized_objective
        from .pause import steady_state_delay

        if measurement.tainted and self.harden:
            return RoundRecord(
                round_index=self._rounds_run,
                k=self.spsa.k,
                phase="paused",
                sim_time=self.system.time,
                rho=self.rho.value,
                theta_scaled=np.asarray(best.theta, dtype=float),
                batch_interval=interval,
                num_executors=executors,
                monitor=measurement,
                guarded=True,
            )
        self.pause_rule.record(
            EvaluatedConfig(
                theta=best.theta,
                objective=penalized_objective(
                    interval, measurement.mean_processing_time, self.rho.cap
                ),
                end_to_end_delay=steady_state_delay(
                    interval, measurement.mean_processing_time
                ),
                iteration=self.spsa.k,
                batch_interval=interval,
                num_executors=executors,
                mean_processing_time=measurement.mean_processing_time,
                stable=measurement.mean_processing_time <= interval,
            )
        )
        # §5.4 additive increase: relax the window while at the optimum.
        self.collector.relax_window()
        # Resume optimization if the system turned unstable at the optimum.
        if measurement.mean_processing_time > interval * self.stability_slack:
            self.paused = False
            self.collector.reset_window()
            self._note_trace_interest("resume")
            self.audit.record_firing(
                "resume", self._rounds_run, self.system.time,
                detail=(
                    f"instability at the parked optimum: processing "
                    f"{measurement.mean_processing_time:.3f}s > "
                    f"interval {interval:g}s x slack {self.stability_slack:g}"
                ),
            )
        return RoundRecord(
            round_index=self._rounds_run,
            k=self.spsa.k,
            phase="paused",
            sim_time=self.system.time,
            rho=self.rho.value,
            theta_scaled=np.asarray(best.theta, dtype=float),
            batch_interval=interval,
            num_executors=executors,
            monitor=measurement,
        )

    # -- full runs -----------------------------------------------------------

    def confirm_best(self, max_confirmations: int = 4) -> None:
        """Re-measure singleton winners before trusting them.

        With dozens of noisy two-to-three-batch probe windows, the
        minimum-objective configuration is biased toward lucky
        measurements (winner's curse).  Re-measuring the current best
        until it has at least two windows — demoting it if the average
        no longer wins — makes the reported final configuration honest.
        """
        if max_confirmations < 0:
            raise ValueError("max_confirmations must be >= 0")
        from .adjust import evaluate_config

        for _ in range(max_confirmations):
            if not self.pause_rule.evaluations:
                return
            best = self.pause_rule.best_config()
            if self.pause_rule.measurement_count(best.theta) >= 2:
                return
            theta = np.asarray(best.theta, dtype=float)
            result = self.adjust(theta, self.rho.cap)
            if result.corrupted and self.harden:
                continue  # don't let a fault transient demote/confirm
            self.pause_rule.record(
                evaluate_config(result, theta, self.spsa.k, rho_cap=self.rho.cap)
            )

    def run(self, rounds: int, confirm: bool = True) -> NoStopReport:
        """Run ``rounds`` control rounds and finalize the report."""
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        for _ in range(rounds):
            self.run_round()
        if confirm:
            self.confirm_best()
        self.report.config_changes = self.system.config_changes
        self.report.poisoned_steps_avoided = self.poisoned_steps_avoided
        self.report.poisoned_steps_taken = self.poisoned_steps_taken
        self.report.corrupted_retries = self.corrupted_retries
        if self.pause_rule.evaluations:
            best = self.pause_rule.best_config()
            self.report.best = best
            from .adjust import theta_to_configuration

            interval, executors = theta_to_configuration(
                np.asarray(best.theta), self.scaler
            )[:2]
            self.report.final_interval = interval
            self.report.final_executors = executors
        else:
            interval, executors = self._current_configuration()
            self.report.final_interval = interval
            self.report.final_executors = executors
        return self.report
