"""The Adjust function (Algorithm 2) and the controlled-system interface.

Algorithm 2 is NoStop's only touchpoint with the running system: apply a
configuration θ, wait for the listener to deliver enough clean batch
metrics (§5.4), and return the penalized objective

``G = batchInterval + ρ · max(0, batchProcessingTime − batchInterval)``.

:class:`ControlledSystem` is the abstract surface Algorithm 2 needs —
implemented by :class:`repro.core.system.SimulatedSparkSystem` here, and
implementable against a real cluster's REST API in a production port
(the paper's generality claim).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .bounds import MinMaxScaler
from .metrics_collector import Measurement, MetricsCollector
from .objective import penalized_objective
from .pause import STABILITY_MARGIN


class ControlledSystem(abc.ABC):
    """What NoStop requires of the system under optimization."""

    #: Whether the most recent ``apply_configuration`` failed to take
    #: effect (e.g. the cluster could not host the requested executors
    #: during an outage).  Concrete systems with a failure mode set this;
    #: the default never fails.
    last_apply_failed: bool = False

    def degraded(self) -> bool:
        """Whether the substrate currently has active faults.

        The hardened controller widens the measurement window while this
        is True.  Systems without fault telemetry report False.
        """
        return False

    @abc.abstractmethod
    def apply_configuration(
        self,
        batch_interval: float,
        num_executors: int,
        partitions: Optional[int] = None,
        executor_cores: Optional[int] = None,
    ) -> None:
        """Table 1's ``changeConfigurations(θ)``: live reconfiguration.

        ``partitions`` is the optional third tunable of the paper's
        future-work extension ("SPSA is able to optimize multiple
        parameters simultaneously without additional overhead", §7);
        ``executor_cores`` the optional fourth (per-executor sizing,
        relaunching the pool).  Two-parameter systems may ignore both.
        """

    @abc.abstractmethod
    def collect(self, collector: MetricsCollector) -> Measurement:
        """Run the system forward until the collector yields a measurement
        (Table 1's ``getSystemStatus`` loop)."""

    @property
    @abc.abstractmethod
    def time(self) -> float:
        """Current (simulation or wall-clock) time in seconds."""

    @abc.abstractmethod
    def observed_input_rate(self) -> float:
        """Recent input data speed in records/second (for §5.5)."""

    @property
    @abc.abstractmethod
    def config_changes(self) -> int:
        """Total live configuration changes applied so far."""


@dataclass(frozen=True)
class AdjustResult:
    """Outcome of one Adjust call: objective plus the raw measurement."""

    objective: float
    batch_interval: float
    num_executors: int
    measurement: Measurement
    rho: float
    apply_failed: bool = False
    """The configuration could not be applied (infrastructure outage);
    the measurement reflects a fallback configuration, not θ."""
    measured_at: float = 0.0
    """System time when the measurement window closed (lets analysis
    place each probe before/after a fault without round granularity)."""

    @property
    def tainted(self) -> bool:
        """Whether the measurement window kept suspected-corrupt batches."""
        return self.measurement.tainted

    @property
    def corrupted(self) -> bool:
        """Whether this result would poison an SPSA gradient.

        True when the configuration never took effect (the objective
        belongs to some other θ) or the measurement window is tainted by
        fault transients the collector could not reject.
        """
        return self.apply_failed or self.measurement.tainted

    @property
    def stable(self) -> bool:
        """Whether the measured mean respects the stability constraint."""
        return self.measurement.mean_processing_time <= self.batch_interval


def theta_to_configuration(
    theta_scaled: Sequence[float], scaler: MinMaxScaler
) -> tuple:
    """Convert a scaled θ into an applicable configuration tuple.

    Axis order is ``(batch interval, executors[, partitions[, executor
    cores]])``.  The batch interval is kept at millisecond resolution
    ("batch interval is in unit of milliseconds", §4.2.1); executors,
    partitions, and cores are integers.  The optional third axis is the
    paper's future-work multi-parameter extension; the fourth is the
    tuner tournament's per-executor sizing axis.
    """
    t = np.asarray(theta_scaled, dtype=float)
    if t.shape != scaler.scaled.lower.shape:
        # Without this check a short θ broadcasts against the bound
        # arrays and silently yields a full-width configuration.
        raise ValueError(
            f"theta has {t.size} axes, space has {scaler.scaled.dim}"
        )
    physical = scaler.to_physical(t)
    if not 2 <= len(physical) <= 4:
        raise ValueError(
            f"configuration space must have 2 to 4 axes, got {len(physical)}"
        )
    lo, hi = scaler.physical.lower, scaler.physical.upper
    interval = round(float(physical[0]), 3)
    interval = min(max(interval, float(lo[0])), float(hi[0]))
    out = [interval]
    for axis in range(1, len(physical)):
        value = int(round(float(physical[axis])))
        value = min(max(value, int(round(lo[axis]))), int(round(hi[axis])))
        out.append(value)
    return tuple(out)


def evaluate_config(
    result: "AdjustResult",
    theta_scaled: Sequence[float],
    iteration: int,
    rho_cap: float = 2.0,
    stability_margin: float = STABILITY_MARGIN,
):
    """Build the ranking record for one Adjust result.

    Ranked at the penalty *cap* (not the ρ in force when measured) so
    early low-ρ evaluations cannot outrank later ones, and with the
    configuration's steady-state delay estimate (see
    :mod:`repro.core.pause`).
    """
    from .pause import EvaluatedConfig, steady_state_delay

    proc = result.measurement.mean_processing_time
    ranking = penalized_objective(result.batch_interval, proc, rho_cap)
    return EvaluatedConfig(
        theta=tuple(float(v) for v in theta_scaled),
        objective=ranking,
        end_to_end_delay=steady_state_delay(result.batch_interval, proc),
        iteration=iteration,
        batch_interval=result.batch_interval,
        num_executors=result.num_executors,
        mean_processing_time=proc,
        stable=proc <= result.batch_interval * (1.0 - stability_margin),
    )


class AdjustFunction:
    """Callable implementing Algorithm 2 against a controlled system."""

    def __init__(
        self,
        system: ControlledSystem,
        scaler: MinMaxScaler,
        collector: MetricsCollector,
    ) -> None:
        self.system = system
        self.scaler = scaler
        self.collector = collector
        self.calls = 0

    def __call__(self, theta_scaled: Sequence[float], rho: float) -> AdjustResult:
        """Apply θ, measure, and return the objective (Algorithm 2).

        Degraded-mode policy: the collector is told whether the substrate
        currently has active faults *before* the window opens, so fault
        windows are measured with the widened window rather than
        retro-actively."""
        config = theta_to_configuration(theta_scaled, self.scaler)
        interval, executors = config[0], config[1]
        partitions = config[2] if len(config) > 2 else None
        cores = config[3] if len(config) > 3 else None
        self.system.apply_configuration(
            interval, executors, partitions=partitions, executor_cores=cores
        )
        apply_failed = bool(self.system.last_apply_failed)
        self.collector.set_degraded(self.system.degraded())
        self.collector.start_measurement()
        measurement = self.system.collect(self.collector)
        objective = penalized_objective(
            interval, measurement.mean_processing_time, rho
        )
        self.calls += 1
        return AdjustResult(
            objective=objective,
            batch_interval=interval,
            num_executors=executors,
            measurement=measurement,
            rho=rho,
            apply_failed=apply_failed,
            measured_at=self.system.time,
        )
