"""NoStop core: the paper's contribution.

SPSA optimization (gain sequences, Bernoulli perturbations, bound
projection), the penalized SSPO objective, the Adjust measurement
function, the §5 operational rules (metric collection, pause, rate
reset), and the :class:`NoStopController` tying them to a controlled
streaming system.
"""

from .adjust import (
    AdjustFunction,
    AdjustResult,
    ControlledSystem,
    evaluate_config,
    theta_to_configuration,
)
from .bounds import Box, MinMaxScaler, multi_parameter_space, paper_configuration_space
from .gains import DEFAULT_ALPHA, DEFAULT_GAMMA, GainSchedule, paper_gains
from .metrics_collector import Measurement, MetricsCollector
from .nostop import NoStopController, NoStopReport, RoundRecord
from .objective import RhoSchedule, penalized_objective
from .pause import EvaluatedConfig, PauseRule, steady_state_delay
from .perturbation import (
    BernoulliPerturbation,
    PerturbationGenerator,
    SegmentedUniformPerturbation,
)
from .rate_monitor import RateMonitor
from .spsa import SPSAIteration, SPSAOptimizer
from .spsa_variants import AveragedSPSA, BlockedSPSA, OneMeasurementSPSA
from .system import SimulatedSparkSystem
from .tuning import estimate_measurement_std, suggest_gains

__all__ = [
    "AdjustFunction",
    "AdjustResult",
    "BernoulliPerturbation",
    "Box",
    "ControlledSystem",
    "DEFAULT_ALPHA",
    "DEFAULT_GAMMA",
    "EvaluatedConfig",
    "GainSchedule",
    "Measurement",
    "MetricsCollector",
    "MinMaxScaler",
    "NoStopController",
    "NoStopReport",
    "PauseRule",
    "PerturbationGenerator",
    "RateMonitor",
    "RhoSchedule",
    "RoundRecord",
    "AveragedSPSA",
    "BlockedSPSA",
    "OneMeasurementSPSA",
    "SPSAIteration",
    "SPSAOptimizer",
    "SegmentedUniformPerturbation",
    "SimulatedSparkSystem",
    "estimate_measurement_std",
    "evaluate_config",
    "multi_parameter_space",
    "paper_configuration_space",
    "paper_gains",
    "penalized_objective",
    "steady_state_delay",
    "suggest_gains",
    "theta_to_configuration",
]
