"""SPSA gain sequences.

The gain sequences of §4.2.3 / §5.2:

.. math::

    a_k = \\frac{a}{(A + k + 1)^{\\alpha}}, \\qquad
    c_k = \\frac{c}{(k + 1)^{\\gamma}}

with the practically-effective exponents α = 0.602 and γ = 0.101 from
Spall (1998).  :meth:`GainSchedule.validate` checks the analytic
convergence conditions the paper cites (Condition B.1''):

* ``a_k → 0`` and ``c_k → 0``  (requires α > 0, γ > 0),
* ``Σ a_k = ∞``               (requires α ≤ 1),
* ``Σ (a_k / c_k)² < ∞``       (requires 2(α − γ) > 1).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Spall's practically-effective exponents (§4.2.3).
DEFAULT_ALPHA = 0.602
DEFAULT_GAMMA = 0.101


@dataclass(frozen=True)
class GainSchedule:
    """Parameterized SPSA gain sequences ``a_k`` and ``c_k``.

    Parameters
    ----------
    a:
        Step-size numerator; §5.6 recommends "half of the configuration
        range" (paper experiments use a = 10 on a [1, 20] scaled range).
    c:
        Perturbation-size numerator; §5.6 recommends "approximately the
        standard deviation of measurement y(θ)" (paper uses c = 2).
    A:
        Stability constant, "10% or less of the maximum number of
        iterations expected"; the paper's empirical study recommends
        A = 1.
    alpha, gamma:
        Decay exponents.
    """

    a: float
    c: float
    A: float = 1.0
    alpha: float = DEFAULT_ALPHA
    gamma: float = DEFAULT_GAMMA

    def __post_init__(self) -> None:
        if self.a <= 0:
            raise ValueError(f"a must be positive, got {self.a}")
        if self.c <= 0:
            raise ValueError(f"c must be positive, got {self.c}")
        if self.A < 0:
            raise ValueError(f"A must be >= 0, got {self.A}")
        if self.alpha <= 0 or self.gamma <= 0:
            raise ValueError("alpha and gamma must be positive")

    def a_k(self, k: int) -> float:
        """Step size at iteration ``k`` (k >= 1, matching Algorithm 1)."""
        if k < 1:
            raise ValueError(f"iteration index must be >= 1, got {k}")
        return self.a / (k + 1.0 + self.A) ** self.alpha

    def c_k(self, k: int) -> float:
        """Perturbation size at iteration ``k`` (k >= 1)."""
        if k < 1:
            raise ValueError(f"iteration index must be >= 1, got {k}")
        return self.c / (k + 1.0) ** self.gamma

    def validate(self) -> None:
        """Raise ``ValueError`` unless the convergence conditions hold.

        These are the analytic requirements on the decay exponents for
        Condition B.1'' of Spall's Theorem 7.1 (paper §4.2.4):
        Σ a_k = ∞ needs α ≤ 1, and Σ (a_k/c_k)² < ∞ needs 2(α − γ) > 1.
        """
        if self.alpha > 1.0:
            raise ValueError(
                f"alpha={self.alpha} > 1 makes sum(a_k) finite, violating "
                "the divergence condition"
            )
        if 2.0 * (self.alpha - self.gamma) <= 1.0:
            raise ValueError(
                f"2*(alpha - gamma) = {2 * (self.alpha - self.gamma):.3f} <= 1: "
                "sum((a_k/c_k)^2) diverges, violating Condition B.1''"
            )

    def is_convergent(self) -> bool:
        """Boolean form of :meth:`validate`."""
        try:
            self.validate()
        except ValueError:
            return False
        return True


def paper_gains() -> GainSchedule:
    """The gains used in the paper's experiments: A=1, a=10, c=2 (§6.2.1)."""
    return GainSchedule(a=10.0, c=2.0, A=1.0)
