"""Generic Simultaneous Perturbation Stochastic Approximation optimizer.

Implements the SPSA method of §4.2.3 / §5.3 as a reusable component:
NoStop drives it against the live streaming system, tests drive it
against synthetic noisy functions, and the Fig. 8 benchmark drives it
head-to-head with Bayesian optimization.

Per iteration k (Algorithm 1):

1. draw Δ_k from the perturbation distribution (symmetric Bernoulli ±1);
2. evaluate ``y(θ_k + c_k Δ_k)`` and ``y(θ_k − c_k Δ_k)`` —
   *two measurements regardless of dimension*, SPSA's key economy;
3. form the gradient estimate
   ``ĝ_k = (y⁺ − y⁻) / (2 c_k Δ_k)`` (elementwise division);
4. step ``θ_{k+1} = checkBound(θ_k − a_k ĝ_k)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from .bounds import Box
from .gains import GainSchedule
from .perturbation import BernoulliPerturbation, PerturbationGenerator

#: An objective measurement: maps a parameter vector to a noisy scalar.
Measure = Callable[[np.ndarray], float]


@dataclass(frozen=True)
class SPSAIteration:
    """Full record of one SPSA iteration (for Fig. 6-style evolution plots)."""

    k: int
    a_k: float
    c_k: float
    delta: np.ndarray
    theta: np.ndarray
    theta_plus: np.ndarray
    theta_minus: np.ndarray
    y_plus: float
    y_minus: float
    gradient: np.ndarray
    theta_next: np.ndarray

    @property
    def measurements(self) -> int:
        """Objective evaluations consumed by this iteration (always 2)."""
        return 2


class SPSAOptimizer:
    """Stateful SPSA minimizer over a box-constrained domain."""

    def __init__(
        self,
        gains: GainSchedule,
        box: Box,
        theta_initial: Sequence[float],
        perturbation: Optional[PerturbationGenerator] = None,
        seed: int = 0,
        validate_gains: bool = True,
    ) -> None:
        if validate_gains:
            gains.validate()
        self.gains = gains
        self.box = box
        self.perturbation = perturbation or BernoulliPerturbation()
        self.rng = np.random.default_rng(seed)
        self._theta_initial = box.project(theta_initial)
        self.theta = self._theta_initial.copy()
        self.k = 0
        self.history: List[SPSAIteration] = []

    @property
    def dim(self) -> int:
        """The ``getDimension(θ)`` of Table 1."""
        return self.box.dim

    def reset(self, theta_initial: Optional[Sequence[float]] = None) -> None:
        """The ``resetCoefficient()`` of Table 1: k = 0, x = θ_initial."""
        if theta_initial is not None:
            self._theta_initial = self.box.project(theta_initial)
        self.theta = self._theta_initial.copy()
        self.k = 0
        self.history.clear()

    def checkpoint(self) -> dict:
        """JSON-safe snapshot of the optimizer's full resumable state.

        Covers the iterate θ, the gain-schedule position k, the initial
        point (reset target), and the exact bit-generator state — a
        restored optimizer draws the identical perturbation sequence the
        original would have.  The iteration history is *not* serialized:
        it is explanatory output, never an input to future steps.
        """
        return {
            "k": int(self.k),
            "theta": [float(v) for v in self.theta],
            "thetaInitial": [float(v) for v in self._theta_initial],
            "rngState": self.rng.bit_generator.state,
        }

    def restore(self, state: dict) -> None:
        """Resume from a :meth:`checkpoint` snapshot, bit-exactly."""
        self.k = int(state["k"])
        self.theta = np.asarray(state["theta"], dtype=float)
        self._theta_initial = np.asarray(state["thetaInitial"], dtype=float)
        self.rng.bit_generator.state = state["rngState"]
        self.history.clear()

    def propose(self) -> tuple:
        """Generate this iteration's perturbed probe pair (θ⁺, θ⁻, Δ, c_k).

        Split from :meth:`apply_measurements` so callers that must
        interleave live system work between the two probe runs (NoStop)
        can drive the iteration in stages.
        """
        k = self.k + 1
        c_k = self.gains.c_k(k)
        delta = self.perturbation.sample(self.dim, self.rng)
        self.perturbation.validate_sample(delta)
        theta_plus = self.box.project(self.theta + c_k * delta)
        theta_minus = self.box.project(self.theta - c_k * delta)
        return theta_plus, theta_minus, delta, c_k

    def apply_measurements(
        self,
        theta_plus: np.ndarray,
        theta_minus: np.ndarray,
        delta: np.ndarray,
        c_k: float,
        y_plus: float,
        y_minus: float,
    ) -> SPSAIteration:
        """Complete the iteration begun by :meth:`propose`."""
        if not np.isfinite(y_plus) or not np.isfinite(y_minus):
            raise ValueError(
                f"objective measurements must be finite, got "
                f"y+={y_plus}, y-={y_minus}"
            )
        self.k += 1
        a_k = self.gains.a_k(self.k)
        gradient = (y_plus - y_minus) / (2.0 * c_k * delta)
        theta_next = self.box.project(self.theta - a_k * gradient)
        record = SPSAIteration(
            k=self.k,
            a_k=a_k,
            c_k=c_k,
            delta=delta,
            theta=self.theta.copy(),
            theta_plus=np.asarray(theta_plus, dtype=float),
            theta_minus=np.asarray(theta_minus, dtype=float),
            y_plus=float(y_plus),
            y_minus=float(y_minus),
            gradient=gradient,
            theta_next=theta_next,
        )
        self.theta = theta_next
        self.history.append(record)
        return record

    def step(self, measure: Measure) -> SPSAIteration:
        """One full iteration against a measurement callable."""
        theta_plus, theta_minus, delta, c_k = self.propose()
        y_plus = float(measure(theta_plus))
        y_minus = float(measure(theta_minus))
        return self.apply_measurements(
            theta_plus, theta_minus, delta, c_k, y_plus, y_minus
        )

    def minimize(
        self,
        measure: Measure,
        iterations: int,
        callback: Optional[Callable[[SPSAIteration], None]] = None,
    ) -> np.ndarray:
        """Run ``iterations`` steps; returns the final θ estimate."""
        if iterations < 0:
            raise ValueError("iterations must be >= 0")
        for _ in range(iterations):
            record = self.step(measure)
            if callback is not None:
                callback(record)
        return self.theta.copy()

    @property
    def total_measurements(self) -> int:
        """Objective evaluations consumed so far (2 per iteration)."""
        return 2 * len(self.history)
