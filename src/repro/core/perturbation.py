"""Simultaneous perturbation direction generators.

SPSA's convergence requires each component Δ_ki to be mutually
independent, symmetrically distributed around zero, uniformly bounded,
and — critically — to have a *finite inverse moment* E|Δ_ki^{-1}|
(paper §4.2.3, Condition B.6'').  The symmetric Bernoulli ±1 distribution
is the standard (and the paper's) choice; a Gaussian would violate the
inverse-moment condition, which is why it is deliberately absent here.

A segmented-uniform alternative is provided for the perturbation
ablation bench.
"""

from __future__ import annotations

import abc

import numpy as np


class PerturbationGenerator(abc.ABC):
    """Generates the random direction vector Δ_k."""

    @abc.abstractmethod
    def sample(self, dim: int, rng: np.random.Generator) -> np.ndarray:
        """Return a Δ vector of length ``dim`` (the ``getDelta(n)`` of
        Table 1)."""

    def validate_sample(self, delta: np.ndarray) -> None:
        """Check the B.6'' requirements on a sampled vector."""
        if np.any(delta == 0):
            raise ValueError("perturbation components must be nonzero")
        if not np.all(np.isfinite(1.0 / delta)):
            raise ValueError("perturbation components must have finite inverse")


class BernoulliPerturbation(PerturbationGenerator):
    """Symmetric Bernoulli ±``magnitude`` with probability 1/2 each.

    The paper's choice (§5.3.1): "each component of Δ_k is independently
    generated from a zero-mean symmetric Bernoulli ±1 distribution".
    """

    def __init__(self, magnitude: float = 1.0) -> None:
        if magnitude <= 0:
            raise ValueError(f"magnitude must be positive, got {magnitude}")
        self.magnitude = magnitude

    def sample(self, dim: int, rng: np.random.Generator) -> np.ndarray:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        signs = rng.integers(0, 2, size=dim) * 2 - 1
        return signs.astype(float) * self.magnitude


class SegmentedUniformPerturbation(PerturbationGenerator):
    """Uniform on ±[lo, hi] (excluding a neighborhood of zero).

    A valid SPSA perturbation (symmetric, bounded, finite inverse moment
    because the support excludes zero) used to ablate the Bernoulli
    choice.
    """

    def __init__(self, lo: float = 0.5, hi: float = 1.5) -> None:
        if lo <= 0 or hi <= lo:
            raise ValueError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
        self.lo = lo
        self.hi = hi

    def sample(self, dim: int, rng: np.random.Generator) -> np.ndarray:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        mags = rng.uniform(self.lo, self.hi, size=dim)
        signs = rng.integers(0, 2, size=dim) * 2 - 1
        return signs * mags
