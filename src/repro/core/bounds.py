"""Configuration-space bounds and scaling.

§5.1: the feasible ranges are derived from cluster capacity (executors)
and application requirements (batch interval), and "we apply a scale
function (e.g., min-max normalization) to normalize parameters into the
same range" — the paper maps both parameters to [1, 20] (§6.2.1).

:class:`Box` implements ``checkBound`` (Table 1): clipping to the box.
:class:`MinMaxScaler` maps between physical units (seconds, executor
counts) and the common scaled range SPSA operates in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class Box:
    """Axis-aligned feasible region with clipping projection."""

    lower: np.ndarray
    upper: np.ndarray

    def __init__(self, lower: Sequence[float], upper: Sequence[float]) -> None:
        lo = np.asarray(lower, dtype=float)
        hi = np.asarray(upper, dtype=float)
        if lo.shape != hi.shape or lo.ndim != 1:
            raise ValueError("lower and upper must be 1-D arrays of equal length")
        if np.any(lo >= hi):
            raise ValueError(f"each lower bound must be < upper bound: {lo} vs {hi}")
        object.__setattr__(self, "lower", lo)
        object.__setattr__(self, "upper", hi)

    @property
    def dim(self) -> int:
        return len(self.lower)

    @property
    def ranges(self) -> np.ndarray:
        return self.upper - self.lower

    def project(self, theta: Sequence[float]) -> np.ndarray:
        """The ``checkBound(θ)`` of Table 1: clip into the box."""
        t = np.asarray(theta, dtype=float)
        if t.shape != self.lower.shape:
            raise ValueError(
                f"theta has dimension {t.shape}, box has {self.lower.shape}"
            )
        return np.clip(t, self.lower, self.upper)

    def contains(self, theta: Sequence[float], atol: float = 1e-9) -> bool:
        t = np.asarray(theta, dtype=float)
        return bool(
            np.all(t >= self.lower - atol) and np.all(t <= self.upper + atol)
        )

    def center(self) -> np.ndarray:
        return (self.lower + self.upper) / 2.0


class MinMaxScaler:
    """Invertible affine map between a physical box and a scaled box.

    SPSA steps live in the scaled box (all axes share one range, so one
    gain ``a`` suits every parameter); configurations applied to the
    system live in the physical box.
    """

    def __init__(self, physical: Box, scaled: Box) -> None:
        if physical.dim != scaled.dim:
            raise ValueError(
                f"dimension mismatch: physical {physical.dim} vs scaled {scaled.dim}"
            )
        self.physical = physical
        self.scaled = scaled

    def to_scaled(self, theta_physical: Sequence[float]) -> np.ndarray:
        t = np.asarray(theta_physical, dtype=float)
        frac = (t - self.physical.lower) / self.physical.ranges
        return self.scaled.lower + frac * self.scaled.ranges

    def to_physical(self, theta_scaled: Sequence[float]) -> np.ndarray:
        t = np.asarray(theta_scaled, dtype=float)
        frac = (t - self.scaled.lower) / self.scaled.ranges
        return self.physical.lower + frac * self.physical.ranges


def paper_configuration_space(
    max_executors: int = 20,
    min_executors: int = 1,
    min_interval: float = 1.0,
    max_interval: float = 40.0,
    scaled_range: tuple = (1.0, 20.0),
) -> MinMaxScaler:
    """The §6.2.1 configuration space.

    Physical axes are ordered ``(batch interval seconds, executors)``;
    both are scaled to ``scaled_range`` (default [1, 20]).
    """
    if min_executors < 1 or max_executors <= min_executors:
        raise ValueError("need 1 <= min_executors < max_executors")
    if min_interval <= 0 or max_interval <= min_interval:
        raise ValueError("need 0 < min_interval < max_interval")
    physical = Box(
        [min_interval, float(min_executors)],
        [max_interval, float(max_executors)],
    )
    lo, hi = scaled_range
    scaled = Box([lo, lo], [hi, hi])
    return MinMaxScaler(physical, scaled)


def multi_parameter_space(
    max_executors: int = 20,
    min_executors: int = 1,
    min_interval: float = 1.0,
    max_interval: float = 40.0,
    min_partitions: int = 8,
    max_partitions: int = 120,
    scaled_range: tuple = (1.0, 20.0),
) -> MinMaxScaler:
    """Three-axis configuration space: interval, executors, partitions.

    Implements the paper's future-work extension (§7): "the SPSA
    algorithm is able to optimize multiple parameters simultaneously
    without additional overhead" — the per-stage partition count is the
    natural third tunable (too few partitions starve executor cores, too
    many pay task-dispatch overhead).
    """
    if min_executors < 1 or max_executors <= min_executors:
        raise ValueError("need 1 <= min_executors < max_executors")
    if min_interval <= 0 or max_interval <= min_interval:
        raise ValueError("need 0 < min_interval < max_interval")
    if min_partitions < 1 or max_partitions <= min_partitions:
        raise ValueError("need 1 <= min_partitions < max_partitions")
    physical = Box(
        [min_interval, float(min_executors), float(min_partitions)],
        [max_interval, float(max_executors), float(max_partitions)],
    )
    lo, hi = scaled_range
    scaled = Box([lo, lo, lo], [hi, hi, hi])
    return MinMaxScaler(physical, scaled)


def full_parameter_space(
    max_executors: int = 16,
    min_executors: int = 2,
    min_interval: float = 1.0,
    max_interval: float = 40.0,
    min_partitions: int = 8,
    max_partitions: int = 96,
    min_cores: int = 1,
    max_cores: int = 2,
    scaled_range: tuple = (1.0, 20.0),
) -> MinMaxScaler:
    """Four-axis configuration space: interval, executors, partitions,
    executor cores.

    The tuner tournament's θ: beyond the paper's two parameters and the
    §7 partitions extension, per-executor core count is the fourth
    tunable (arXiv:2309.01901 tunes executor sizing online).  Executor
    and core bounds must jointly fit the cluster —
    ``max_executors * max_cores`` may not exceed worker core capacity,
    which is why the defaults are tighter than the 2-axis space's.
    """
    if min_executors < 1 or max_executors <= min_executors:
        raise ValueError("need 1 <= min_executors < max_executors")
    if min_interval <= 0 or max_interval <= min_interval:
        raise ValueError("need 0 < min_interval < max_interval")
    if min_partitions < 1 or max_partitions <= min_partitions:
        raise ValueError("need 1 <= min_partitions < max_partitions")
    if min_cores < 1 or max_cores <= min_cores:
        raise ValueError("need 1 <= min_cores < max_cores")
    physical = Box(
        [min_interval, float(min_executors), float(min_partitions),
         float(min_cores)],
        [max_interval, float(max_executors), float(max_partitions),
         float(max_cores)],
    )
    lo, hi = scaled_range
    scaled = Box([lo, lo, lo, lo], [hi, hi, hi, hi])
    return MinMaxScaler(physical, scaled)
