"""Adapter binding NoStop to the simulated Spark Streaming substrate.

Implements :class:`~repro.core.adjust.ControlledSystem` over a
:class:`~repro.streaming.context.StreamingContext`: configuration changes
go through the context's runtime-reconfiguration API, and measurements
are assembled from listener batch reports through the §5.4 collection
protocol.

A production deployment would replace this single class with an adapter
speaking to a real cluster (Spark listener WebSocket + cluster-manager
API); everything above it — SPSA, the Adjust function, pause/reset rules
— is substrate-agnostic, which is the paper's generality claim.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cluster.resource_manager import InsufficientResourcesError
from repro.streaming.context import StreamingContext
from repro.streaming.metrics import BatchInfo

from .adjust import ControlledSystem
from .metrics_collector import Measurement, MetricsCollector


class SimulatedSparkSystem(ControlledSystem):
    """Drive a :class:`StreamingContext` as a controlled system.

    Parameters
    ----------
    context:
        The simulated streaming application.
    max_boundaries_per_measurement:
        Safety valve: how many batch boundaries to advance while waiting
        for one measurement before summarizing whatever has arrived.  In
        deeply unstable configurations completions lag boundaries, so a
        cap keeps Adjust calls bounded (the real system has the same
        property: NoStop would observe a huge processing time and move
        on).
    """

    def __init__(
        self,
        context: StreamingContext,
        max_boundaries_per_measurement: int = 400,
    ) -> None:
        if max_boundaries_per_measurement < 1:
            raise ValueError("max_boundaries_per_measurement must be >= 1")
        self.context = context
        self.max_boundaries = max_boundaries_per_measurement
        self._last_config_time = 0.0
        #: whether the most recent apply_configuration failed (guarded
        #: reconfiguration: the caller must not trust the gradient)
        self.last_apply_failed = False
        #: total failed configuration applications
        self.failed_applies = 0
        #: optional fault-telemetry source (e.g. a ChaosEngine) exposing
        #: a ``faults_active`` attribute; drives degraded-mode measuring
        self.health_source = None

    # -- ControlledSystem ---------------------------------------------------

    def degraded(self) -> bool:
        source = self.health_source
        return bool(source is not None and source.faults_active)

    def apply_configuration(
        self,
        batch_interval: float,
        num_executors: int,
        partitions: Optional[int] = None,
        executor_cores: Optional[int] = None,
    ) -> None:
        """Guarded reconfiguration.

        During an infrastructure outage the cluster may be unable to host
        the requested executor count (or per-executor sizing); Spark's
        dynamic-allocation request would simply not be honored.  Rather
        than crashing the optimizer (or worse, silently measuring a
        half-applied θ as if it were θ), the guard keeps the live pool,
        applies the remaining tunables, and raises the
        ``last_apply_failed`` flag so Adjust marks the measurement
        corrupted and the controller skips the SPSA step.
        """
        self.last_apply_failed = False
        try:
            self.context.change_configuration(
                batch_interval=batch_interval,
                num_executors=num_executors,
                partitions=partitions,
                executor_cores=executor_cores,
            )
        except InsufficientResourcesError:
            self.last_apply_failed = True
            self.failed_applies += 1
            # Fall back: keep the surviving executor pool (the scale
            # failed atomically), still honor interval/partitions.
            self.context.change_configuration(
                batch_interval=batch_interval, partitions=partitions
            )
        self._last_config_time = self.context.time

    def collect(self, collector: MetricsCollector) -> Measurement:
        """Advance the pipeline until the collector fills its window.

        Only batches *formed* under the current configuration count:
        when earlier (possibly unstable) probes left a queue backlog, the
        engine first finishes stale batches whose sizes reflect old
        intervals — measuring those would hand SPSA a gradient for a
        configuration it is no longer probing.  This generalizes the
        paper's discard-first-batch rule (§5.4) to arbitrarily deep
        backlogs.

        If the boundary cap is hit first (pathologically unstable
        config), the partial buffer is summarized; if not even one batch
        completed, a synthetic worst-case measurement is built from the
        engine backlog so the optimizer sees a strongly penalized value
        rather than hanging.
        """
        fallback: List[BatchInfo] = []
        for _ in range(self.max_boundaries):
            completed = self.context.advance_one_batch()
            for info in completed:
                if info.batch_time < self._last_config_time:
                    continue  # stale batch from a previous configuration
                fallback.append(info)
                measurement = collector.offer(info)
                if measurement is not None:
                    return measurement
        # Cap reached: summarize whatever arrived.
        clean = [b for b in fallback if not b.first_after_reconfig]
        if clean:
            return collector.summarize(clean)
        if fallback:
            return collector.summarize(fallback)
        # No batch formed under this configuration completed within the
        # cap (deep backlog from earlier unstable probes).  Fall back to
        # the most recent *stale* completions: their processing times
        # reflect the current executor pool (jobs always run on the live
        # pool), which keeps the objective batch-local and bounded — the
        # paper's G(θ) never observes scheduling delay, only per-batch
        # processing time.
        recent = self.context.listener.metrics.recent(5)
        if recent:
            return collector.summarize(list(recent))
        proc = self.context.batch_interval * 2.0
        return Measurement(
            mean_processing_time=proc,
            mean_end_to_end_delay=proc,
            mean_scheduling_delay=proc,
            mean_records=0.0,
            batches_used=1,
            skipped=0,
        )

    @property
    def time(self) -> float:
        return self.context.time

    def observed_input_rate(self, window: Optional[float] = None) -> float:
        w = window if window is not None else max(
            self.context.batch_interval, 10.0
        )
        return self.context.receiver.observed_rate(window=w)

    @property
    def config_changes(self) -> int:
        return self.context.config_changes
