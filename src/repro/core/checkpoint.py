"""Controller checkpointing: serialize and restore full NoStop state.

The paper's §5.5 restart rule is *stateless*: any driver failure (or
rate-drift reset) throws away the SPSA iterate, the gain-schedule
position, the ρ penalty, and every configuration evaluation, and the
optimizer starts over from the center of the box.  arXiv:2309.01901
names exactly this restart cost as NoStop's core limitation.

This module provides the alternative the recovery experiments compare
against: a **checkpoint** capturing everything the controller needs to
resume mid-optimization —

* the SPSA iterate θ, iteration counter k, and exact RNG bit-generator
  state (so future perturbation draws are bit-identical);
* the ρ penalty schedule position;
* the pause rule's full evaluation history (the ranking that decides
  both pausing and the parked optimum);
* the §5.4 metrics-collector window state;
* the §5.5 rate-monitor window, hysteresis, and reset count;
* controller round/pause bookkeeping and the audit-trail cursor.

Checkpoints are plain JSON-safe dicts: journal them, write them to
disk, or hand them to a freshly constructed controller on another
"machine".  A controller restored onto the same live system continues
**bit-exactly** — the continuation's round records match an
uninterrupted run's — which the checkpoint test suite hard-asserts via
audit-trail replay.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .nostop import NoStopController

#: Format version stamped into every checkpoint.
CHECKPOINT_VERSION = 1


def controller_checkpoint(controller: "NoStopController") -> Dict[str, Any]:
    """Snapshot ``controller`` into a JSON-safe dict."""
    report = controller.report
    return {
        "version": CHECKPOINT_VERSION,
        "simTime": float(controller.system.time),
        "roundsRun": int(controller._rounds_run),
        "paused": bool(controller.paused),
        "startTime": float(controller._start_time),
        "adjustCalls": int(controller.adjust.calls),
        "spsa": controller.spsa.checkpoint(),
        "rho": controller.rho.checkpoint(),
        "pauseRule": controller.pause_rule.checkpoint(),
        "collector": controller.collector.checkpoint(),
        "rateMonitor": controller.rate_monitor.checkpoint(),
        "counters": {
            "poisonedStepsAvoided": int(controller.poisoned_steps_avoided),
            "poisonedStepsTaken": int(controller.poisoned_steps_taken),
            "corruptedRetries": int(controller.corrupted_retries),
        },
        "report": {
            "resets": int(report.resets),
            "firstPauseRound": report.first_pause_round,
            "firstPauseTime": report.first_pause_time,
            "adjustCallsToPause": report.adjust_calls_to_pause,
        },
        "audit": {
            "decisions": len(controller.audit.decisions),
            "firings": len(controller.audit.firings),
        },
    }


def controller_restore(
    controller: "NoStopController",
    state: Dict[str, Any],
    reapply: bool = False,
) -> None:
    """Load a checkpoint into ``controller``, resuming its trajectory.

    With ``reapply=True`` the checkpointed configuration is pushed back
    onto the system — what a restarted driver does when it resubmits the
    job — at the cost of one extra configuration change.  Leave it False
    when the system still holds the configuration (in-process handover),
    which keeps the continuation bit-exact.
    """
    version = state.get("version")
    if version != CHECKPOINT_VERSION:
        raise ValueError(
            f"unsupported checkpoint version {version!r} "
            f"(expected {CHECKPOINT_VERSION})"
        )
    controller.spsa.restore(state["spsa"])
    controller.rho.restore(state["rho"])
    controller.pause_rule.restore(state["pauseRule"])
    controller.collector.restore(state["collector"])
    controller.rate_monitor.restore(state["rateMonitor"])
    controller.paused = bool(state["paused"])
    controller._rounds_run = int(state["roundsRun"])
    controller._start_time = float(state["startTime"])
    controller.adjust.calls = int(state["adjustCalls"])
    counters = state["counters"]
    controller.poisoned_steps_avoided = int(counters["poisonedStepsAvoided"])
    controller.poisoned_steps_taken = int(counters["poisonedStepsTaken"])
    controller.corrupted_retries = int(counters["corruptedRetries"])
    report = state["report"]
    controller.report.resets = int(report["resets"])
    controller.report.first_pause_round = report["firstPauseRound"]
    controller.report.first_pause_time = report["firstPauseTime"]
    controller.report.adjust_calls_to_pause = report["adjustCallsToPause"]

    if reapply:
        import numpy as np

        from .adjust import theta_to_configuration

        if controller.paused and controller.pause_rule.evaluations:
            theta = np.asarray(
                controller.pause_rule.best_config().theta, dtype=float
            )
        else:
            theta = controller.spsa.theta
        config = theta_to_configuration(theta, controller.scaler)
        controller.system.apply_configuration(
            config[0], config[1],
            partitions=config[2] if len(config) > 2 else None,
            executor_cores=config[3] if len(config) > 3 else None,
        )

    audit_cursor = state.get("audit", {})
    controller.audit.record_firing(
        "restore", controller._rounds_run, controller.system.time,
        detail=(
            f"controller restored from checkpoint: k={controller.spsa.k}, "
            f"paused={controller.paused}, "
            f"evaluations={controller.pause_rule.evaluations}, "
            f"audit cursor decisions={audit_cursor.get('decisions', 0)} "
            f"firings={audit_cursor.get('firings', 0)}"
        ),
    )


def save_checkpoint(state: Dict[str, Any], path: Path) -> Path:
    """Write a checkpoint dict to disk as canonical JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(state, fh, sort_keys=True)
    return path


def load_checkpoint(path: Path) -> Dict[str, Any]:
    """Read a checkpoint dict written by :func:`save_checkpoint`."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)
