"""SPSA variants from the stochastic-approximation literature.

The paper uses the standard two-measurement SPSA (Spall 1998).  Two
well-known variants matter for the configuration-tuning setting and are
provided for ablation and for users with different measurement budgets:

* **One-measurement SPSA** (Spall 1997): gradient estimate
  ``ĝ_k = y(θ + c_k Δ) / c_k · Δ^{-1}`` — *half* the live configuration
  changes per iteration, at the cost of a higher-variance estimate.
  Attractive when every configuration change disturbs production.
* **Gradient-averaged SPSA**: average ``m`` independent two-measurement
  estimates per iteration (``2m`` changes) — lower-variance steps for
  very noisy systems, at proportionally higher measurement cost.

Both share the gain sequences, perturbation distributions, and bound
projection of the standard optimizer.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .bounds import Box
from .gains import GainSchedule
from .perturbation import PerturbationGenerator
from .spsa import Measure, SPSAIteration, SPSAOptimizer


class OneMeasurementSPSA(SPSAOptimizer):
    """SPSA with a single objective measurement per iteration.

    The gradient estimate is unbiased up to O(c_k) (vs O(c_k²) for the
    two-sided form) with substantially higher variance; convergence
    conditions are unchanged.
    """

    def step(self, measure: Measure) -> SPSAIteration:
        theta_plus, _theta_minus, delta, c_k = self.propose()
        y_plus = float(measure(theta_plus))
        if not np.isfinite(y_plus):
            raise ValueError(f"objective measurement must be finite, got {y_plus}")
        self.k += 1
        a_k = self.gains.a_k(self.k)
        gradient = y_plus / (c_k * delta)
        theta_next = self.box.project(self.theta - a_k * gradient)
        record = SPSAIteration(
            k=self.k,
            a_k=a_k,
            c_k=c_k,
            delta=delta,
            theta=self.theta.copy(),
            theta_plus=np.asarray(theta_plus, dtype=float),
            theta_minus=self.theta.copy(),  # unused probe
            y_plus=y_plus,
            y_minus=float("nan"),
            gradient=gradient,
            theta_next=theta_next,
        )
        self.theta = theta_next
        self.history.append(record)
        return record

    @property
    def total_measurements(self) -> int:
        """One measurement per iteration."""
        return len(self.history)


class AveragedSPSA(SPSAOptimizer):
    """SPSA averaging ``m`` simultaneous-perturbation gradient estimates.

    Variance of the gradient estimate drops by 1/m per iteration in
    exchange for ``2m`` measurements; useful when measurement noise, not
    measurement cost, limits convergence.
    """

    def __init__(
        self,
        gains: GainSchedule,
        box: Box,
        theta_initial: Sequence[float],
        num_estimates: int = 2,
        perturbation: Optional[PerturbationGenerator] = None,
        seed: int = 0,
        validate_gains: bool = True,
    ) -> None:
        if num_estimates < 1:
            raise ValueError(f"num_estimates must be >= 1, got {num_estimates}")
        super().__init__(
            gains=gains,
            box=box,
            theta_initial=theta_initial,
            perturbation=perturbation,
            seed=seed,
            validate_gains=validate_gains,
        )
        self.num_estimates = num_estimates
        self._measurements = 0

    def step(self, measure: Measure) -> SPSAIteration:
        k = self.k + 1
        c_k = self.gains.c_k(k)
        gradients = []
        last = None
        for _ in range(self.num_estimates):
            delta = self.perturbation.sample(self.dim, self.rng)
            self.perturbation.validate_sample(delta)
            theta_plus = self.box.project(self.theta + c_k * delta)
            theta_minus = self.box.project(self.theta - c_k * delta)
            y_plus = float(measure(theta_plus))
            y_minus = float(measure(theta_minus))
            if not (np.isfinite(y_plus) and np.isfinite(y_minus)):
                raise ValueError("objective measurements must be finite")
            gradients.append((y_plus - y_minus) / (2.0 * c_k * delta))
            last = (delta, theta_plus, theta_minus, y_plus, y_minus)
            self._measurements += 2
        gradient = np.mean(gradients, axis=0)
        self.k = k
        a_k = self.gains.a_k(self.k)
        theta_next = self.box.project(self.theta - a_k * gradient)
        delta, theta_plus, theta_minus, y_plus, y_minus = last
        record = SPSAIteration(
            k=self.k,
            a_k=a_k,
            c_k=c_k,
            delta=delta,
            theta=self.theta.copy(),
            theta_plus=theta_plus,
            theta_minus=theta_minus,
            y_plus=y_plus,
            y_minus=y_minus,
            gradient=gradient,
            theta_next=theta_next,
        )
        self.theta = theta_next
        self.history.append(record)
        return record

    @property
    def total_measurements(self) -> int:
        return self._measurements

    def reset(self, theta_initial: Optional[Sequence[float]] = None) -> None:
        super().reset(theta_initial)
        self._measurements = 0


class BlockedSPSA(SPSAOptimizer):
    """SPSA with step blocking (Spall's practical guideline).

    A candidate update is *rejected* when it would move θ by more than
    ``max_step`` in any scaled coordinate — guarding against the
    occasional wild gradient estimate that a noisy system produces (the
    same concern that motivates the paper's growing-ρ schedule).
    """

    def __init__(
        self,
        gains: GainSchedule,
        box: Box,
        theta_initial: Sequence[float],
        max_step: float = 3.0,
        perturbation: Optional[PerturbationGenerator] = None,
        seed: int = 0,
        validate_gains: bool = True,
    ) -> None:
        if max_step <= 0:
            raise ValueError(f"max_step must be positive, got {max_step}")
        super().__init__(
            gains=gains,
            box=box,
            theta_initial=theta_initial,
            perturbation=perturbation,
            seed=seed,
            validate_gains=validate_gains,
        )
        self.max_step = max_step
        self.blocked_steps = 0

    def apply_measurements(
        self, theta_plus, theta_minus, delta, c_k, y_plus, y_minus
    ) -> SPSAIteration:
        record = super().apply_measurements(
            theta_plus, theta_minus, delta, c_k, y_plus, y_minus
        )
        step = record.theta_next - record.theta
        if np.max(np.abs(step)) > self.max_step:
            # Reject: keep the previous estimate (iteration still counts,
            # gains keep decaying — standard blocking semantics).
            self.theta = record.theta.copy()
            self.blocked_steps += 1
        return record
