"""Systematic gain selection (§5.6 + the paper's future-work direction).

§5.6 gives three rules of thumb for choosing the SPSA coefficients:

* ``A`` — much less than (≤ 10% of) the expected iteration count; the
  paper's empirical study recommends A = 1;
* ``a`` — half of the configuration range;
* ``c`` — approximately the standard deviation of the measurement y(θ).

The paper's conclusion lists "intelligent approaches to determine gain
sequences systematically based on some user-level knowledge such as
cluster capacity and throughput estimate" as future work;
:func:`suggest_gains` implements that: it derives all three values from
the scaled configuration box and an (optionally measured) objective
noise estimate, so domain experts need not hand-tune them.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from .bounds import Box
from .gains import GainSchedule


def suggest_gains(
    scaled_box: Box,
    expected_iterations: int = 50,
    y_std: Optional[float] = None,
) -> GainSchedule:
    """Derive (A, a, c) from the configuration space per §5.6.

    Parameters
    ----------
    scaled_box:
        The scaled configuration box SPSA operates in.
    expected_iterations:
        Expected optimization horizon; A is set to min(1, 10% of it) —
        the paper's empirical study found A = 1 effective for horizons of
        tens of iterations.
    y_std:
        Standard deviation of the objective measurement.  When None, c
        defaults to 10% of the scaled range — roughly the measurement
        noise of a well-sized metric window in the simulator and the
        paper's c = 2 on a [1, 20] range.
    """
    if expected_iterations < 1:
        raise ValueError("expected_iterations must be >= 1")
    if y_std is not None and y_std <= 0:
        raise ValueError("y_std must be positive when given")
    span = float(np.max(scaled_box.ranges))
    a = span / 2.0
    c = y_std if y_std is not None else span * 0.10
    # c must stay a meaningful fraction of the space: too small and the
    # gradient estimate drowns in noise, too large and probes leave the
    # locally-linear region.
    c = float(np.clip(c, span * 0.02, span * 0.5))
    A = max(1.0, 0.1 * expected_iterations) if expected_iterations >= 20 else 1.0
    return GainSchedule(a=a, c=c, A=A)


def estimate_measurement_std(
    measure: Callable[[np.ndarray], float],
    theta: Sequence[float],
    probes: int = 5,
) -> float:
    """Estimate std(y(θ)) by repeated measurement at a fixed θ.

    A pre-flight helper for :func:`suggest_gains`: run a handful of
    measurement windows at the starting configuration and return their
    standard deviation.
    """
    if probes < 2:
        raise ValueError("need at least 2 probes")
    t = np.asarray(theta, dtype=float)
    values = np.array([float(measure(t)) for _ in range(probes)])
    std = float(np.std(values, ddof=1))
    return max(std, 1e-6)
