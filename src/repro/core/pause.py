"""Impeded-progress pause rule (§5.3.5).

"Once NoStop reaches the optimal configuration, it halts the optimization
process until the system becomes unstable. ... if the standard deviation
of the end-to-end delay resulted from N best configurations is smaller
than a threshold S, we pause the optimization process."

The rule keeps every evaluated (configuration, delay) pair, ranks them,
and fires when the N best configurations' delays have converged to
within S.

Two reproduction-motivated details (documented in DESIGN.md):

* Ranking places configurations that *satisfied the stability
  constraint* (Eq. 2, ``interval >= processing time``) ahead of ones
  that violated it — Eq. 3 is only the SPSA-friendly relaxation of the
  hard SSPO constraint, and "the optimal configuration" NoStop parks at
  must actually be feasible.
* The "end-to-end delay resulted from" a configuration is its
  steady-state estimate (``interval/2 + processing time``): in a system
  carrying queue backlog from earlier probes, the raw measured delay
  reflects history, not the probed configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

#: Headroom required of a configuration before it ranks as feasible.
#: θ* is "not a single point but an acceptable area" (§4.2.4); ranking a
#: configuration as stable only when its measured mean leaves ~8% slack
#: keeps the parked optimum off the exact frontier, where per-batch noise
#: (and ML iteration variance) would violate Eq. 2 on every other batch.
STABILITY_MARGIN = 0.08


def steady_state_delay(batch_interval: float, processing_time: float) -> float:
    """Expected record delay of a configuration in isolation.

    A record waits half an interval for its batch to close (uniform
    arrivals), then the batch is processed; an unstable configuration
    additionally queues by its per-batch deficit.
    """
    if batch_interval <= 0:
        raise ValueError("batch_interval must be positive")
    if processing_time < 0:
        raise ValueError("processing_time must be >= 0")
    return batch_interval / 2.0 + processing_time


@dataclass(frozen=True)
class EvaluatedConfig:
    """One live evaluation of a configuration."""

    theta: Tuple[float, ...]
    objective: float
    end_to_end_delay: float
    iteration: int
    batch_interval: float = 0.0
    num_executors: int = 0
    mean_processing_time: float = 0.0
    stable: bool = True

    @property
    def sort_key(self) -> Tuple[bool, float, Tuple[float, ...]]:
        """Feasible (stable) configurations first, then by objective.

        Exact objective ties break lexicographically on θ, never on
        insertion order: leaderboards and ``best_config`` stay
        deterministic regardless of the order evaluations arrived in
        (seed-order independence).
        """
        return (not self.stable, self.objective, self.theta)


class PauseRule:
    """Pause when the N best configurations' delays agree within S.

    Paper settings (§6.2.1): N = 10 consecutive optimization rounds,
    S = 1 (second).
    """

    def __init__(self, n_best: int = 10, std_threshold: float = 1.0) -> None:
        if n_best < 2:
            raise ValueError(f"n_best must be >= 2, got {n_best}")
        if std_threshold <= 0:
            raise ValueError(
                f"std_threshold must be positive, got {std_threshold}"
            )
        self.n_best = n_best
        self.std_threshold = std_threshold
        self._history: List[EvaluatedConfig] = []

    def record(self, evaluated: EvaluatedConfig) -> None:
        self._history.append(evaluated)

    @property
    def evaluations(self) -> int:
        return len(self._history)

    def measurement_count(self, theta: Tuple[float, ...]) -> int:
        """How many times a specific configuration has been measured."""
        return sum(1 for e in self._history if e.theta == tuple(theta))

    def _grouped(self) -> List[EvaluatedConfig]:
        """One aggregated record per distinct configuration.

        A single lucky measurement window must not crown a configuration
        forever (winner's curse over dozens of noisy evaluations):
        repeated measurements of the same θ — from revisited probes,
        paused-state monitoring, or the end-of-run confirmation pass —
        are averaged, and stability is re-judged on the averaged
        processing time.
        """
        groups: Dict[Tuple[float, ...], List[EvaluatedConfig]] = {}
        for e in self._history:
            groups.setdefault(e.theta, []).append(e)
        merged: List[EvaluatedConfig] = []
        for theta, evals in groups.items():
            if len(evals) == 1:
                merged.append(evals[0])
                continue
            proc = float(np.mean([e.mean_processing_time for e in evals]))
            interval = evals[-1].batch_interval
            if interval > 0:
                stable = proc <= interval * (1.0 - STABILITY_MARGIN)
            else:  # hand-built records without config details
                stable = sum(e.stable for e in evals) * 2 > len(evals)
            merged.append(
                EvaluatedConfig(
                    theta=theta,
                    objective=float(np.mean([e.objective for e in evals])),
                    end_to_end_delay=float(
                        np.mean([e.end_to_end_delay for e in evals])
                    ),
                    iteration=max(e.iteration for e in evals),
                    batch_interval=interval,
                    num_executors=evals[-1].num_executors,
                    mean_processing_time=proc,
                    stable=stable,
                )
            )
        return merged

    def best(self, n: Optional[int] = None) -> List[EvaluatedConfig]:
        """The ``n`` best configurations (stable first, default ``n_best``).

        Configurations measured multiple times enter as one averaged
        record each.
        """
        n = self.n_best if n is None else n
        return sorted(self._grouped(), key=lambda e: e.sort_key)[:n]

    def best_config(self) -> EvaluatedConfig:
        if not self._history:
            raise RuntimeError("no evaluations recorded yet")
        return min(self._grouped(), key=lambda e: e.sort_key)

    def should_pause(self) -> bool:
        """The ``satisfyPauseCondition`` of Table 1.

        The gate counts *distinct grouped* configurations, not raw
        history entries: ``best()`` dedups by θ, so ten repeated
        measurements of two configs would otherwise pass a raw-length
        gate and take the std over just two delays — pausing far too
        early on a sample the rule was never meant to accept.
        """
        grouped = self._grouped()
        if len(grouped) < self.n_best:
            return False
        ranked = sorted(grouped, key=lambda e: e.sort_key)[: self.n_best]
        delays = np.array([e.end_to_end_delay for e in ranked])
        return bool(np.std(delays) < self.std_threshold)

    def reset(self) -> None:
        """Clear history (used by ``resetCoefficient``, §5.5)."""
        self._history.clear()

    def checkpoint(self) -> list:
        """JSON-safe snapshot of the full evaluation history."""
        return [
            {
                "theta": [float(v) for v in e.theta],
                "objective": float(e.objective),
                "endToEndDelay": float(e.end_to_end_delay),
                "iteration": int(e.iteration),
                "batchInterval": float(e.batch_interval),
                "numExecutors": int(e.num_executors),
                "meanProcessingTime": float(e.mean_processing_time),
                "stable": bool(e.stable),
            }
            for e in self._history
        ]

    def restore(self, state: list) -> None:
        """Resume from a :meth:`checkpoint` snapshot."""
        self._history = [
            EvaluatedConfig(
                theta=tuple(float(v) for v in d["theta"]),
                objective=float(d["objective"]),
                end_to_end_delay=float(d["endToEndDelay"]),
                iteration=int(d["iteration"]),
                batch_interval=float(d["batchInterval"]),
                num_executors=int(d["numExecutors"]),
                mean_processing_time=float(d["meanProcessingTime"]),
                stable=bool(d["stable"]),
            )
            for d in state
        ]
