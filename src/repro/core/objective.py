"""The penalized SSPO objective (Eq. 3) and the ρ schedule.

The constrained problem "minimize batch interval subject to
interval >= processing time" becomes the unconstrained

.. math::

    G(\\theta) = BatchInterval + \\rho \\cdot \\max(0,
        BatchProcessingTime - BatchInterval)

where ρ starts small (large early gain sequences would otherwise produce
wild gradients off the penalty cliff) and grows by 0.1 per iteration up
to a cap of 2 (Algorithm 1), so late iterations firmly respect the
stability constraint without drowning the interval-minimization goal.
"""

from __future__ import annotations

from dataclasses import dataclass


def penalized_objective(
    batch_interval: float, processing_time: float, rho: float
) -> float:
    """Evaluate Eq. 3 for one measurement."""
    if batch_interval <= 0:
        raise ValueError(f"batch_interval must be positive, got {batch_interval}")
    if processing_time < 0:
        raise ValueError(f"processing_time must be >= 0, got {processing_time}")
    if rho < 0:
        raise ValueError(f"rho must be >= 0, got {rho}")
    return batch_interval + rho * max(0.0, processing_time - batch_interval)


@dataclass
class RhoSchedule:
    """Additive-increase-to-cap penalty coefficient (Algorithm 1).

    ``rho = 1``, then ``rho = min(rho + 0.1, 2)`` once per iteration.
    """

    initial: float = 1.0
    increment: float = 0.1
    cap: float = 2.0

    def __post_init__(self) -> None:
        if self.initial < 0:
            raise ValueError("initial rho must be >= 0")
        if self.increment < 0:
            raise ValueError("increment must be >= 0")
        if self.cap < self.initial:
            raise ValueError(
                f"cap {self.cap} must be >= initial {self.initial}"
            )
        self._value = self.initial

    @property
    def value(self) -> float:
        return self._value

    def step(self) -> float:
        """Advance the schedule one iteration; returns the new ρ."""
        self._value = min(self._value + self.increment, self.cap)
        return self._value

    def reset(self) -> None:
        """Return to the initial ρ (used on an optimization restart)."""
        self._value = self.initial

    def checkpoint(self) -> dict:
        """JSON-safe snapshot of the schedule position."""
        return {"value": float(self._value)}

    def restore(self, state: dict) -> None:
        """Resume from a :meth:`checkpoint` snapshot."""
        self._value = float(state["value"])
