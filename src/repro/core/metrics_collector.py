"""Metric-collection protocol (§5.4), hardened against fault transients.

Two rules govern how NoStop turns raw batch reports into one measurement:

1. "The first processed batch after changing configurations is not
   considered" — reconfiguration triggers jar shipping and executor
   initialization, inflating that batch's processing time.
2. "System metrics are collected for a certain number of batches, and
   the average processing time is calculated" — with an
   *additive-increase* window while the system sits at an optimum (one
   extra batch per newly completed batch, up to a cap), so a temporary
   wobble does not needlessly restart optimization, while a real change
   is still noticed within the capped window.

Two chaos-era extensions (both off by default, enabled by the hardened
controller):

3. **MAD outlier rejection** — an executor crash or straggler mid-window
   produces one wildly inflated batch among otherwise clean ones.  With
   ``mad_threshold`` set, batches whose modified z-score (0.6745·(x−med)
   / MAD over processing times) exceeds the threshold are dropped and
   the window refills once (one retry); if corruption persists, the
   measurement is summarized anyway but flagged *tainted* so the
   optimizer can refuse to differentiate through it.  Rejection is
   one-sided: only abnormally *slow* batches are outliers — faults
   inflate processing time, and discarding fast batches would bias the
   objective optimistically.

4. **Degraded mode** — while the chaos engine reports active faults the
   effective window widens by ``degraded_extra`` batches, trading
   measurement latency for variance exactly when variance spikes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.streaming.metrics import BatchInfo


@dataclass(frozen=True)
class Measurement:
    """Aggregate over one measurement window of batches."""

    mean_processing_time: float
    mean_end_to_end_delay: float
    mean_scheduling_delay: float
    mean_records: float
    batches_used: int
    skipped: int
    std_processing_time: float = 0.0
    outliers_rejected: int = 0
    """Batches this window dropped as fault-corrupted (MAD rejection)."""
    tainted: bool = False
    """True when the rejection budget ran out and suspect batches remain
    in the average — the optimizer should not trust this gradient."""

    def __post_init__(self) -> None:
        if self.batches_used < 1:
            raise ValueError("a measurement needs at least one batch")


class MetricsCollector:
    """Build :class:`Measurement` objects from listener batch reports."""

    def __init__(
        self,
        window: int = 3,
        max_window: int = 12,
        skip_first_after_reconfig: bool = True,
        mad_threshold: Optional[float] = None,
        reject_outliers: bool = True,
        max_retries: int = 1,
        degraded_extra: int = 3,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if max_window < window:
            raise ValueError(
                f"max_window ({max_window}) must be >= window ({window})"
            )
        if mad_threshold is not None and mad_threshold <= 0:
            raise ValueError(
                f"mad_threshold must be positive, got {mad_threshold}"
            )
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if degraded_extra < 0:
            raise ValueError(f"degraded_extra must be >= 0, got {degraded_extra}")
        self.base_window = window
        self.max_window = max_window
        self.skip_first_after_reconfig = skip_first_after_reconfig
        self.mad_threshold = mad_threshold
        #: When False, outliers are *detected* (the measurement is
        #: flagged tainted) but kept in the average — detection-only
        #: mode, used by the unhardened ablation arm so poisoned steps
        #: can be counted without changing the paper's measurements.
        self.reject_outliers = reject_outliers
        self.max_retries = max_retries
        self.degraded_extra = degraded_extra
        self._window = window
        self._degraded = False
        self._buffer: List[BatchInfo] = []
        self._retries_used = 0
        self._window_rejected = 0
        self.total_skipped = 0
        #: cumulative fault-corrupted batches dropped across all windows
        self.outliers_rejected = 0
        #: whether the most recent measurement was flagged tainted
        self.last_tainted = False

    # -- window management (additive increase, §5.4) -----------------------

    @property
    def window(self) -> int:
        """Current number of batches required per measurement.

        Includes the degraded-mode widening: while faults are active the
        window grows by ``degraded_extra`` so one transient cannot
        dominate the average.
        """
        w = self._window
        if self._degraded:
            w += self.degraded_extra
        return w

    @property
    def degraded(self) -> bool:
        return self._degraded

    def set_degraded(self, active: bool) -> None:
        """Enter/leave degraded mode (faults active on the substrate).

        Leaving degraded mode flushes the in-progress window: batches
        buffered under the widened window were collected while faults
        were active, and the window shrinks back the moment the flag
        clears — without the flush the very next ``offer`` would
        summarize an oversized window that mixes degraded-era batches
        into the clean measurement.
        """
        active = bool(active)
        if self._degraded and not active and self._buffer:
            self._buffer.clear()
        self._degraded = active

    def relax_window(self) -> int:
        """Additive increase: one more batch per completed batch at the
        optimum, capped at ``max_window``."""
        self._window = min(self._window + 1, self.max_window)
        return self._window

    def reset_window(self) -> None:
        """Shrink back to the base window (on reset / instability)."""
        self._window = self.base_window
        self._buffer.clear()

    def checkpoint(self) -> dict:
        """JSON-safe snapshot of the resumable window state.

        The in-progress batch buffer is deliberately *not* serialized:
        every probe begins with :meth:`start_measurement`, which clears
        it, so dropping it loses nothing — while ``total_skipped`` must
        survive because every future :class:`Measurement` echoes it.
        """
        return {
            "window": int(self._window),
            "degraded": bool(self._degraded),
            "totalSkipped": int(self.total_skipped),
            "outliersRejected": int(self.outliers_rejected),
            "lastTainted": bool(self.last_tainted),
        }

    def restore(self, state: dict) -> None:
        """Resume from a :meth:`checkpoint` snapshot."""
        self._window = int(state["window"])
        self._degraded = bool(state["degraded"])
        self.total_skipped = int(state["totalSkipped"])
        self.outliers_rejected = int(state["outliersRejected"])
        self.last_tainted = bool(state["lastTainted"])
        self._buffer.clear()
        self._retries_used = 0
        self._window_rejected = 0

    def start_measurement(self) -> None:
        """Discard buffered batches from a previous configuration.

        A measurement window must cover exactly one configuration;
        without this, a window left half-full by one probe would blend
        into the next probe's average.  Also resets the per-measurement
        outlier-retry budget and taint flag.
        """
        self._buffer.clear()
        self._retries_used = 0
        self._window_rejected = 0
        self.last_tainted = False

    # -- outlier rejection (chaos hardening) --------------------------------

    def _split_outliers(
        self, batches: List[BatchInfo]
    ) -> Tuple[List[BatchInfo], List[BatchInfo]]:
        """Partition the window into (clean, corrupted) by modified z-score."""
        proc = np.array([b.processing_time for b in batches])
        med = float(np.median(proc))
        mad = float(np.median(np.abs(proc - med)))
        if mad < 1e-9:
            # Degenerate spread (near-identical batches): only a gross
            # inflation — several times the median — counts as corrupted.
            cut = 3.0 * med + 1.0
            mask = proc > cut
        else:
            z = 0.6745 * (proc - med) / mad
            mask = z > self.mad_threshold
        clean = [b for b, bad in zip(batches, mask) if not bad]
        corrupt = [b for b, bad in zip(batches, mask) if bad]
        return clean, corrupt

    # -- ingestion ----------------------------------------------------------

    def offer(self, info: BatchInfo) -> Optional[Measurement]:
        """Feed one completed batch; returns a measurement when the
        window fills, else None.

        With MAD rejection enabled, a filled window containing corrupted
        batches is purged and refilled (up to ``max_retries`` times per
        measurement) before being summarized.
        """
        if self.skip_first_after_reconfig and info.first_after_reconfig:
            self.total_skipped += 1
            return None
        self._buffer.append(info)
        if len(self._buffer) < self.window:
            return None
        if self.mad_threshold is not None:
            clean, corrupt = self._split_outliers(self._buffer)
            if (
                corrupt
                and self.reject_outliers
                and self._retries_used < self.max_retries
                and clean
            ):
                self._retries_used += 1
                self.outliers_rejected += len(corrupt)
                self._window_rejected += len(corrupt)
                self._buffer = clean
                return None  # keep collecting replacements
            if corrupt:
                self.last_tainted = True
        measurement = self.summarize(self._buffer)
        self._buffer.clear()
        return measurement

    @property
    def pending(self) -> int:
        """Batches buffered toward the next measurement."""
        return len(self._buffer)

    def summarize(self, batches: List[BatchInfo]) -> Measurement:
        """Aggregate a list of batches into one measurement."""
        if not batches:
            raise ValueError("cannot summarize zero batches")
        proc = np.array([b.processing_time for b in batches])
        return Measurement(
            mean_processing_time=float(np.mean(proc)),
            mean_end_to_end_delay=float(
                np.mean([b.end_to_end_delay for b in batches])
            ),
            mean_scheduling_delay=float(
                np.mean([b.scheduling_delay for b in batches])
            ),
            mean_records=float(np.mean([b.records for b in batches])),
            batches_used=len(batches),
            skipped=self.total_skipped,
            std_processing_time=float(np.std(proc)),
            outliers_rejected=self._window_rejected,
            tainted=self.last_tainted,
        )
