"""Metric-collection protocol (§5.4).

Two rules govern how NoStop turns raw batch reports into one measurement:

1. "The first processed batch after changing configurations is not
   considered" — reconfiguration triggers jar shipping and executor
   initialization, inflating that batch's processing time.
2. "System metrics are collected for a certain number of batches, and
   the average processing time is calculated" — with an
   *additive-increase* window while the system sits at an optimum (one
   extra batch per newly completed batch, up to a cap), so a temporary
   wobble does not needlessly restart optimization, while a real change
   is still noticed within the capped window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.streaming.metrics import BatchInfo


@dataclass(frozen=True)
class Measurement:
    """Aggregate over one measurement window of batches."""

    mean_processing_time: float
    mean_end_to_end_delay: float
    mean_scheduling_delay: float
    mean_records: float
    batches_used: int
    skipped: int
    std_processing_time: float = 0.0

    def __post_init__(self) -> None:
        if self.batches_used < 1:
            raise ValueError("a measurement needs at least one batch")


class MetricsCollector:
    """Build :class:`Measurement` objects from listener batch reports."""

    def __init__(
        self,
        window: int = 3,
        max_window: int = 12,
        skip_first_after_reconfig: bool = True,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if max_window < window:
            raise ValueError(
                f"max_window ({max_window}) must be >= window ({window})"
            )
        self.base_window = window
        self.max_window = max_window
        self.skip_first_after_reconfig = skip_first_after_reconfig
        self._window = window
        self._buffer: List[BatchInfo] = []
        self.total_skipped = 0

    # -- window management (additive increase, §5.4) -----------------------

    @property
    def window(self) -> int:
        """Current number of batches required per measurement."""
        return self._window

    def relax_window(self) -> int:
        """Additive increase: one more batch per completed batch at the
        optimum, capped at ``max_window``."""
        self._window = min(self._window + 1, self.max_window)
        return self._window

    def reset_window(self) -> None:
        """Shrink back to the base window (on reset / instability)."""
        self._window = self.base_window
        self._buffer.clear()

    def start_measurement(self) -> None:
        """Discard buffered batches from a previous configuration.

        A measurement window must cover exactly one configuration;
        without this, a window left half-full by one probe would blend
        into the next probe's average.
        """
        self._buffer.clear()

    # -- ingestion ----------------------------------------------------------

    def offer(self, info: BatchInfo) -> Optional[Measurement]:
        """Feed one completed batch; returns a measurement when the
        window fills, else None."""
        if self.skip_first_after_reconfig and info.first_after_reconfig:
            self.total_skipped += 1
            return None
        self._buffer.append(info)
        if len(self._buffer) < self._window:
            return None
        measurement = self.summarize(self._buffer)
        self._buffer.clear()
        return measurement

    @property
    def pending(self) -> int:
        """Batches buffered toward the next measurement."""
        return len(self._buffer)

    def summarize(self, batches: List[BatchInfo]) -> Measurement:
        """Aggregate a list of batches into one measurement."""
        if not batches:
            raise ValueError("cannot summarize zero batches")
        proc = np.array([b.processing_time for b in batches])
        return Measurement(
            mean_processing_time=float(np.mean(proc)),
            mean_end_to_end_delay=float(
                np.mean([b.end_to_end_delay for b in batches])
            ),
            mean_scheduling_delay=float(
                np.mean([b.scheduling_delay for b in batches])
            ),
            mean_records=float(np.mean([b.records for b in batches])),
            batches_used=len(batches),
            skipped=self.total_skipped,
            std_processing_time=float(np.std(proc)),
        )
