"""Input-rate change detection (§5.5).

"We set a threshold for input data speed variation threshold_speed.  If
the standard deviation of the recent input data speed is greater than
this threshold, it triggers NoStop to reset the coefficients and restart
the optimization process."

The monitor keeps a sliding window of observed per-batch input rates;
:meth:`RateMonitor.need_reset` is Table 1's ``needResetCoefficient()``.
The threshold is naturally expressed *relative* to the mean rate (a 10k
records/s swing is a surge for logistic regression but noise for Page
Analyze), with an absolute mode for ablation.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

import numpy as np


class RateMonitor:
    """Sliding-window standard-deviation trigger on input rates."""

    def __init__(
        self,
        threshold: float = 0.25,
        window: int = 12,
        relative: bool = True,
        min_samples: int = 4,
        cooldown: int = 0,
    ) -> None:
        """``cooldown`` is the reset hysteresis: after a triggered reset,
        that many further observations are ignored by :meth:`need_reset`
        before it can fire again.  Without it, a single post-fault rate
        spike sitting in the refilled window re-triggers a coefficient
        reset on every subsequent round — a reset storm that keeps SPSA
        permanently at iteration zero while the pipeline is trying to
        recover."""
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if not (2 <= min_samples <= window):
            raise ValueError("need 2 <= min_samples <= window")
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        self.threshold = threshold
        self.relative = relative
        self.min_samples = min_samples
        self.cooldown = cooldown
        self._cooldown_left = 0
        self._rates: Deque[float] = deque(maxlen=window)
        self.resets_triggered = 0

    def observe(self, rate: float) -> None:
        """Record one observed input rate (records/second)."""
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        self._rates.append(rate)
        if self._cooldown_left > 0:
            self._cooldown_left -= 1

    @property
    def samples(self) -> int:
        return len(self._rates)

    def current_std(self) -> float:
        """Standard deviation of the recent input speed (possibly
        normalized by the mean when ``relative``)."""
        if len(self._rates) < 2:
            return 0.0
        arr = np.array(self._rates)
        std = float(np.std(arr))
        if self.relative:
            mean = float(np.mean(arr))
            return std / mean if mean > 0 else 0.0
        return std

    @property
    def in_cooldown(self) -> bool:
        """Whether the post-reset hysteresis is still suppressing triggers."""
        return self._cooldown_left > 0

    def need_reset(self) -> bool:
        """Table 1's ``needResetCoefficient()``."""
        if self._cooldown_left > 0:
            return False
        if len(self._rates) < self.min_samples:
            return False
        return self.current_std() > self.threshold

    def checkpoint(self) -> dict:
        """JSON-safe snapshot: window contents, hysteresis, reset count."""
        return {
            "rates": [float(r) for r in self._rates],
            "cooldownLeft": int(self._cooldown_left),
            "resetsTriggered": int(self.resets_triggered),
        }

    def restore(self, state: dict) -> None:
        """Resume from a :meth:`checkpoint` snapshot (same-config monitor)."""
        self._rates.clear()
        self._rates.extend(float(r) for r in state["rates"])
        self._cooldown_left = int(state["cooldownLeft"])
        self.resets_triggered = int(state["resetsTriggered"])

    def acknowledge_reset(self) -> None:
        """Clear the window after a reset so one surge fires one restart,
        and arm the cooldown so the next ``cooldown`` observations cannot
        immediately re-trigger."""
        self.resets_triggered += 1
        self._rates.clear()
        self._cooldown_left = self.cooldown
