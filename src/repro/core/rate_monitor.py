"""Input-rate change detection (§5.5).

"We set a threshold for input data speed variation threshold_speed.  If
the standard deviation of the recent input data speed is greater than
this threshold, it triggers NoStop to reset the coefficients and restart
the optimization process."

The monitor keeps a sliding window of observed per-batch input rates;
:meth:`RateMonitor.need_reset` is Table 1's ``needResetCoefficient()``.
The threshold is naturally expressed *relative* to the mean rate (a 10k
records/s swing is a surge for logistic regression but noise for Page
Analyze), with an absolute mode for ablation.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

import numpy as np


class RateMonitor:
    """Sliding-window standard-deviation trigger on input rates."""

    def __init__(
        self,
        threshold: float = 0.25,
        window: int = 12,
        relative: bool = True,
        min_samples: int = 4,
    ) -> None:
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if not (2 <= min_samples <= window):
            raise ValueError("need 2 <= min_samples <= window")
        self.threshold = threshold
        self.relative = relative
        self.min_samples = min_samples
        self._rates: Deque[float] = deque(maxlen=window)
        self.resets_triggered = 0

    def observe(self, rate: float) -> None:
        """Record one observed input rate (records/second)."""
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        self._rates.append(rate)

    @property
    def samples(self) -> int:
        return len(self._rates)

    def current_std(self) -> float:
        """Standard deviation of the recent input speed (possibly
        normalized by the mean when ``relative``)."""
        if len(self._rates) < 2:
            return 0.0
        arr = np.array(self._rates)
        std = float(np.std(arr))
        if self.relative:
            mean = float(np.mean(arr))
            return std / mean if mean > 0 else 0.0
        return std

    def need_reset(self) -> bool:
        """Table 1's ``needResetCoefficient()``."""
        if len(self._rates) < self.min_samples:
            return False
        return self.current_std() > self.threshold

    def acknowledge_reset(self) -> None:
        """Clear the window after a reset so one surge fires one restart."""
        self.resets_triggered += 1
        self._rates.clear()
