"""Experiment drivers: one module per paper figure/table (see DESIGN.md)."""

from .common import ExperimentSetup, build_experiment, make_controller, quick_nostop_run
from .fig2_batch_interval import Fig2Result, run_fig2
from .fig3_executors import Fig3Result, run_fig3
from .fig5_rates import Fig5Result, run_fig5
from .fig6_evolution import EvolutionTrace, run_fig6, run_fig6_one
from .fig7_improvement import Fig7Result, run_fig7, run_fig7_one
from .fig8_spsa_vs_bo import Fig8Result, run_fig8, run_fig8_one

__all__ = [
    "EvolutionTrace",
    "ExperimentSetup",
    "Fig2Result",
    "Fig3Result",
    "Fig5Result",
    "Fig7Result",
    "Fig8Result",
    "build_experiment",
    "make_controller",
    "quick_nostop_run",
    "run_fig2",
    "run_fig3",
    "run_fig5",
    "run_fig6",
    "run_fig6_one",
    "run_fig7",
    "run_fig7_one",
    "run_fig8",
    "run_fig8_one",
]
