"""Fig. 6 — NoStop's optimization evolution per workload.

Runs NoStop on each of the four workloads under its Fig. 5 rate band and
records, per control round, the batch interval of the current estimate
and the measured processing time / delay.  Expected shapes (§6.3): the
interval decreases toward the stability frontier while processing time
tracks it from below; the ML workloads' trajectories are noisier
(iteration-count variance), WordCount's is the most stable, Page
Analyze's is complex but steady.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.tables import format_series
from repro.core.nostop import NoStopReport

from .common import build_experiment, make_controller

PAPER_WORKLOADS = (
    "logistic_regression",
    "linear_regression",
    "wordcount",
    "page_analyze",
)


@dataclass
class EvolutionTrace:
    """Per-round evolution series for one workload."""

    workload: str
    rounds: List[int] = field(default_factory=list)
    intervals: List[float] = field(default_factory=list)
    executors: List[int] = field(default_factory=list)
    processing_times: List[Optional[float]] = field(default_factory=list)
    delays: List[Optional[float]] = field(default_factory=list)
    phases: List[str] = field(default_factory=list)
    report: Optional[NoStopReport] = None

    def final_interval(self) -> float:
        return self.intervals[-1]

    def interval_decreased(self) -> bool:
        """Did the interval estimate come down from the mid-range start?"""
        return self.intervals[-1] < self.intervals[0]

    def stable_at_end(self, last_n: int = 5) -> bool:
        """Whether the run ends in a stable operating configuration.

        The configuration NoStop settles on is its best evaluation (the
        one it parks at when paused); optimization rounds deliberately
        keep probing unstable neighbours, so the raw tail of the probe
        series is not the right stability witness.
        """
        if self.report is not None and self.report.best is not None:
            return bool(self.report.best.stable)
        pairs = [
            (i, p)
            for i, p in zip(self.intervals[-last_n:], self.processing_times[-last_n:])
            if p is not None
        ]
        if not pairs:
            return False
        return all(p <= i * 1.10 for i, p in pairs)

    def processing_noise(self) -> float:
        """Round-to-round variation of processing time (for the §6.3
        ML-noisier-than-WordCount comparison)."""
        vals = [p for p in self.processing_times if p is not None]
        if len(vals) < 3:
            return 0.0
        diffs = np.abs(np.diff(vals))
        return float(np.mean(diffs) / max(np.mean(vals), 1e-9))

    def to_text(self) -> str:
        return format_series(
            f"Fig. 6 interval evolution ({self.workload})",
            self.rounds,
            self.intervals,
            unit="s",
        )


def run_fig6_one(
    workload: str,
    rounds: int = 40,
    seed: int = 1,
) -> EvolutionTrace:
    """NoStop evolution for one workload."""
    setup = build_experiment(workload, seed=seed)
    controller = make_controller(setup, seed=seed)
    # Round 0: the initial configuration θ_initial (scaled mid-range)
    # before any optimization — the reference the evolution is judged
    # against ("even [as] the data input speed changes overtime, the
    # batch interval can keep decreasing", §6.3).
    from repro.core.adjust import theta_to_configuration

    interval0, executors0 = theta_to_configuration(
        controller.spsa.theta, setup.scaler
    )[:2]
    report = controller.run(rounds)
    trace = EvolutionTrace(workload=workload, report=report)
    trace.rounds.append(0)
    trace.intervals.append(interval0)
    trace.executors.append(executors0)
    trace.processing_times.append(None)
    trace.delays.append(None)
    trace.phases.append("initial")
    for r in report.rounds:
        trace.rounds.append(r.round_index)
        trace.intervals.append(r.batch_interval)
        trace.executors.append(r.num_executors)
        trace.processing_times.append(r.mean_processing_time)
        trace.delays.append(r.mean_delay)
        trace.phases.append(r.phase)
    return trace


def run_fig6(
    rounds: int = 40,
    seed: int = 1,
    workloads=PAPER_WORKLOADS,
) -> Dict[str, EvolutionTrace]:
    """NoStop evolution for all four paper workloads."""
    return {w: run_fig6_one(w, rounds=rounds, seed=seed) for w in workloads}


if __name__ == "__main__":
    for name, trace in run_fig6().items():
        print(trace.to_text())
        print(
            f"  final: {trace.final_interval():.2f} s x "
            f"{trace.executors[-1]} executors, "
            f"noise={trace.processing_noise():.3f}\n"
        )
