"""Driver-failure recovery: §5.5 cold restart vs checkpointed restore.

The paper's restart rule is stateless — any driver failure costs NoStop
its entire optimization state, and the tuner starts over from the
center of the configuration space.  This experiment quantifies that
cost.  A chaos :class:`~repro.chaos.injectors.DriverFailure` event
kills the controller mid-run for a scheduled outage window; when the
driver comes back, the rebuilt controller either

* **cold** — the §5.5 baseline: a fresh controller, k = 0, empty pause
  history, θ at the center; or
* **checkpoint** — restored from the last per-round
  :meth:`~repro.core.nostop.NoStopController.checkpoint`, resuming from
  the exact SPSA iterate, gain position, ρ, evaluation ranking, and
  rate window it died with (audit-verified via the ``"restore"``
  firing).

The headline metric is **re-convergence effort**: batches (and rounds)
from driver recovery until the controller is paused at an optimum
again.  A checkpointed controller that was already paused typically
re-pauses within one monitoring round; a cold controller pays the full
§5.3.5 search again.  ``run_recovery_comparison`` runs both modes on
identically seeded deployments and reports the gap
(``BENCH_recovery.json`` hard-asserts it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.chaos.engine import ChaosEngine
from repro.chaos.events import AtTime, FaultEvent, FaultSchedule
from repro.chaos.injectors import DriverFailure
from repro.chaos.report import ChaosReport, build_event_outcomes
from repro.core.nostop import NoStopController, RoundRecord
from repro.obs.tracer import Telemetry

from .common import ExperimentSetup, build_experiment, make_controller

#: Safety valve: idle boundaries advanced waiting for driver recovery.
_MAX_IDLE_BATCHES = 500


@dataclass
class DriverHost:
    """The 'machine' the driver runs on, as the chaos injector sees it.

    :class:`~repro.chaos.injectors.DriverFailure` calls
    :meth:`on_driver_kill` / :meth:`on_driver_recover` at the scheduled
    window edges; the scenario loop reads the flags to know when the
    controller is dead and when it must be rebuilt.  In checkpoint mode
    the host also carries the last completed-round checkpoint — the
    durable state a real deployment would have fsynced elsewhere.
    """

    mode: str = "cold"
    """``"cold"`` (§5.5 baseline) or ``"checkpoint"``."""
    down: bool = False
    needs_restart: bool = False
    killed_at: List[float] = field(default_factory=list)
    recovered_at: List[float] = field(default_factory=list)
    checkpoint: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if self.mode not in ("cold", "checkpoint"):
            raise ValueError(f"mode must be 'cold' or 'checkpoint', got {self.mode!r}")

    def on_driver_kill(self, now: float) -> None:
        self.down = True
        self.killed_at.append(float(now))

    def on_driver_recover(self, now: float) -> None:
        self.down = False
        self.needs_restart = True
        self.recovered_at.append(float(now))


@dataclass
class RecoveryResult:
    """Outcome of one driver-failure run in one recovery mode."""

    mode: str
    workload: str
    seed: int
    rounds: int
    records: List[RoundRecord]
    restarts: int
    killed_at: List[float]
    recovered_at: List[float]
    paused_before_kill: bool
    """Whether the tuner had converged (paused) before the driver died —
    the regime the checkpoint-vs-cold comparison is defined over."""
    rounds_to_repause: Optional[int]
    """Control rounds after recovery until paused again (None = never)."""
    batches_to_repause: Optional[int]
    """Listener batches after recovery until paused again (the headline
    re-convergence metric; None = never re-paused)."""
    sim_time_to_repause: Optional[float]
    final_paused: bool
    chaos: ChaosReport
    controller: NoStopController
    setup: ExperimentSetup

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "workload": self.workload,
            "seed": self.seed,
            "rounds": self.rounds,
            "restarts": self.restarts,
            "killedAt": self.killed_at,
            "recoveredAt": self.recovered_at,
            "pausedBeforeKill": self.paused_before_kill,
            "roundsToRepause": self.rounds_to_repause,
            "batchesToRepause": self.batches_to_repause,
            "simTimeToRepause": self.sim_time_to_repause,
            "finalPaused": self.final_paused,
        }


def driver_failure_schedule(
    kill_time: float, outage: float = 60.0, host: Optional[DriverHost] = None
) -> FaultSchedule:
    """One scheduled driver kill/recover window bound to ``host``."""
    injector = DriverFailure()
    if host is not None:
        injector.bind(host)
    return FaultSchedule.of(
        FaultEvent(
            name="driver_failure",
            trigger=AtTime(kill_time),
            injector=injector,
            duration=outage,
        )
    )


def run_recovery_scenario(
    workload: str = "logistic_regression",
    mode: str = "cold",
    rounds: int = 30,
    seed: int = 3,
    kill_time: float = 4000.0,
    outage: float = 60.0,
    chaos_seed: int = 0,
    pause_n: int = 10,
) -> RecoveryResult:
    """One driver-failure run: optimize, die at ``kill_time``, recover.

    The loop plays the driver's lifecycle: control rounds run while the
    driver is up; while it is down the cluster merely ages (the stalled
    receiver accumulates backlog); at recovery the controller is rebuilt
    according to ``mode``.  A round in flight when the kill lands is
    discarded — its in-memory state died with the driver.  In
    checkpoint mode every *completed* round checkpoints, mirroring a
    driver that fsyncs tuner state at round boundaries.
    """
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    host = DriverHost(mode=mode)
    # Audit firings are part of this experiment's contract (the rebuilt
    # controller's "restore" firing is how recovery is verified), so the
    # telemetry bundle is always on regardless of REPRO_TRACE.
    setup = build_experiment(workload, seed=seed, telemetry=Telemetry(enabled=True))
    schedule = driver_failure_schedule(kill_time, outage=outage, host=host)
    engine = ChaosEngine(setup.context, schedule, seed=chaos_seed)

    controller = make_controller(setup, seed=seed, pause_n=pause_n)
    records: List[RoundRecord] = []
    restarts = 0
    paused_before_kill = False
    batches_at_restart: Optional[int] = None
    time_at_restart: Optional[float] = None
    rounds_after_restart = 0
    rounds_to_repause: Optional[int] = None
    batches_to_repause: Optional[int] = None
    sim_time_to_repause: Optional[float] = None

    rounds_done = 0
    idle = 0
    while rounds_done < rounds:
        if host.down:
            # The driver is dead: nothing schedules batches, but simulated
            # time must still pass for the recovery boundary to arrive.
            idle += 1
            if idle > _MAX_IDLE_BATCHES:
                raise RuntimeError("driver outage never recovered")
            setup.context.advance_batches(1)
            continue
        if host.needs_restart:
            host.needs_restart = False
            restarts += 1
            controller = make_controller(setup, seed=seed, pause_n=pause_n)
            if mode == "checkpoint" and host.checkpoint is not None:
                controller.restore(host.checkpoint, reapply=True)
            batches_at_restart = len(setup.context.listener.metrics)
            time_at_restart = setup.system.time
            rounds_after_restart = 0
        record = controller.run_round()
        if host.down:
            # Killed mid-round: the round's in-memory outcome died with
            # the driver process.  (The checkpoint, if any, predates it.)
            continue
        rounds_done += 1
        records.append(record)
        if not host.killed_at:
            paused_before_kill = controller.paused or paused_before_kill
        if restarts:
            rounds_after_restart += 1
            if rounds_to_repause is None and controller.paused:
                rounds_to_repause = rounds_after_restart
                batches_to_repause = (
                    len(setup.context.listener.metrics) - (batches_at_restart or 0)
                )
                sim_time_to_repause = setup.system.time - (time_at_restart or 0.0)
        if mode == "checkpoint":
            host.checkpoint = controller.checkpoint()
    engine.finish()

    chaos = ChaosReport(
        scenario=f"driver_failure[{mode}]",
        seed=seed,
        hardened=controller.harden,
        events=build_event_outcomes(
            engine.records, setup.context.listener.metrics.batches
        ),
        poisoned_steps_avoided=controller.poisoned_steps_avoided,
        poisoned_steps_taken=controller.poisoned_steps_taken,
        corrupted_retries=controller.corrupted_retries,
        outlier_batches_rejected=controller.collector.outliers_rejected,
        failed_applies=setup.system.failed_applies,
        rate_resets=controller.rate_monitor.resets_triggered,
        executor_failures=setup.context.resource_manager.executor_failures,
        batches_processed=len(setup.context.listener.metrics),
        sim_duration=setup.context.time,
    )
    return RecoveryResult(
        mode=mode,
        workload=workload,
        seed=seed,
        rounds=rounds,
        records=records,
        restarts=restarts,
        killed_at=list(host.killed_at),
        recovered_at=list(host.recovered_at),
        paused_before_kill=paused_before_kill,
        rounds_to_repause=rounds_to_repause,
        batches_to_repause=batches_to_repause,
        sim_time_to_repause=sim_time_to_repause,
        final_paused=controller.paused,
        chaos=chaos,
        controller=controller,
        setup=setup,
    )


def run_recovery_comparison(
    workload: str = "logistic_regression",
    rounds: int = 30,
    seed: int = 3,
    kill_time: float = 4000.0,
    outage: float = 60.0,
    pause_n: int = 10,
) -> Dict[str, Any]:
    """Cold restart vs checkpointed restore on identical deployments.

    Both runs share workload, seed, kill schedule, and round budget;
    they diverge only in what the rebuilt driver knows.  Returns both
    results plus the re-convergence gap.
    """
    cold = run_recovery_scenario(
        workload, mode="cold", rounds=rounds, seed=seed,
        kill_time=kill_time, outage=outage, pause_n=pause_n,
    )
    ckpt = run_recovery_scenario(
        workload, mode="checkpoint", rounds=rounds, seed=seed,
        kill_time=kill_time, outage=outage, pause_n=pause_n,
    )
    gap: Optional[int] = None
    if cold.batches_to_repause is not None and ckpt.batches_to_repause is not None:
        gap = cold.batches_to_repause - ckpt.batches_to_repause
    return {
        "cold": cold,
        "checkpoint": ckpt,
        "batches_saved": gap,
        "summary": {
            "cold": cold.to_dict(),
            "checkpoint": ckpt.to_dict(),
            "batchesSaved": gap,
        },
    }
