"""Fig. 5 — time-varying input-rate traces for the four workloads.

The paper's data generator draws the arrival rate uniformly at random
within a per-workload band: [7k, 13k] records/s for Logistic Regression,
[80k, 120k] for Linear Regression, [110k, 190k] for WordCount and
[170k, 230k] for Page Analyze (§6.2.2).  This driver samples each
workload's trace and verifies the series stays inside its band — the
same series the optimizer experiences in Figs. 6-8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.tables import format_table
from repro.datagen.rates import PAPER_RATE_BANDS
from repro.runner import SweepRunner, SweepSpec


@dataclass
class RateSeries:
    """Sampled rate series for one workload."""

    workload: str
    band: tuple
    times: List[float] = field(default_factory=list)
    rates: List[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return float(np.mean(self.rates))

    @property
    def std(self) -> float:
        return float(np.std(self.rates))

    def within_band(self) -> bool:
        lo, hi = self.band
        return all(lo <= r <= hi for r in self.rates)


@dataclass
class Fig5Result:
    series: Dict[str, RateSeries] = field(default_factory=dict)

    def to_table(self) -> str:
        rows = []
        for name, s in self.series.items():
            lo, hi = s.band
            rows.append(
                (name, lo, hi, s.mean, s.std, s.within_band())
            )
        return format_table(
            ["workload", "min rate", "max rate", "mean", "std", "in band"],
            rows,
            title="Fig. 5: input data rates (records/s)",
            float_fmt="{:.0f}",
        )


def fig5_spec(
    duration: float = 600.0, dt: float = 5.0, seed: int = 1
) -> SweepSpec:
    """Declarative form of the Fig. 5 sampling (one cell per workload)."""
    return SweepSpec(
        name="fig5",
        kind="rate_series",
        base={"duration": float(duration), "dt": float(dt), "seed": seed},
        grid={"workload": list(PAPER_RATE_BANDS)},
    )


def run_fig5(
    duration: float = 600.0,
    dt: float = 5.0,
    seed: int = 1,
    runner: Optional[SweepRunner] = None,
    fidelity: str = "exact",
) -> Fig5Result:
    """Sample every workload's paper rate trace over ``duration`` seconds.

    ``fidelity`` is accepted for driver-signature uniformity but ignored:
    Fig. 5 samples the input-rate traces directly, which are identical
    across all simulation tiers (every tier reads the same
    :class:`~repro.datagen.rates.RateTrace` objects).
    """
    if duration <= 0 or dt <= 0:
        raise ValueError("duration and dt must be positive")
    runner = runner or SweepRunner()
    sweep = runner.run(fig5_spec(duration, dt, seed))
    result = Fig5Result()
    for res in sweep.results:
        series = RateSeries(workload=res["workload"], band=tuple(res["band"]))
        series.times = list(res["times"])
        series.rates = list(res["rates"])
        result.series[res["workload"]] = series
    return result


if __name__ == "__main__":
    print(run_fig5().to_table())
