"""Fig. 8 — SPSA (NoStop) versus Bayesian Optimization.

Both optimizers drive the identical live system through the identical
Adjust measurement pathway and stop under the identical impeded-progress
rule; the comparison axes are the paper's three (§6.4):

* final optimization result — steady-state delay of the best
  configuration found ("the final optimization results are comparable");
* search time — simulated seconds until convergence (or budget
  exhaustion);
* configuration steps — live configuration changes consumed.

Expected outcome: comparable final delay, with SPSA needing fewer
configuration steps and less search time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.stats import Summary, summarize
from repro.analysis.tables import format_table
from repro.baselines.bayesian import run_bayesian_optimization
from repro.core.metrics_collector import MetricsCollector
from repro.core.pause import PauseRule

from .common import build_experiment, make_controller
from .fig6_evolution import PAPER_WORKLOADS


@dataclass(frozen=True)
class OptimizerRun:
    """One optimizer run's Fig. 8 measurements."""

    optimizer: str
    final_delay: float
    search_time: float
    config_steps: int
    converged: bool


@dataclass
class WorkloadComparison:
    """SPSA-vs-BO repeats for one workload."""

    workload: str
    spsa: List[OptimizerRun] = field(default_factory=list)
    bo: List[OptimizerRun] = field(default_factory=list)

    def summary(self, attr: str) -> Dict[str, Summary]:
        return {
            "spsa": summarize([getattr(r, attr) for r in self.spsa]),
            "bo": summarize([getattr(r, attr) for r in self.bo]),
        }


@dataclass
class Fig8Result:
    workloads: Dict[str, WorkloadComparison] = field(default_factory=dict)

    def to_table(self) -> str:
        rows = []
        for name, cmp_ in self.workloads.items():
            delay = cmp_.summary("final_delay")
            time_ = cmp_.summary("search_time")
            steps = cmp_.summary("config_steps")
            for opt in ("spsa", "bo"):
                rows.append(
                    (
                        name,
                        opt.upper(),
                        f"{delay[opt].mean:.2f} ± {delay[opt].std:.2f}",
                        f"{time_[opt].mean:.0f} ± {time_[opt].std:.0f}",
                        f"{steps[opt].mean:.1f} ± {steps[opt].std:.1f}",
                    )
                )
        return format_table(
            ["workload", "optimizer", "final delay (s)",
             "search time (s)", "config steps"],
            rows,
            title="Fig. 8: SPSA vs Bayesian Optimization (mean ± std over repeats)",
        )


def run_spsa_once(workload: str, seed: int, rounds: int) -> OptimizerRun:
    """One NoStop run measured on the Fig. 8 axes."""
    setup = build_experiment(workload, seed=seed)
    controller = make_controller(setup, seed=seed)
    start_time = setup.system.time
    report = controller.run(rounds)
    converged = report.first_pause_round is not None
    search_time = (
        report.first_pause_time
        if converged
        else setup.system.time - start_time
    )
    steps = (
        report.adjust_calls_to_pause
        if converged
        else controller.adjust.calls
    )
    best = controller.pause_rule.best_config()
    return OptimizerRun(
        optimizer="spsa",
        final_delay=best.end_to_end_delay,
        search_time=float(search_time),
        config_steps=int(steps),
        converged=converged,
    )


def run_bo_once(workload: str, seed: int, max_evaluations: int) -> OptimizerRun:
    """One Bayesian-optimization run measured on the Fig. 8 axes."""
    setup = build_experiment(workload, seed=seed)
    report = run_bayesian_optimization(
        setup.system,
        setup.scaler,
        max_evaluations=max_evaluations,
        seed=seed,
        pause_rule=PauseRule(),
        collector=MetricsCollector(),
    )
    final_delay = (
        report.final_delay
        if report.final_delay is not None
        else report.best().end_to_end_delay
    )
    return OptimizerRun(
        optimizer="bo",
        final_delay=final_delay,
        search_time=float(report.search_time or 0.0),
        config_steps=report.config_steps,
        converged=report.converged_at is not None,
    )


def run_fig8_one(
    workload: str,
    repeats: int = 5,
    rounds: int = 40,
    bo_evaluations: int = 80,
    base_seed: int = 1,
) -> WorkloadComparison:
    """SPSA-vs-BO repeats for one workload.

    ``bo_evaluations`` defaults to the same measurement budget NoStop
    consumes (2 per round x ``rounds``) so neither side gets extra
    system time.
    """
    cmp_ = WorkloadComparison(workload=workload)
    for rep in range(repeats):
        seed = base_seed + 100 * rep
        cmp_.spsa.append(run_spsa_once(workload, seed, rounds))
        cmp_.bo.append(run_bo_once(workload, seed, bo_evaluations))
    return cmp_


def run_fig8(
    repeats: int = 5,
    rounds: int = 40,
    bo_evaluations: int = 80,
    base_seed: int = 1,
    workloads=PAPER_WORKLOADS,
) -> Fig8Result:
    """Full Fig. 8 over the four paper workloads."""
    result = Fig8Result()
    for w in workloads:
        result.workloads[w] = run_fig8_one(
            w,
            repeats=repeats,
            rounds=rounds,
            bo_evaluations=bo_evaluations,
            base_seed=base_seed,
        )
    return result


if __name__ == "__main__":
    print(run_fig8(repeats=3).to_table())
