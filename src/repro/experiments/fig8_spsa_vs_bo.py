"""Fig. 8 — SPSA (NoStop) versus Bayesian Optimization.

Both optimizers drive the identical live system through the identical
Adjust measurement pathway and stop under the identical impeded-progress
rule; the comparison axes are the paper's three (§6.4):

* final optimization result — steady-state delay of the best
  configuration found ("the final optimization results are comparable");
* search time — simulated seconds until convergence (or budget
  exhaustion);
* configuration steps — live configuration changes consumed.

Expected outcome: comparable final delay, with SPSA needing fewer
configuration steps and less search time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.stats import Summary, summarize
from repro.analysis.tables import format_table
from repro.runner import SweepRunner, SweepSpec
from repro.runner.cells import execute_cell

from .common import paper_repeat_seeds
from .fig6_evolution import PAPER_WORKLOADS


@dataclass(frozen=True)
class OptimizerRun:
    """One optimizer run's Fig. 8 measurements."""

    optimizer: str
    final_delay: float
    search_time: float
    config_steps: int
    converged: bool


@dataclass
class WorkloadComparison:
    """SPSA-vs-BO repeats for one workload."""

    workload: str
    spsa: List[OptimizerRun] = field(default_factory=list)
    bo: List[OptimizerRun] = field(default_factory=list)

    def summary(self, attr: str) -> Dict[str, Summary]:
        return {
            "spsa": summarize([getattr(r, attr) for r in self.spsa]),
            "bo": summarize([getattr(r, attr) for r in self.bo]),
        }


@dataclass
class Fig8Result:
    workloads: Dict[str, WorkloadComparison] = field(default_factory=dict)

    def to_table(self) -> str:
        rows = []
        for name, cmp_ in self.workloads.items():
            delay = cmp_.summary("final_delay")
            time_ = cmp_.summary("search_time")
            steps = cmp_.summary("config_steps")
            for opt in ("spsa", "bo"):
                rows.append(
                    (
                        name,
                        opt.upper(),
                        f"{delay[opt].mean:.2f} ± {delay[opt].std:.2f}",
                        f"{time_[opt].mean:.0f} ± {time_[opt].std:.0f}",
                        f"{steps[opt].mean:.1f} ± {steps[opt].std:.1f}",
                    )
                )
        return format_table(
            ["workload", "optimizer", "final delay (s)",
             "search time (s)", "config steps"],
            rows,
            title="Fig. 8: SPSA vs Bayesian Optimization (mean ± std over repeats)",
        )


def _spsa_run_from_cell(result: dict) -> OptimizerRun:
    return OptimizerRun(
        optimizer="spsa",
        final_delay=result["best"]["endToEndDelay"],
        search_time=result["searchTime"],
        config_steps=result["configSteps"],
        converged=result["converged"],
    )


def _bo_run_from_cell(result: dict) -> OptimizerRun:
    return OptimizerRun(
        optimizer="bo",
        final_delay=result["finalDelay"],
        search_time=result["searchTime"],
        config_steps=result["configSteps"],
        converged=result["converged"],
    )


def run_spsa_once(workload: str, seed: int, rounds: int) -> OptimizerRun:
    """One NoStop run measured on the Fig. 8 axes."""
    return _spsa_run_from_cell(
        execute_cell(
            "nostop", {"workload": workload, "seed": seed, "rounds": rounds}
        )
    )


def run_bo_once(workload: str, seed: int, max_evaluations: int) -> OptimizerRun:
    """One Bayesian-optimization run measured on the Fig. 8 axes."""
    return _bo_run_from_cell(
        execute_cell(
            "bo",
            {
                "workload": workload,
                "seed": seed,
                "max_evaluations": max_evaluations,
            },
        )
    )


def fig8_spsa_spec(
    workload: str,
    repeats: int = 5,
    rounds: int = 40,
    base_seed: int = 1,
    count_only: bool = False,
    fidelity: str = "exact",
) -> SweepSpec:
    """The NoStop side of the Fig. 8 comparison (one cell per repeat)."""
    base = {"workload": workload, "rounds": rounds, "count_only": count_only}
    if fidelity != "exact":
        # Only non-default tiers enter the cell params, so exact-tier
        # cell digests (cache keys, journal identities) are unchanged.
        base["fidelity"] = fidelity
    return SweepSpec(
        name=f"fig8-{workload}-spsa",
        kind="nostop",
        base=base,
        cases=[{"seed": s} for s in paper_repeat_seeds(base_seed, repeats)],
    )


def fig8_bo_spec(
    workload: str,
    repeats: int = 5,
    bo_evaluations: int = 80,
    base_seed: int = 1,
    count_only: bool = False,
    fidelity: str = "exact",
) -> SweepSpec:
    """The Bayesian-optimization side of the Fig. 8 comparison."""
    base = {
        "workload": workload,
        "max_evaluations": bo_evaluations,
        "count_only": count_only,
    }
    if fidelity != "exact":
        base["fidelity"] = fidelity
    return SweepSpec(
        name=f"fig8-{workload}-bo",
        kind="bo",
        base=base,
        cases=[{"seed": s} for s in paper_repeat_seeds(base_seed, repeats)],
    )


def run_fig8_one(
    workload: str,
    repeats: int = 5,
    rounds: int = 40,
    bo_evaluations: int = 80,
    base_seed: int = 1,
    runner: Optional[SweepRunner] = None,
    count_only: bool = False,
    fidelity: str = "exact",
) -> WorkloadComparison:
    """SPSA-vs-BO repeats for one workload.

    ``bo_evaluations`` defaults to the same measurement budget NoStop
    consumes (2 per round x ``rounds``) so neither side gets extra
    system time.
    """
    runner = runner or SweepRunner()
    spsa = runner.run(
        fig8_spsa_spec(
            workload,
            repeats=repeats,
            rounds=rounds,
            base_seed=base_seed,
            count_only=count_only,
            fidelity=fidelity,
        )
    )
    bo = runner.run(
        fig8_bo_spec(
            workload,
            repeats=repeats,
            bo_evaluations=bo_evaluations,
            base_seed=base_seed,
            count_only=count_only,
            fidelity=fidelity,
        )
    )
    cmp_ = WorkloadComparison(workload=workload)
    cmp_.spsa.extend(_spsa_run_from_cell(r) for r in spsa.results)
    cmp_.bo.extend(_bo_run_from_cell(r) for r in bo.results)
    return cmp_


def run_fig8(
    repeats: int = 5,
    rounds: int = 40,
    bo_evaluations: int = 80,
    base_seed: int = 1,
    workloads=PAPER_WORKLOADS,
    runner: Optional[SweepRunner] = None,
    count_only: bool = False,
    fidelity: str = "exact",
) -> Fig8Result:
    """Full Fig. 8 over the four paper workloads."""
    runner = runner or SweepRunner()
    result = Fig8Result()
    for w in workloads:
        result.workloads[w] = run_fig8_one(
            w,
            repeats=repeats,
            rounds=rounds,
            bo_evaluations=bo_evaluations,
            base_seed=base_seed,
            runner=runner,
            count_only=count_only,
            fidelity=fidelity,
        )
    return result


if __name__ == "__main__":
    print(run_fig8(repeats=3).to_table())
