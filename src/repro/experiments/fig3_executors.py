"""Fig. 3 — effect of executor count on streaming logistic regression.

Sweeps the executor count at a fixed batch interval and reports batch
processing time (Fig. 3a) and batch schedule delay (Fig. 3b).  Expected
shapes: a U-shaped processing-time curve (limited parallelism on the
left, executor-management overhead on the right), instability below
~10 executors at a 10 s interval, and processing time at ~20 executors
"the closest to the batch interval while the system still remains
stable".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.analysis.tables import format_table
from repro.runner import SweepRunner, SweepSpec

DEFAULT_EXECUTOR_COUNTS = (2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 24)


@dataclass(frozen=True)
class ExecutorPoint:
    """One sweep point of Fig. 3."""

    executors: int
    processing_time: float
    schedule_delay: float
    end_to_end_delay: float
    unstable_fraction: float
    interval: float

    @property
    def stable(self) -> bool:
        return self.processing_time <= self.interval


@dataclass
class Fig3Result:
    points: List[ExecutorPoint] = field(default_factory=list)
    workload: str = "logistic_regression"
    interval: float = 10.0

    def min_stable_executors(self) -> int:
        for p in self.points:
            if p.stable:
                return p.executors
        raise RuntimeError("no stable executor count in sweep")

    def best_executors(self) -> int:
        """Executor count with minimum end-to-end delay."""
        return min(self.points, key=lambda p: p.end_to_end_delay).executors

    def is_u_shaped(self) -> bool:
        """Left arm falls, and the right end does not keep falling."""
        procs = [p.processing_time for p in self.points]
        falls = procs[0] > min(procs)
        rises = procs[-1] >= min(procs)
        return falls and rises

    def to_table(self) -> str:
        return format_table(
            ["executors", "proc time (s)", "sched delay (s)",
             "e2e delay (s)", "stable"],
            [
                (p.executors, p.processing_time, p.schedule_delay,
                 p.end_to_end_delay, p.stable)
                for p in self.points
            ],
            title=(
                f"Fig. 3: executor-count sweep "
                f"({self.workload}, interval {self.interval} s)"
            ),
        )


def fig3_spec(
    executor_counts: Sequence[int] = DEFAULT_EXECUTOR_COUNTS,
    workload: str = "logistic_regression",
    interval: float = 10.0,
    batches: int = 25,
    seed: int = 1,
    count_only: bool = False,
    fidelity: str = "exact",
) -> SweepSpec:
    """Declarative form of the Fig. 3 sweep (one cell per count)."""
    base = {
        "workload": workload,
        "batch_interval": float(interval),
        "batches": batches,
        "warmup": 4,
        "seed": seed,
        "count_only": count_only,
    }
    if fidelity != "exact":
        # Only non-default tiers enter the cell params, so exact-tier
        # cell digests (cache keys, journal identities) are unchanged.
        base["fidelity"] = fidelity
    return SweepSpec(
        name=f"fig3-{workload}",
        kind="fixed_config",
        base=base,
        cases=[
            {"num_executors": int(n), "max_executors": max(24, int(n))}
            for n in executor_counts
        ],
    )


def run_fig3(
    executor_counts: Sequence[int] = DEFAULT_EXECUTOR_COUNTS,
    workload: str = "logistic_regression",
    interval: float = 10.0,
    batches: int = 25,
    seed: int = 1,
    runner: Optional[SweepRunner] = None,
    count_only: bool = False,
    fidelity: str = "exact",
) -> Fig3Result:
    """Run the Fig. 3 sweep; each point is a fresh deployment.

    Executes through the sweep runner (see :func:`run_fig2`'s note on
    the ``runner`` parameter).
    """
    runner = runner or SweepRunner()
    sweep = runner.run(
        fig3_spec(
            executor_counts,
            workload=workload,
            interval=interval,
            batches=batches,
            seed=seed,
            count_only=count_only,
            fidelity=fidelity,
        )
    )
    result = Fig3Result(workload=workload, interval=interval)
    for res in sweep.results:
        result.points.append(
            ExecutorPoint(
                executors=res["numExecutors"],
                processing_time=res["meanProcessingTime"],
                schedule_delay=res["meanSchedulingDelay"],
                end_to_end_delay=res["meanEndToEndDelay"],
                unstable_fraction=res["unstableFraction"],
                interval=interval,
            )
        )
    return result


if __name__ == "__main__":
    print(run_fig3().to_table())
