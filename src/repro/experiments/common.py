"""Shared experiment scaffolding.

Every paper experiment runs on the same substrate: the Table 2 cluster,
a five-broker Kafka deployment, one of the four workloads fed at its
Fig. 5 rate band.  :func:`build_experiment` assembles that stack;
:func:`make_controller` attaches a paper-parameterized NoStop controller
(§6.2.1: A=1, a=10, c=2, θ₀ = center, N=10, S=1).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.chaos.runner import ChaosRunResult
    from repro.obs.report import RunJudge, RunReport

from repro.cluster.cluster import Cluster, paper_cluster
from repro.core.bounds import MinMaxScaler, paper_configuration_space
from repro.core.gains import GainSchedule, paper_gains
from repro.core.metrics_collector import MetricsCollector
from repro.core.nostop import NoStopController, NoStopReport
from repro.core.pause import PauseRule
from repro.core.rate_monitor import RateMonitor
from repro.core.system import SimulatedSparkSystem
from repro.datagen.generator import DataGenerator
from repro.datagen.rates import RateTrace, paper_rate_trace
from repro.engine.overhead import DEFAULT_OVERHEAD, OverheadModel
from repro.engine.task_scheduler import NoiseModel
from repro.kafka.cluster import KafkaCluster, paper_kafka_cluster
from repro.obs.tracer import Telemetry
from repro.streaming.context import StreamingConfig, StreamingContext
from repro.workloads import make_workload
from repro.workloads.base import Workload


@dataclass
class ExperimentSetup:
    """A fully wired simulated deployment."""

    cluster: Cluster
    kafka: KafkaCluster
    workload: Workload
    generator: DataGenerator
    context: StreamingContext
    system: SimulatedSparkSystem
    scaler: MinMaxScaler
    telemetry: Optional[Telemetry] = None


def build_experiment(
    workload_name: str,
    seed: int = 0,
    batch_interval: float = 10.0,
    num_executors: int = 10,
    rate_trace: Optional[RateTrace] = None,
    rate_hold: float = 10.0,
    overhead: OverheadModel = DEFAULT_OVERHEAD,
    noise_sigma: float = 0.10,
    max_executors: int = 20,
    max_interval: float = 40.0,
    queue_max_length: int = 25,
    cluster: Optional[Cluster] = None,
    telemetry: Optional[Telemetry] = None,
    count_only: bool = False,
    fidelity: str = "exact",
) -> ExperimentSetup:
    """Assemble the paper's deployment for one workload.

    ``seed`` derives all stochastic streams (rate trace, task noise,
    payload synthesis) so repeats with different seeds are the paper's
    "repeat five times" protocol.

    ``queue_max_length`` bounds the batch queue: a long-unstable
    configuration sheds its oldest batches (the "possible data loss"
    of §1) instead of accumulating unbounded backlog — without a bound,
    a few unstable probes early in an optimization run would poison the
    rest of the experiment with queue drain.

    ``count_only`` enables the data generator's segment-per-rate-span
    fast path (see :class:`~repro.kafka.producer.RateControlledProducer`)
    — the sweep runner turns it on for cost-model-driven cells.

    ``telemetry`` attaches a tracing/metrics/audit bundle to the whole
    stack.  When left ``None`` and ``REPRO_TRACE`` (or
    ``REPRO_FORCE_TRACE``) is set in the environment, an enabled bundle
    is created automatically — the CI hook for running the full test
    suite with tracing on.

    ``fidelity`` selects the simulation tier: ``"exact"`` (the default)
    is the per-record/per-task DES; ``"vectorized"`` and ``"fluid"``
    swap in :class:`~repro.fast.context.FastStreamingContext`, the
    numpy batch-level engine or the analytic closed forms (see
    :mod:`repro.fast`).  The fast tiers expose the same control and
    listener surface, so every consumer of the returned setup works
    unchanged; chaos fault models require the exact tier.
    """
    from repro.fast import FIDELITIES

    if fidelity not in FIDELITIES:
        raise ValueError(
            f"fidelity must be one of {FIDELITIES}, got {fidelity!r}"
        )
    if telemetry is None and (
        os.environ.get("REPRO_TRACE") or os.environ.get("REPRO_FORCE_TRACE")
    ):
        telemetry = Telemetry(enabled=True)
    cluster = cluster or paper_cluster()
    kafka = paper_kafka_cluster(cluster.total_cores)
    workload = make_workload(workload_name)
    trace = rate_trace or paper_rate_trace(
        workload_name, seed=seed, hold=rate_hold
    )
    generator = DataGenerator(
        kafka.topic("events"),
        trace,
        payload_kind=workload.payload_kind,
        seed=seed,
        count_only=count_only,
    )
    if fidelity == "exact":
        context = StreamingContext(
            cluster,
            workload,
            generator,
            StreamingConfig(batch_interval, num_executors),
            seed=seed,
            overhead=overhead,
            noise=NoiseModel(sigma=noise_sigma),
            queue_max_length=queue_max_length,
            telemetry=telemetry,
        )
    else:
        from repro.fast import FastStreamingContext

        context = FastStreamingContext(
            cluster,
            workload,
            generator,
            StreamingConfig(batch_interval, num_executors),
            seed=seed,
            overhead=overhead,
            noise_sigma=noise_sigma,
            queue_max_length=queue_max_length,
            telemetry=telemetry,
            mode=fidelity,
        )
    system = SimulatedSparkSystem(context)
    scaler = paper_configuration_space(
        max_executors=max_executors, max_interval=max_interval
    )
    return ExperimentSetup(
        cluster=cluster,
        kafka=kafka,
        workload=workload,
        generator=generator,
        context=context,
        system=system,
        scaler=scaler,
        telemetry=telemetry,
    )


def make_controller(
    setup: ExperimentSetup,
    seed: int = 0,
    gains: Optional[GainSchedule] = None,
    pause_n: int = 10,
    pause_s: float = 1.0,
    collector_window: int = 3,
    rate_threshold: float = 0.25,
) -> NoStopController:
    """NoStop controller with the paper's §6.2.1 settings.

    Inherits the setup's telemetry bundle, so the controller's audit
    trail lands next to the substrate's traces and metrics.
    """
    return NoStopController(
        system=setup.system,
        scaler=setup.scaler,
        gains=gains or paper_gains(),
        pause_rule=PauseRule(n_best=pause_n, std_threshold=pause_s),
        rate_monitor=RateMonitor(threshold=rate_threshold),
        collector=MetricsCollector(window=collector_window),
        seed=seed,
        telemetry=setup.telemetry,
    )


def paper_repeat_seeds(base_seed: int, repeats: int) -> list:
    """The §6.3 "repeat five times" seed protocol.

    Repeat ``r`` uses ``base_seed + 100 * r`` — spaced out so a
    repeat's derived streams (measurement seeds at ``+7``, etc.) never
    collide with a neighbouring repeat.  The figure drivers pin these
    into their sweep specs, so runner-executed repeats are byte-for-byte
    the sequential protocol.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    return [base_seed + 100 * rep for rep in range(repeats)]


def quick_nostop_run(
    workload_name: str,
    rounds: int = 30,
    seed: int = 0,
    **build_kwargs,
) -> NoStopReport:
    """One-call NoStop run: build the deployment, optimize, report."""
    setup = build_experiment(workload_name, seed=seed, **build_kwargs)
    controller = make_controller(setup, seed=seed)
    return controller.run(rounds)


@dataclass
class JudgedRun:
    """One judged chaos run: the substrate, the verdicts, the report."""

    setup: ExperimentSetup
    judge: "RunJudge"
    chaos: "ChaosRunResult"
    report: "RunReport"
    telemetry: Telemetry


def judged_chaos_run(
    workload_name: str = "wordcount",
    rounds: int = 40,
    seed: int = 7,
    rate_shift_at: float = 600.0,
    rate_shift_multiplier: float = 0.25,
    telemetry: Optional[Telemetry] = None,
    slos=None,
    policies=None,
    rate_detector=None,
    title: Optional[str] = None,
    **build_kwargs,
) -> JudgedRun:
    """The seeded chaos quickstart behind ``repro report``.

    One fully instrumented NoStop run combining every signal the run
    report judges: the standard two-fault chaos schedule (executor crash
    at t=120 s, broker stall at t=300 s), plus a scripted sustained
    input-rate shift (×``rate_shift_multiplier`` from ``rate_shift_at``
    onward — the §5.5 regime change that must fire both the CUSUM
    detector and NoStop's restart rule).  The default is a ×0.25
    down-shift: it exercises the same rate-monitor math as a surge
    without drowning the cluster for the rest of the run, so the report
    judges the shift response rather than a permanently backlogged
    system.  The judge watches the listener *during* the run; the
    returned :class:`JudgedRun` carries the stitched
    :class:`~repro.obs.report.RunReport`.

    Deterministic for a given (workload, seed, rounds): the report's
    text/HTML/JSON renderings are byte-identical across repeats.
    """
    import math

    from repro.datagen.rates import SpikeRate
    from repro.obs.report import RunJudge, build_run_report

    if telemetry is None:
        telemetry = Telemetry(enabled=True)
    base_trace = paper_rate_trace(workload_name, seed=seed)
    shifted = SpikeRate(
        base_trace,
        spikes=((rate_shift_at, math.inf, rate_shift_multiplier),),
    )
    setup = build_experiment(
        workload_name,
        seed=seed,
        rate_trace=shifted,
        telemetry=telemetry,
        **build_kwargs,
    )
    judge = RunJudge(
        slos=slos, policies=policies, rate_detector=rate_detector
    )
    judge.attach_tracer(telemetry.tracer)
    setup.context.listener.watch(judge)

    from repro.chaos.runner import run_chaos_scenario, standard_chaos_schedule

    chaos = run_chaos_scenario(
        setup, standard_chaos_schedule(), rounds=rounds, seed=seed
    )
    report = build_run_report(
        judge,
        telemetry,
        title=title or f"NoStop chaos run: {workload_name}",
        workload=workload_name,
        seed=seed,
        rounds=rounds,
        nostop_report=chaos.nostop,
        chaos_records=chaos.engine.records,
        batches=setup.context.listener.metrics.batches,
        sim_duration=setup.context.time,
        records_total=setup.context.listener.metrics.total_records(),
    )
    return JudgedRun(
        setup=setup, judge=judge, chaos=chaos,
        report=report, telemetry=telemetry,
    )
