"""Fig. 2 — effect of batch interval on streaming logistic regression.

Sweeps the batch interval at a fixed executor count and reports batch
processing time (Fig. 2a) and batch schedule delay (Fig. 2b).  Expected
shapes: processing time grows slowly with the interval; below the
stability crossover (≈10 s on the paper's testbed and in this
calibration) the schedule delay explodes; end-to-end delay is minimized
at the crossover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.analysis.tables import format_table
from repro.runner import SweepRunner, SweepSpec

#: Default sweep matching the paper's [1, 40] s interval range.
DEFAULT_INTERVALS = (2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 16.0, 20.0, 30.0, 40.0)


@dataclass(frozen=True)
class IntervalPoint:
    """One sweep point of Fig. 2."""

    interval: float
    processing_time: float
    schedule_delay: float
    end_to_end_delay: float
    unstable_fraction: float

    @property
    def stable(self) -> bool:
        return self.processing_time <= self.interval


@dataclass
class Fig2Result:
    points: List[IntervalPoint] = field(default_factory=list)
    workload: str = "logistic_regression"
    num_executors: int = 10

    def crossover_interval(self) -> float:
        """Smallest swept interval at which the system is stable."""
        for p in self.points:
            if p.stable:
                return p.interval
        raise RuntimeError("no stable interval in sweep")

    def best_interval(self) -> float:
        """Interval with the minimum end-to-end delay."""
        return min(self.points, key=lambda p: p.end_to_end_delay).interval

    def to_table(self) -> str:
        return format_table(
            ["interval (s)", "proc time (s)", "sched delay (s)",
             "e2e delay (s)", "stable"],
            [
                (p.interval, p.processing_time, p.schedule_delay,
                 p.end_to_end_delay, p.stable)
                for p in self.points
            ],
            title=(
                f"Fig. 2: batch-interval sweep "
                f"({self.workload}, {self.num_executors} executors)"
            ),
        )


def fig2_spec(
    intervals: Sequence[float] = DEFAULT_INTERVALS,
    workload: str = "logistic_regression",
    num_executors: int = 10,
    batches: int = 25,
    seed: int = 1,
    count_only: bool = False,
    fidelity: str = "exact",
) -> SweepSpec:
    """Declarative form of the Fig. 2 sweep (one cell per interval)."""
    base = {
        "workload": workload,
        "num_executors": num_executors,
        "batches": batches,
        "warmup": 4,
        "seed": seed,
        "count_only": count_only,
    }
    if fidelity != "exact":
        # Non-default tiers only, so exact-tier cell digests are stable.
        base["fidelity"] = fidelity
    return SweepSpec(
        name=f"fig2-{workload}",
        kind="fixed_config",
        base=base,
        grid={"batch_interval": [float(i) for i in intervals]},
    )


def run_fig2(
    intervals: Sequence[float] = DEFAULT_INTERVALS,
    workload: str = "logistic_regression",
    num_executors: int = 10,
    batches: int = 25,
    seed: int = 1,
    runner: Optional[SweepRunner] = None,
    count_only: bool = False,
    fidelity: str = "exact",
) -> Fig2Result:
    """Run the Fig. 2 sweep; each point is a fresh deployment.

    Executes through the sweep runner — pass a configured
    :class:`~repro.runner.SweepRunner` for parallelism and caching; the
    default (one in-process worker, no cache) reproduces the historical
    sequential behaviour exactly.
    """
    runner = runner or SweepRunner()
    sweep = runner.run(
        fig2_spec(
            intervals,
            workload=workload,
            num_executors=num_executors,
            batches=batches,
            seed=seed,
            count_only=count_only,
            fidelity=fidelity,
        )
    )
    result = Fig2Result(workload=workload, num_executors=num_executors)
    for res in sweep.results:
        result.points.append(
            IntervalPoint(
                interval=res["batchInterval"],
                processing_time=res["meanProcessingTime"],
                schedule_delay=res["meanSchedulingDelay"],
                end_to_end_delay=res["meanEndToEndDelay"],
                unstable_fraction=res["unstableFraction"],
            )
        )
    return result


if __name__ == "__main__":
    print(run_fig2().to_table())
