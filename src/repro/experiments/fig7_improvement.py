"""Fig. 7 — end-to-end delay improvement over the default configuration.

For each workload: run NoStop to (near-)convergence, then measure the
steady-state end-to-end delay of its final configuration on a fresh
deployment, against the same measurement for the untuned default
configuration (mid-range 20 s interval, 10 executors — see
``repro.baselines.fixed.DEFAULT_CONFIGURATION``).  "We repeat NoStop
optimization experiments five times for each workload and plot the
average performance measurement with the standard deviation" (§6.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.stats import Summary, improvement_factor, summarize
from repro.analysis.tables import format_table
from repro.baselines.fixed import DEFAULT_CONFIGURATION, run_fixed_configuration

from .common import build_experiment, make_controller
from .fig6_evolution import PAPER_WORKLOADS


@dataclass
class WorkloadImprovement:
    """Fig. 7 bars for one workload (mean ± std over repeats)."""

    workload: str
    nostop_delays: List[float] = field(default_factory=list)
    default_delays: List[float] = field(default_factory=list)
    final_intervals: List[float] = field(default_factory=list)
    final_executors: List[int] = field(default_factory=list)

    @property
    def nostop(self) -> Summary:
        return summarize(self.nostop_delays)

    @property
    def default(self) -> Summary:
        return summarize(self.default_delays)

    @property
    def improvement(self) -> float:
        """How many times smaller NoStop's delay is than the default's."""
        return improvement_factor(self.default.mean, self.nostop.mean)


@dataclass
class Fig7Result:
    workloads: Dict[str, WorkloadImprovement] = field(default_factory=dict)

    def to_table(self) -> str:
        rows = []
        for name, w in self.workloads.items():
            rows.append(
                (
                    name,
                    f"{w.nostop.mean:.2f} ± {w.nostop.std:.2f}",
                    f"{w.default.mean:.2f} ± {w.default.std:.2f}",
                    w.improvement,
                )
            )
        return format_table(
            ["workload", "NoStop e2e (s)", "default e2e (s)", "improvement x"],
            rows,
            title="Fig. 7: delay vs. default configuration (mean ± std over repeats)",
        )


def measure_configuration(
    workload: str,
    batch_interval: float,
    num_executors: int,
    seed: int,
    batches: int = 40,
) -> float:
    """Steady-state end-to-end delay of a fixed configuration."""
    setup = build_experiment(
        workload,
        seed=seed,
        batch_interval=batch_interval,
        num_executors=num_executors,
    )
    run = run_fixed_configuration(setup.context, batches=batches, warmup=5)
    return run.mean_end_to_end_delay


def run_fig7_one(
    workload: str,
    repeats: int = 5,
    rounds: int = 40,
    base_seed: int = 1,
) -> WorkloadImprovement:
    """Fig. 7 measurement for one workload."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    result = WorkloadImprovement(workload=workload)
    for rep in range(repeats):
        seed = base_seed + 100 * rep
        setup = build_experiment(workload, seed=seed)
        controller = make_controller(setup, seed=seed)
        report = controller.run(rounds)
        result.final_intervals.append(report.final_interval)
        result.final_executors.append(report.final_executors)
        result.nostop_delays.append(
            measure_configuration(
                workload, report.final_interval, report.final_executors,
                seed=seed + 7,
            )
        )
        result.default_delays.append(
            measure_configuration(
                workload,
                DEFAULT_CONFIGURATION.batch_interval,
                DEFAULT_CONFIGURATION.num_executors,
                seed=seed + 7,
            )
        )
    return result


def run_fig7(
    repeats: int = 5,
    rounds: int = 40,
    base_seed: int = 1,
    workloads=PAPER_WORKLOADS,
) -> Fig7Result:
    """Full Fig. 7 over the four paper workloads."""
    result = Fig7Result()
    for w in workloads:
        result.workloads[w] = run_fig7_one(
            w, repeats=repeats, rounds=rounds, base_seed=base_seed
        )
    return result


if __name__ == "__main__":
    print(run_fig7().to_table())
