"""Fig. 7 — end-to-end delay improvement over the default configuration.

For each workload: run NoStop to (near-)convergence, then measure the
steady-state end-to-end delay of its final configuration on a fresh
deployment, against the same measurement for the untuned default
configuration (mid-range 20 s interval, 10 executors — see
``repro.baselines.fixed.DEFAULT_CONFIGURATION``).  "We repeat NoStop
optimization experiments five times for each workload and plot the
average performance measurement with the standard deviation" (§6.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.stats import Summary, improvement_factor, summarize
from repro.analysis.tables import format_table
from repro.baselines.fixed import DEFAULT_CONFIGURATION
from repro.runner import SweepRunner, SweepSpec, is_failure
from repro.runner.cells import execute_cell

from .common import paper_repeat_seeds
from .fig6_evolution import PAPER_WORKLOADS


@dataclass
class WorkloadImprovement:
    """Fig. 7 bars for one workload (mean ± std over repeats)."""

    workload: str
    nostop_delays: List[float] = field(default_factory=list)
    default_delays: List[float] = field(default_factory=list)
    final_intervals: List[float] = field(default_factory=list)
    final_executors: List[int] = field(default_factory=list)
    failed_repeats: int = 0
    """Repeats dropped because a cell failed (supervised sweeps degrade
    to fewer repeats instead of losing the whole figure)."""

    @property
    def nostop(self) -> Summary:
        return summarize(self.nostop_delays)

    @property
    def default(self) -> Summary:
        return summarize(self.default_delays)

    @property
    def improvement(self) -> float:
        """How many times smaller NoStop's delay is than the default's."""
        return improvement_factor(self.default.mean, self.nostop.mean)


@dataclass
class Fig7Result:
    workloads: Dict[str, WorkloadImprovement] = field(default_factory=dict)

    def to_table(self) -> str:
        rows = []
        for name, w in self.workloads.items():
            rows.append(
                (
                    name,
                    f"{w.nostop.mean:.2f} ± {w.nostop.std:.2f}",
                    f"{w.default.mean:.2f} ± {w.default.std:.2f}",
                    w.improvement,
                )
            )
        return format_table(
            ["workload", "NoStop e2e (s)", "default e2e (s)", "improvement x"],
            rows,
            title="Fig. 7: delay vs. default configuration (mean ± std over repeats)",
        )


def measure_configuration(
    workload: str,
    batch_interval: float,
    num_executors: int,
    seed: int,
    batches: int = 40,
    fidelity: str = "exact",
) -> float:
    """Steady-state end-to-end delay of a fixed configuration."""
    params = {
        "workload": workload,
        "batch_interval": batch_interval,
        "num_executors": num_executors,
        "seed": seed,
        "batches": batches,
    }
    if fidelity != "exact":
        params["fidelity"] = fidelity
    result = execute_cell("fixed_config", params)
    return result["meanEndToEndDelay"]


def fig7_optimize_spec(
    workload: str,
    repeats: int = 5,
    rounds: int = 40,
    base_seed: int = 1,
    count_only: bool = False,
    fidelity: str = "exact",
) -> SweepSpec:
    """Stage 1: the per-repeat NoStop optimization runs."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    base = {"workload": workload, "rounds": rounds, "count_only": count_only}
    if fidelity != "exact":
        # Only non-default tiers enter the cell params, so exact-tier
        # cell digests (cache keys, journal identities) are unchanged.
        base["fidelity"] = fidelity
    return SweepSpec(
        name=f"fig7-{workload}-optimize",
        kind="nostop",
        base=base,
        cases=[{"seed": s} for s in paper_repeat_seeds(base_seed, repeats)],
    )


def fig7_measure_spec(
    workload: str,
    reports: Sequence[dict],
    base_seed: int = 1,
    count_only: bool = False,
    fidelity: str = "exact",
) -> SweepSpec:
    """Stage 2: steady-state measurement of the stage-1 outcomes.

    Each repeat contributes two cells — NoStop's final configuration and
    the untuned default — both measured with the repeat's ``seed + 7``,
    exactly the sequential protocol.  A repeat whose optimization cell
    failed contributes nothing, but surviving repeats keep their
    *original* rep number so their measurement seeds are unchanged —
    with no failures the spec is byte-identical to the unsupervised one.
    """
    cases = []
    for rep, report in enumerate(reports):
        if is_failure(report):
            continue
        seed = base_seed + 100 * rep + 7
        cases.append(
            {
                "batch_interval": report["finalInterval"],
                "num_executors": report["finalExecutors"],
                "seed": seed,
            }
        )
        cases.append(
            {
                "batch_interval": DEFAULT_CONFIGURATION.batch_interval,
                "num_executors": DEFAULT_CONFIGURATION.num_executors,
                "seed": seed,
            }
        )
    base = {
        "workload": workload,
        "batches": 40,
        "warmup": 5,
        "count_only": count_only,
    }
    if fidelity != "exact":
        base["fidelity"] = fidelity
    return SweepSpec(
        name=f"fig7-{workload}-measure",
        kind="fixed_config",
        base=base,
        cases=cases,
    )


def run_fig7_one(
    workload: str,
    repeats: int = 5,
    rounds: int = 40,
    base_seed: int = 1,
    runner: Optional[SweepRunner] = None,
    count_only: bool = False,
    fidelity: str = "exact",
) -> WorkloadImprovement:
    """Fig. 7 measurement for one workload.

    Two chained sweeps through the runner: the optimization repeats,
    then the measurement cells their final configurations imply.
    """
    runner = runner or SweepRunner()
    optimize = runner.run(
        fig7_optimize_spec(
            workload,
            repeats=repeats,
            rounds=rounds,
            base_seed=base_seed,
            count_only=count_only,
            fidelity=fidelity,
        )
    )
    measure = runner.run(
        fig7_measure_spec(
            workload,
            optimize.results,
            base_seed=base_seed,
            count_only=count_only,
            fidelity=fidelity,
        )
    )
    result = WorkloadImprovement(workload=workload)
    survivors = [r for r in optimize.results if not is_failure(r)]
    result.failed_repeats = len(optimize.results) - len(survivors)
    # measure.results pairs up with survivors in order: fig7_measure_spec
    # skipped failed repeats, so surviving repeat i owns cells 2i, 2i+1.
    for i, report in enumerate(survivors):
        nostop_cell = measure.results[2 * i]
        default_cell = measure.results[2 * i + 1]
        if is_failure(nostop_cell) or is_failure(default_cell):
            result.failed_repeats += 1
            continue
        result.final_intervals.append(report["finalInterval"])
        result.final_executors.append(report["finalExecutors"])
        result.nostop_delays.append(nostop_cell["meanEndToEndDelay"])
        result.default_delays.append(default_cell["meanEndToEndDelay"])
    return result


def run_fig7(
    repeats: int = 5,
    rounds: int = 40,
    base_seed: int = 1,
    workloads=PAPER_WORKLOADS,
    runner: Optional[SweepRunner] = None,
    count_only: bool = False,
    fidelity: str = "exact",
) -> Fig7Result:
    """Full Fig. 7 over the four paper workloads."""
    runner = runner or SweepRunner()
    result = Fig7Result()
    for w in workloads:
        result.workloads[w] = run_fig7_one(
            w,
            repeats=repeats,
            rounds=rounds,
            base_seed=base_seed,
            runner=runner,
            count_only=count_only,
            fidelity=fidelity,
        )
    return result


if __name__ == "__main__":
    print(run_fig7().to_table())
