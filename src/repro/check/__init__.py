"""Correctness subsystem: runtime invariants, analytic oracles, linter.

The reproduction substitutes the authors' physical cluster with a
discrete-event simulator, so simulator *fidelity bugs* are the dominant
threat to every figure.  This package provides three lines of defense:

* :mod:`repro.check.invariants` — an engine hooked at batch boundaries
  (the chaos engine's injection point) that checks conservation laws the
  simulator must obey no matter what the configuration or fault schedule
  does: record conservation across the Kafka → receiver → queue → engine
  path, simulation-clock monotonicity, queue accounting, scheduling-delay
  slack bounded by injected reconfiguration pauses, and executor
  busy-time ≤ wall-time × cores.
* :mod:`repro.check.oracles` — closed-form expectations (steady-state
  delay identity, utilization-law processing time) compared against
  simulator output within stated tolerances, plus the metamorphic
  relations of :mod:`repro.check.metamorphic`.
* :mod:`repro.check.lint` — an AST determinism linter for the hazard
  class (unseeded RNGs, wall-clock reads, unordered iteration) that
  would silently break the runner's bit-identity and cache guarantees.

``repro check`` / ``repro lint`` expose all three on the CLI.
"""

from .invariants import InvariantEngine
from .lint import LintFinding, lint_file, lint_paths, lint_source
from .metamorphic import (
    executor_homogeneity_check,
    time_dilation_check,
)
from .oracles import (
    predict_processing_time,
    run_oracles,
    steady_state_delay_oracle,
    utilization_oracle,
)
from .run import run_check
from .violations import CheckReport, InvariantViolation, OracleResult

__all__ = [
    "CheckReport",
    "InvariantEngine",
    "InvariantViolation",
    "LintFinding",
    "OracleResult",
    "executor_homogeneity_check",
    "lint_file",
    "lint_paths",
    "lint_source",
    "predict_processing_time",
    "run_check",
    "run_oracles",
    "steady_state_delay_oracle",
    "time_dilation_check",
    "utilization_oracle",
]
