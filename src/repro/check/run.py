"""``repro check`` orchestration: run a target with invariants attached.

A *check run* assembles one of the repository's standard scenarios,
attaches an :class:`~repro.check.invariants.InvariantEngine` before the
first batch, drives the run to completion, and then evaluates the
analytic oracles over the recorded batches:

* ``quickstart`` — the README's fixed-configuration run (WordCount at
  the default 10 s x 10 executors).
* ``fig7`` — one NoStop optimization cell of the paper's Fig. 7 protocol
  (SPSA rounds, pause rule, rate monitor).
* ``chaos`` — the standard two-fault chaos scenario with the hardened
  controller.  Faults deliberately violate steady-state assumptions, so
  oracle deltas are informational there; invariants still gate.

The optional metamorphic pass additionally runs a k=2 time-dilated twin
of the logistic-regression workload and the executor-homogeneity
identity, folding their results into the same report.
"""

from __future__ import annotations

from typing import Optional

from .invariants import InvariantEngine
from .metamorphic import (
    dilated_experiment_kwargs,
    executor_homogeneity_check,
    time_dilation_check,
)
from .oracles import run_oracles
from .violations import CheckReport

CHECK_TARGETS = ("quickstart", "fig7", "chaos")

#: Defaults mirroring the shipped examples: quickstart uses the README
#: seed, fig7 the figure protocol's base seed, chaos the example script.
_DEFAULT_SEEDS = {"quickstart": 42, "fig7": 1, "chaos": 7}
_DEFAULT_WORKLOADS = {
    "quickstart": "wordcount",
    "fig7": "wordcount",
    "chaos": "wordcount",
}


def run_check(
    target: str = "quickstart",
    workload: Optional[str] = None,
    seed: Optional[int] = None,
    batches: int = 30,
    rounds: int = 40,
    warmup: int = 5,
    metamorphic: bool = False,
    fidelity: str = "exact",
) -> CheckReport:
    """Run one check target end to end and return its report.

    ``fidelity`` selects the simulation tier the target runs on.  The
    exact tier attaches the per-batch :class:`InvariantEngine`; the fast
    tiers (``vectorized``/``fluid``) have no listener-hook surface for
    it, so :func:`~repro.fast.invariants.check_fast_run` evaluates the
    fast-tier invariant set post-hoc instead.  The analytic oracles are
    tier-independent and run either way — they are exactly the cross-tier
    equivalence contract.  Chaos fault models hook the exact engine's
    internals and therefore require ``fidelity="exact"``.
    """
    from repro.experiments.common import build_experiment, make_controller
    from repro.obs import Telemetry, governance_report

    if target not in CHECK_TARGETS:
        raise ValueError(
            f"unknown check target {target!r}; expected one of {CHECK_TARGETS}"
        )
    if target == "chaos" and fidelity != "exact":
        raise ValueError(
            "the chaos target requires the exact tier "
            f"(got fidelity={fidelity!r})"
        )
    workload = workload or _DEFAULT_WORKLOADS[target]
    seed = _DEFAULT_SEEDS[target] if seed is None else seed

    # Telemetry is live so governance can diff the run's actual series
    # against the catalog (tracing-parity CI guarantees telemetry is
    # pure observation — it changes no simulated result).
    setup = build_experiment(
        workload, seed=seed, telemetry=Telemetry(), fidelity=fidelity
    )
    engine = InvariantEngine(setup.context) if fidelity == "exact" else None
    gate_oracles = True

    if target == "quickstart":
        from repro.baselines.fixed import run_fixed_configuration

        run_fixed_configuration(setup.context, batches=batches, warmup=warmup)
    elif target == "fig7":
        controller = make_controller(setup, seed=seed)
        controller.run(rounds)
    else:  # chaos
        from repro.chaos.runner import run_chaos_scenario, standard_chaos_schedule

        run_chaos_scenario(
            setup, standard_chaos_schedule(), rounds=rounds, seed=seed
        )
        gate_oracles = False

    if engine is not None:
        checks_run = engine.checks_run
        batches_checked = engine.batches_checked
        violations = list(engine.violations)
    else:
        from repro.fast import check_fast_run

        checks_run, violations = check_fast_run(setup.context)
        batches_checked = len(setup.context.listener.metrics)

    report = CheckReport(
        target=target,
        workload=workload,
        seed=seed,
        checks_run=checks_run,
        batches_checked=batches_checked,
        violations=violations,
        oracles=run_oracles(setup, warmup=warmup),
        gate_oracles=gate_oracles,
        governance=governance_report(setup.context.telemetry.metrics),
    )

    if metamorphic:
        report.oracles.extend(_metamorphic_results(seed, batches, warmup))
    return report


def _metamorphic_results(seed: int, batches: int, warmup: int):
    """Time-dilation twin + executor-homogeneity identity."""
    from repro.baselines.fixed import run_fixed_configuration
    from repro.experiments.common import build_experiment

    k = 2.0
    wl = "logistic_regression"  # pure-compute stages: dilation is exact
    base = build_experiment(wl, seed=seed)
    run_fixed_configuration(base.context, batches=batches, warmup=warmup)
    dilated = build_experiment(
        wl, seed=seed, **dilated_experiment_kwargs(wl, k, seed=seed)
    )
    run_fixed_configuration(dilated.context, batches=batches, warmup=warmup)
    stability, delay = time_dilation_check(
        base.context.listener.metrics.batches[warmup:],
        dilated.context.listener.metrics.batches[warmup:],
        k,
    )
    homogeneity = executor_homogeneity_check(base.workload, seed=seed)
    return [stability, delay, homogeneity]
