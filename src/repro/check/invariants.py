"""Runtime invariant engine.

Attaches to a live :class:`~repro.streaming.context.StreamingContext`
through the same two observation surfaces the chaos engine and the run
judge use — the batch-boundary hook and the listener subscription — and
checks, at every boundary and for every completed batch, conservation
laws the simulator must obey regardless of configuration, controller, or
fault schedule:

* **clock-monotonicity** — batch boundaries strictly increase and batch
  indices are strictly ordered; a completed batch's processing window is
  well-formed (``batch_time <= processing_start <= processing_end``) and
  jobs on the serialized engine never overlap.
* **record-conservation** — every record the producer appended is either
  still unconsumed in the topic (consumer lag), processed by a completed
  batch, waiting in the batch queue, or was dropped with an evicted
  batch:  ``produced = consumed + lag`` and
  ``consumed = processed + queued + dropped``.
* **queue-accounting** — the batch queue's own ledger balances
  (``enqueued = dequeued + dropped + waiting``), and scheduling delay is
  consistent with backlog: a batch's start time equals
  ``max(batch_time, previous job's finish)`` except for slack introduced
  by reconfiguration pauses, so cumulative slack is bounded by the
  engine's injected pause total (Little's-law bookkeeping — waiting time
  comes from queued work plus accounted pauses, never from nowhere).
* **busy-time** — per job, the summed task busy time never exceeds the
  job's wall time × executor count × cores per executor.

Checking is pure observation: the engine only *enables* the scheduler's
task recording (``keep_runs`` / ``record_tasks``), which the CI
``test-traced`` job already guarantees changes no simulation result.

Violations surface as structured
:class:`~repro.check.violations.InvariantViolation` records and as the
``repro_check_violations_total`` counter on the existing obs registry;
``repro check --strict`` fails on any.
"""

from __future__ import annotations

from typing import List, Optional

from repro.obs import catalog
from repro.streaming.context import StreamingContext
from repro.streaming.metrics import BatchInfo

from .violations import InvariantViolation

#: Float-comparison slop for simulated clock arithmetic (seconds).
EPS = 1e-6


class InvariantEngine:
    """Boundary-hooked conservation checker for one streaming context."""

    def __init__(
        self,
        context: StreamingContext,
        check_busy_time: bool = True,
        max_recorded: int = 50,
    ) -> None:
        self.context = context
        self.max_recorded = max_recorded
        self.violations: List[InvariantViolation] = []
        self.total_violations = 0
        self.checks_run = 0
        self.batches_checked = 0
        self._last_boundary: Optional[float] = None
        self._last_batch_index: Optional[int] = None
        # The engine's free_at starts at 0.0; the first job can never
        # start before it.
        self._prev_end = 0.0
        self._slack_total = 0.0
        self._slack_checks = 0
        self._check_busy_time = check_busy_time
        if check_busy_time:
            # Observation-only switches: record per-task windows so busy
            # time can be audited.  Tracing-parity CI guarantees these
            # change no simulated result.
            context.engine.keep_runs = True
            context.engine.scheduler.record_tasks = True
        metrics = context.telemetry.metrics
        # Violations are a family labeled by invariant name (a closed set
        # of engine identities), so a failing run says *which* invariant
        # broke without a log dive.
        self._m_violations = catalog.instrument(
            metrics, "repro_check_violations_total"
        )
        self._m_checks = catalog.instrument(
            metrics, "repro_check_checks_total"
        )
        context.add_boundary_hook(self.on_boundary)
        context.listener.subscribe(self.on_batch)

    # -- reporting ----------------------------------------------------------

    def _violate(self, invariant: str, time: float, message: str, **details):
        self.total_violations += 1
        self._m_violations.labels(invariant=invariant).inc()
        if len(self.violations) < self.max_recorded:
            self.violations.append(
                InvariantViolation(
                    invariant=invariant,
                    time=time,
                    message=message,
                    details=details,
                )
            )

    def _check(self, ok: bool, invariant: str, time: float, message: str,
               **details) -> bool:
        self.checks_run += 1
        self._m_checks.inc()
        if not ok:
            self._violate(invariant, time, message, **details)
        return ok

    @property
    def ok(self) -> bool:
        return self.total_violations == 0

    # -- boundary-time checks ----------------------------------------------

    def on_boundary(self, boundary: float) -> None:
        """Fires with the upcoming boundary, before the batch closes.

        At this instant the pipeline is quiescent: every record the
        consumer has polled so far went into a batch that has been
        processed, waits in the queue, or was evicted — so the
        conservation ledgers must balance exactly.
        """
        ctx = self.context
        if self._last_boundary is not None:
            self._check(
                boundary > self._last_boundary,
                "clock-monotonicity",
                boundary,
                f"boundary {boundary} does not advance past "
                f"{self._last_boundary}",
                previous=self._last_boundary,
            )
        self._last_boundary = boundary

        producer = ctx.generator.producer
        consumer = ctx.receiver.consumer
        produced = producer.total_produced
        appended = producer.topic.total_records()
        consumed = consumer.total_consumed
        lag = consumer.lag()
        self._check(
            produced == appended,
            "record-conservation",
            boundary,
            f"producer counted {produced} records but topic holds "
            f"{appended}",
            produced=produced,
            appended=appended,
        )
        self._check(
            produced == consumed + lag,
            "record-conservation",
            boundary,
            f"produced {produced} != consumed {consumed} + lag {lag}",
            produced=produced,
            consumed=consumed,
            lag=lag,
        )
        processed = ctx.listener.metrics.total_records()
        queued = ctx.queue.queued_records()
        dropped = ctx.queue.total_dropped_records
        self._check(
            consumed == processed + queued + dropped,
            "record-conservation",
            boundary,
            f"consumed {consumed} != processed {processed} + "
            f"queued {queued} + dropped {dropped}",
            consumed=consumed,
            processed=processed,
            queued=queued,
            dropped=dropped,
        )
        self._check(
            ctx.queue.conservation_ok(),
            "queue-accounting",
            boundary,
            f"queue ledger unbalanced: enqueued {ctx.queue.total_enqueued} "
            f"!= dequeued {ctx.queue.total_dequeued} + dropped "
            f"{ctx.queue.total_dropped} + waiting {len(ctx.queue)}",
            enqueued=ctx.queue.total_enqueued,
            dequeued=ctx.queue.total_dequeued,
            dropped=ctx.queue.total_dropped,
            waiting=len(ctx.queue),
        )

    # -- per-batch checks ---------------------------------------------------

    def on_batch(self, info: BatchInfo) -> None:
        self.batches_checked += 1
        t = info.processing_end
        if self._last_batch_index is not None:
            self._check(
                info.batch_index > self._last_batch_index,
                "clock-monotonicity",
                t,
                f"batch index {info.batch_index} not increasing "
                f"(previous {self._last_batch_index})",
                index=info.batch_index,
                previous=self._last_batch_index,
            )
        self._last_batch_index = info.batch_index

        self._check(
            info.batch_time - EPS
            <= info.processing_start
            <= info.processing_end + EPS,
            "clock-monotonicity",
            t,
            f"batch {info.batch_index} processing window "
            f"[{info.processing_start}, {info.processing_end}] "
            f"inconsistent with batch time {info.batch_time}",
            batch_time=info.batch_time,
            processing_start=info.processing_start,
            processing_end=info.processing_end,
        )
        self._check(
            info.mean_arrival_time <= info.batch_time + EPS,
            "clock-monotonicity",
            t,
            f"batch {info.batch_index} mean arrival "
            f"{info.mean_arrival_time} after its close {info.batch_time}",
            mean_arrival=info.mean_arrival_time,
            batch_time=info.batch_time,
        )
        # Serialized engine: jobs never overlap.
        self._check(
            info.processing_start >= self._prev_end - EPS,
            "queue-accounting",
            t,
            f"batch {info.batch_index} started at {info.processing_start} "
            f"before previous job finished at {self._prev_end}",
            processing_start=info.processing_start,
            previous_end=self._prev_end,
        )
        # Little's-law bookkeeping: waiting time is explained by backlog
        # (the previous job still running) — any slack beyond that must
        # come from reconfiguration pauses the engine accounted for.
        slack = info.processing_start - max(info.batch_time, self._prev_end)
        self._slack_total += max(0.0, slack)
        self._slack_checks += 1
        budget = self.context.engine.total_pause_injected
        self._check(
            self._slack_total <= budget + EPS * self._slack_checks,
            "queue-accounting",
            t,
            f"cumulative scheduling-delay slack {self._slack_total:.6f}s "
            f"exceeds injected pause budget {budget:.6f}s",
            slack_total=self._slack_total,
            pause_budget=budget,
        )
        self._prev_end = max(self._prev_end, info.processing_end)

        if self._check_busy_time:
            self._audit_job_runs(info)

    def _audit_job_runs(self, info: BatchInfo) -> None:
        """Busy-time audit over every job run recorded since last batch."""
        engine = self.context.engine
        cores_per_executor = self.context.resource_manager.executor_cores
        for run in engine.last_runs:
            busy = sum(tr.finish - tr.start for tr in run.task_runs)
            wall = run.finish - run.start
            capacity = wall * run.executors_used * cores_per_executor
            self._check(
                busy <= capacity + EPS,
                "busy-time",
                run.finish,
                f"job {run.job_id}: task busy time {busy:.6f}s exceeds "
                f"wall {wall:.6f}s x {run.executors_used} executors x "
                f"{cores_per_executor} cores = {capacity:.6f}s",
                job_id=run.job_id,
                busy=busy,
                wall=wall,
                executors=run.executors_used,
                cores_per_executor=cores_per_executor,
            )
        # Runs are audited exactly once; the engine only appends.
        engine.last_runs.clear()
