"""Metamorphic relations over the simulator.

Where the analytic oracles check absolute values, metamorphic relations
check *transformations*: apply a change to the inputs whose effect on the
outputs is known exactly, and verify the simulator agrees.

* **time-dilation** — scaling arrival rates and executor speeds by the
  same factor ``k`` multiplies both the work per batch and the capacity
  per second by ``k``, so processing times, stability classification and
  interval-normalized delays are invariant.  (Holds for compute-bound
  workloads: I/O cost pays disk penalties, not CPU speed, so the relation
  is exercised on streaming logistic regression whose stages are pure
  compute.  Driver-side overheads and per-stage fixed costs do not scale
  with ``k`` either, which is what the tolerance absorbs.)
* **executor-homogeneity** — for the LPT list scheduler, N single-core
  executors of speed s are exactly one N-core executor of speed s: with
  overheads and noise disabled the two makespans agree to float
  round-off (overheads are charged per *executor* — startup — and per
  *executor count* — coordination — so they are removed rather than
  tolerated).
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import List, Sequence, Tuple

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.executor import Executor
from repro.cluster.node import DiskType, I5_9400, Node, NodeRole
from repro.datagen.rates import SpikeRate
from repro.engine.overhead import ZERO_OVERHEAD
from repro.engine.task_scheduler import NoiseModel, TaskScheduler
from repro.streaming.metrics import BatchInfo

from .violations import OracleResult

#: Allowed difference in unstable-batch fraction under time dilation.
DILATION_STABILITY_TOL = 0.10
#: Allowed difference in mean normalized (e2e/interval) delay.
DILATION_DELAY_TOL = 0.10


def scaled_cluster(base: Cluster, k: float) -> Cluster:
    """A copy of ``base`` with every CPU's speed factor multiplied by k."""
    if k <= 0:
        raise ValueError(f"scale factor must be positive, got {k}")
    nodes = [
        Node(
            n.node_id,
            replace(n.cpu, speed_factor=n.cpu.speed_factor * k),
            n.disk,
            n.role,
            memory_gb=n.memory_gb,
        )
        for n in base.nodes
    ]
    return Cluster(nodes, name=f"{base.name}-x{k:g}")


def scaled_rate_trace(trace, k: float):
    """``trace`` with every instantaneous rate multiplied by k."""
    return SpikeRate(base=trace, spikes=((0.0, math.inf, k),))


def stability_fraction(batches: Sequence[BatchInfo]) -> float:
    """Fraction of non-empty batches classified stable (proc <= interval)."""
    considered = [b for b in batches if b.records > 0]
    if not considered:
        return 1.0
    return sum(1 for b in considered if b.stable) / len(considered)


def normalized_delays(batches: Sequence[BatchInfo]) -> List[float]:
    """Per-batch end-to-end delay in units of the batch's interval."""
    return [
        b.end_to_end_delay / b.interval for b in batches if b.records > 0
    ]


def time_dilation_check(
    base_batches: Sequence[BatchInfo],
    dilated_batches: Sequence[BatchInfo],
    k: float,
    stability_tol: float = DILATION_STABILITY_TOL,
    delay_tol: float = DILATION_DELAY_TOL,
) -> Tuple[OracleResult, OracleResult]:
    """Compare a base run against its k-dilated twin.

    Returns two :class:`OracleResult`s — stability-classification
    invariance and normalized-delay invariance.  Callers produce the two
    runs with :func:`scaled_cluster` / :func:`scaled_rate_trace` (see
    ``tests/check/test_metamorphic.py`` for the canonical wiring).
    """
    base_stab = stability_fraction(base_batches)
    dil_stab = stability_fraction(dilated_batches)
    stability = OracleResult(
        oracle=f"time-dilation-stability-x{k:g}",
        expected=base_stab,
        actual=dil_stab,
        tolerance=stability_tol,
        samples=min(len(base_batches), len(dilated_batches)),
        detail="stable-batch fraction must survive rate+speed scaling",
    )
    base_norm = normalized_delays(base_batches)
    dil_norm = normalized_delays(dilated_batches)
    if base_norm and dil_norm:
        expected = float(np.mean(base_norm))
        actual = float(np.mean(dil_norm))
        samples = min(len(base_norm), len(dil_norm))
    else:
        expected = actual = 0.0
        samples = 0
    delay = OracleResult(
        oracle=f"time-dilation-delay-x{k:g}",
        expected=expected,
        actual=actual,
        tolerance=delay_tol * max(expected, 1e-9),
        samples=samples,
        detail="mean e2e delay / interval must survive rate+speed scaling",
    )
    return stability, delay


def _uniform_node(cores: int, speed: float) -> Node:
    return Node(
        1,
        replace(I5_9400, cores=cores, speed_factor=speed),
        DiskType.SSD,
        NodeRole.WORKER,
        memory_gb=4.0 * cores,
    )


def executor_homogeneity_check(
    workload,
    records: int = 50_000,
    n: int = 8,
    speed: float = 1.0,
    seed: int = 0,
    rel_tol: float = 1e-9,
) -> OracleResult:
    """N single-core executors at speed s ≡ one N-core executor at speed s.

    Runs one batch job through the task scheduler both ways with zero
    overheads and zero noise; the makespans must agree to round-off
    (same aggregate capacity, same LPT order, no per-executor charges).
    """
    rng = np.random.default_rng(seed)
    job = workload.build_job(
        batch_time=0.0, records=records, rng=np.random.default_rng(seed)
    )
    scheduler = TaskScheduler(
        overhead=ZERO_OVERHEAD, noise=NoiseModel(sigma=0.0)
    )
    split = [
        Executor(
            executor_id=i,
            node=_uniform_node(n, speed),
            cores=1,
            memory_gb=1.0,
            initialized=True,
        )
        for i in range(n)
    ]
    aggregate = [
        Executor(
            executor_id=0,
            node=_uniform_node(n, speed),
            cores=n,
            memory_gb=float(n),
            initialized=True,
        )
    ]
    run_split = scheduler.run_job(job, split, 0.0, rng)
    run_agg = scheduler.run_job(job, aggregate, 0.0, np.random.default_rng(seed))
    expected = run_split.processing_time
    actual = run_agg.processing_time
    return OracleResult(
        oracle=f"executor-homogeneity-{n}x1-vs-1x{n}",
        expected=expected,
        actual=actual,
        tolerance=rel_tol * max(abs(expected), 1.0),
        samples=1,
        detail=(
            f"{n} single-core executors vs one {n}-core executor, "
            "zero overhead/noise"
        ),
    )


def dilated_experiment_kwargs(
    workload_name: str,
    k: float,
    seed: int = 0,
    rate_hold: float = 10.0,
) -> dict:
    """``build_experiment`` keyword overrides for the k-dilated twin.

    Kept here (rather than importing ``build_experiment``, which would
    create an import cycle through ``repro.experiments``) so tests and
    the CLI assemble the dilated run identically.
    """
    from repro.cluster.cluster import paper_cluster
    from repro.datagen.rates import paper_rate_trace

    base_trace = paper_rate_trace(workload_name, seed=seed, hold=rate_hold)
    return {
        "cluster": scaled_cluster(paper_cluster(), k),
        "rate_trace": scaled_rate_trace(base_trace, k),
    }


__all__ = [
    "DILATION_DELAY_TOL",
    "DILATION_STABILITY_TOL",
    "dilated_experiment_kwargs",
    "executor_homogeneity_check",
    "normalized_delays",
    "scaled_cluster",
    "scaled_rate_trace",
    "stability_fraction",
    "time_dilation_check",
]
