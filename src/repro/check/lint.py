"""Determinism linter: an AST pass over the package source.

The sweep runner's guarantees — parallel execution bit-identical to
sequential, content-addressed result cache — hold only if every
result-producing path is a pure function of its seeds.  Three hazard
classes silently break that, and this linter flags all of them:

* **DET001 — unseeded randomness.**  Module-level ``random.*`` calls and
  the legacy ``numpy.random.*`` global functions draw from ambient
  process state; ``default_rng()`` / ``RandomState()`` / ``Random()``
  and the numpy bit-generator constructors (``PCG64()``, ``MT19937()``,
  ``Philox()``, …) without a seed argument are seeded from the OS, as
  are the explicitly unseeded spellings ``default_rng(None)`` and
  ``default_rng(seed=None)``.  Explicitly seeded constructions
  (``default_rng(seed)``) are fine.
* **DET002 — wall-clock reads.**  ``time.time`` / ``perf_counter`` /
  ``monotonic`` / ``datetime.now`` and friends leak host timing into
  results.  Both calls and bare references (e.g. used as a default
  argument) are flagged.
* **DET003 — unordered iteration feeding ordered output.**  Iterating a
  ``set`` (literal, comprehension, or ``set(...)`` call) in a ``for``
  loop or comprehension, materializing one with ``list`` / ``tuple`` /
  ``enumerate``, or ``str.join``-ing a set or dict view makes output
  depend on hash order — which for strings depends on
  ``PYTHONHASHSEED``.  (Dict iteration itself is insertion-ordered and
  is *not* flagged.)

Legitimate sites (the self-profiler's timing clock, the runner's
wall-time accounting — measurement, not results) carry a pragma comment
on the offending line::

    t0 = time.perf_counter()  # det: allow-wallclock

``# det: allow`` suppresses every rule on its line; the targeted forms
are ``allow-rng``, ``allow-wallclock``, ``allow-unordered``.

Exposed as ``repro lint [paths...]``; exits non-zero on any finding, so
CI wires it next to ruff.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

#: Fully-qualified callables/attributes that read the wall clock.
WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.clock_gettime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: RNG constructors that are deterministic *only when given a seed*.
#: Includes every numpy bit-generator class: ``Generator(PCG64())``
#: hides an OS-entropy seed inside the nested constructor, and the
#: visitor walks nested calls, so the inner ``PCG64()`` is what gets
#: flagged.
SEEDABLE_FACTORIES = {
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.SeedSequence",
    "numpy.random.Generator",
    "numpy.random.PCG64",
    "numpy.random.PCG64DXSM",
    "numpy.random.MT19937",
    "numpy.random.Philox",
    "numpy.random.SFC64",
    "random.Random",
}

#: Inherently nondeterministic regardless of arguments.
ALWAYS_NONDET = {"random.SystemRandom", "os.urandom", "uuid.uuid4", "secrets"}

#: Sinks that materialize their first argument in iteration order.
ORDER_SINKS = {"list", "tuple", "enumerate"}

_PRAGMA_ALL = "det: allow"
_PRAGMA_BY_RULE = {
    "DET001": "det: allow-rng",
    "DET002": "det: allow-wallclock",
    "DET003": "det: allow-unordered",
}


@dataclass(frozen=True)
class LintFinding:
    """One determinism hazard at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, Union[str, int]]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


def _qualified_name(
    node: ast.AST, aliases: Dict[str, str]
) -> Optional[str]:
    """Resolve a Name/Attribute chain to a dotted module path, if static."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = aliases.get(node.id, node.id)
    parts.append(base)
    return ".".join(reversed(parts))


def _is_set_expr(node: ast.AST, aliases: Dict[str, str]) -> bool:
    """Whether ``node`` statically evaluates to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _qualified_name(node.func, aliases)
        return name in {"set", "frozenset"}
    return False


def _is_dict_view(node: ast.AST) -> bool:
    """Whether ``node`` is a ``.keys()`` / ``.values()`` / ``.items()`` call."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in {"keys", "values", "items"}
        and not node.args
        and not node.keywords
    )


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, path: str, source_lines: Sequence[str]) -> None:
        self.path = path
        self.lines = source_lines
        self.aliases: Dict[str, str] = {}
        self.findings: List[LintFinding] = []

    # -- import bookkeeping -------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self.aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
        self.generic_visit(node)

    # -- reporting ----------------------------------------------------------

    def _suppressed(self, rule: str, lineno: int) -> bool:
        if not 1 <= lineno <= len(self.lines):
            return False
        line = self.lines[lineno - 1]
        if "#" not in line:
            return False
        comment = line[line.index("#"):]
        if _PRAGMA_BY_RULE[rule] in comment:
            return True
        # Bare "det: allow" (not followed by a dash) suppresses all rules.
        idx = comment.find(_PRAGMA_ALL)
        if idx >= 0:
            rest = comment[idx + len(_PRAGMA_ALL):]
            return not rest.startswith("-")
        return False

    def _flag(self, rule: str, node: ast.AST, message: str) -> None:
        if self._suppressed(rule, node.lineno):
            return
        self.findings.append(
            LintFinding(
                path=self.path,
                line=node.lineno,
                col=node.col_offset + 1,
                rule=rule,
                message=message,
            )
        )

    # -- DET001 / DET002: calls and references ------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and node.args
        ):
            arg = node.args[0]
            if _is_set_expr(arg, self.aliases) or _is_dict_view(arg):
                self._flag(
                    "DET003",
                    node,
                    "join over an unordered collection — output order "
                    "depends on hash seed",
                )
        name = _qualified_name(node.func, self.aliases)
        if name:
            self._check_called_name(node, name)
            if name in ORDER_SINKS and node.args:
                if _is_set_expr(node.args[0], self.aliases):
                    self._flag(
                        "DET003",
                        node,
                        f"{name}() materializes a set in hash order — "
                        "sort it first",
                    )
        self.generic_visit(node)

    def _check_called_name(self, node: ast.Call, name: str) -> None:
        if name in WALL_CLOCK:
            self._flag(
                "DET002",
                node,
                f"wall-clock read {name}() in a result-producing path",
            )
            return
        if name in ALWAYS_NONDET or name.split(".")[0] in ALWAYS_NONDET:
            self._flag("DET001", node, f"nondeterministic source {name}()")
            return
        if name in SEEDABLE_FACTORIES:
            if self._seed_missing(node):
                self._flag(
                    "DET001",
                    node,
                    f"{name}() without a seed draws OS entropy — pass an "
                    "explicit seed",
                )
            return
        root = name.split(".")
        if root[0] == "random" and len(root) == 2:
            self._flag(
                "DET001",
                node,
                f"module-level {name}() uses the ambient global RNG — "
                "use a seeded Generator",
            )
        elif (
            len(root) >= 3
            and root[0] == "numpy"
            and root[1] == "random"
        ):
            self._flag(
                "DET001",
                node,
                f"legacy global {name}() uses ambient numpy RNG state — "
                "use a seeded Generator",
            )

    @staticmethod
    def _seed_missing(node: ast.Call) -> bool:
        """Whether a seedable-factory call is (statically) unseeded.

        Unseeded means: no arguments at all, a literal ``None`` first
        positional, or an explicit ``seed=None`` keyword — all three
        fall back to OS entropy at runtime.  Any other argument is
        assumed to be a real seed.
        """
        if not node.args and not node.keywords:
            return True
        if node.args:
            first = node.args[0]
            return isinstance(first, ast.Constant) and first.value is None
        for kw in node.keywords:
            if kw.arg == "seed":
                return (
                    isinstance(kw.value, ast.Constant)
                    and kw.value.value is None
                )
        return False

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # Bare references to wall-clock callables (default arguments,
        # callbacks) are just deferred reads.
        if isinstance(node.ctx, ast.Load):
            name = _qualified_name(node, self.aliases)
            if name in WALL_CLOCK and not getattr(node, "_det_called", False):
                self._flag(
                    "DET002",
                    node,
                    f"reference to wall-clock callable {name}",
                )
        self.generic_visit(node)

    # -- DET003: unordered iteration ----------------------------------------

    def _check_iter(self, iter_node: ast.AST) -> None:
        if _is_set_expr(iter_node, self.aliases):
            self._flag(
                "DET003",
                iter_node,
                "iteration over a set — order depends on hash seed; "
                "sort it first",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension_iters(self, generators) -> None:
        for comp in generators:
            self._check_iter(comp.iter)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self.visit_comprehension_iters(node.generators)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self.visit_comprehension_iters(node.generators)
        self.generic_visit(node)


def lint_source(source: str, path: str = "<string>") -> List[LintFinding]:
    """Lint one module's source text; returns findings in source order."""
    tree = ast.parse(source, filename=path)
    # Mark call targets so the Attribute pass does not double-report the
    # function position of an already-flagged call.
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            node.func._det_called = True  # type: ignore[attr-defined]
    visitor = _DeterminismVisitor(path, source.splitlines())
    visitor.visit(tree)
    return sorted(visitor.findings, key=lambda f: (f.line, f.col, f.rule))


def lint_file(path: Union[str, Path]) -> List[LintFinding]:
    p = Path(path)
    return lint_source(p.read_text(encoding="utf-8"), str(p))


def lint_paths(paths: Iterable[Union[str, Path]]) -> List[LintFinding]:
    """Lint files and/or directory trees (``*.py``, sorted for stability)."""
    findings: List[LintFinding] = []
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            files = sorted(
                f for f in p.rglob("*.py") if "__pycache__" not in f.parts
            )
        elif p.is_file():
            files = [p]
        else:
            raise FileNotFoundError(f"no such file or directory: {p}")
        for f in files:
            findings.extend(lint_file(f))
    return findings
