"""Structured results for the correctness subsystem.

:class:`InvariantViolation` is the unit the invariant engine emits;
:class:`OracleResult` the unit the analytic/metamorphic harness emits;
:class:`CheckReport` bundles both for ``repro check`` (text render for
humans, sorted-key JSON for the CI artifact).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List


@dataclass(frozen=True)
class InvariantViolation:
    """One broken runtime invariant, with enough context to debug it."""

    invariant: str
    """Rule identifier, e.g. ``record-conservation``."""
    time: float
    """Simulation time at which the violation was detected."""
    message: str
    details: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "invariant": self.invariant,
            "time": self.time,
            "message": self.message,
            "details": dict(self.details),
        }

    def render(self) -> str:
        return f"[{self.invariant}] t={self.time:.3f}s {self.message}"


@dataclass(frozen=True)
class OracleResult:
    """One analytic-oracle comparison: expected vs. simulated."""

    oracle: str
    expected: float
    actual: float
    tolerance: float
    """Maximum allowed ``|actual - expected|`` (same unit as the values)."""
    samples: int = 0
    """Batches (or runs) the comparison aggregates.  Zero means the
    oracle had nothing applicable to check — reported as passed, with
    the detail explaining why."""
    detail: str = ""

    @property
    def delta(self) -> float:
        return self.actual - self.expected

    @property
    def passed(self) -> bool:
        if self.samples == 0:
            return True
        return abs(self.delta) <= self.tolerance

    def to_dict(self) -> Dict[str, Any]:
        return {
            "oracle": self.oracle,
            "expected": self.expected,
            "actual": self.actual,
            "delta": self.delta,
            "tolerance": self.tolerance,
            "samples": self.samples,
            "passed": self.passed,
            "detail": self.detail,
        }

    def render(self) -> str:
        if self.samples == 0:
            return f"[{self.oracle}] skipped ({self.detail or 'no samples'})"
        verdict = "ok" if self.passed else "FAIL"
        return (
            f"[{self.oracle}] {verdict}: expected {self.expected:.4f}, "
            f"got {self.actual:.4f} (delta {self.delta:+.4f}, "
            f"tol ±{self.tolerance:.4f}, n={self.samples})"
        )


@dataclass
class CheckReport:
    """Everything ``repro check`` learned about one run."""

    target: str
    workload: str
    seed: int
    checks_run: int = 0
    batches_checked: int = 0
    violations: List[InvariantViolation] = field(default_factory=list)
    oracles: List[OracleResult] = field(default_factory=list)
    gate_oracles: bool = True
    """Whether oracle failures fail the report (off for chaos runs,
    where analytic steady-state expectations legitimately do not hold
    during fault windows — invariants still gate)."""
    governance: List[str] = field(default_factory=list)
    """Metric-governance problems from the live run: series the catalog
    does not know, kind/label-schema drift, convention violations.
    Non-empty governance fails the report — an undeclared series is a
    correctness bug in the observability contract."""

    @property
    def oracle_failures(self) -> List[OracleResult]:
        return [o for o in self.oracles if not o.passed]

    @property
    def ok(self) -> bool:
        if self.violations:
            return False
        if self.gate_oracles and self.oracle_failures:
            return False
        if self.governance:
            return False
        return True

    def to_dict(self) -> Dict[str, Any]:
        return {
            "target": self.target,
            "workload": self.workload,
            "seed": self.seed,
            "checks_run": self.checks_run,
            "batches_checked": self.batches_checked,
            "violations": [v.to_dict() for v in self.violations],
            "oracles": [o.to_dict() for o in self.oracles],
            "gate_oracles": self.gate_oracles,
            "governance": list(self.governance),
            "ok": self.ok,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render_text(self) -> str:
        lines = [
            f"check target={self.target} workload={self.workload} "
            f"seed={self.seed}",
            f"  invariant checks run: {self.checks_run} "
            f"over {self.batches_checked} batches",
        ]
        if self.violations:
            lines.append(f"  violations ({len(self.violations)}):")
            lines.extend(f"    {v.render()}" for v in self.violations)
        else:
            lines.append("  violations: none")
        if self.oracles:
            lines.append("  oracles:")
            lines.extend(f"    {o.render()}" for o in self.oracles)
        if self.governance:
            lines.append(
                f"  metric governance ({len(self.governance)}):"
            )
            lines.extend(f"    {g}" for g in self.governance)
        else:
            lines.append("  metric governance: clean")
        if not self.gate_oracles and self.oracle_failures:
            lines.append(
                "  note: oracle deltas are informational for this target "
                "(faults active); only invariants gate"
            )
        lines.append(f"  result: {'OK' if self.ok else 'FAIL'}")
        return "\n".join(lines)
