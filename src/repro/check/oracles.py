"""Analytic oracles: closed-form expectations vs. simulator output.

Two queueing-theoretic identities give checkable closed forms (the same
technique Lin et al. use to validate their Spark Streaming simulator
against analytic expectations):

* **steady-state delay identity** — with arrivals uniform inside each
  interval, a record waits on average ``interval / 2`` for its batch to
  close, then the batch's scheduling delay, then its processing time:
  ``E[e2e] = interval/2 + scheduling_delay + processing_time``.  For a
  stable fixed configuration the scheduling delay is ~0 and this reduces
  to the paper's ``interval/2 + processing time``.  The identity holds
  per batch, so it is checked as the mean absolute residual over the
  clean batches of a run.
* **utilization law** — batch processing time follows from the workload
  cost model and the executor pool's aggregate capacity: per stage
  execution, compute core-seconds divide by ``sum(cores x speed)``, I/O
  core-seconds pay the pool-average disk penalty over ``sum(cores)``,
  plus the serial driver-side overheads the overhead model charges.
  List-scheduling imbalance and task noise keep this from being exact;
  the tolerance is stated relative to the prediction.

Tolerances are deliberately loose enough to pass on every seed of the
shipped targets yet tight enough that a factor-level fidelity bug (lost
wait time, double-charged stage, wrong capacity aggregation) fails them.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cluster.executor import Executor
from repro.engine.overhead import OverheadModel
from repro.streaming.metrics import BatchInfo
from repro.workloads.base import Workload

from .violations import OracleResult

#: Allowed residual of the per-batch delay identity, as a fraction of
#: the mean batch interval (covers non-uniform arrivals when the rate
#: trace steps mid-interval).
STEADY_STATE_REL_TOL = 0.15

#: Allowed relative error of the utilization-law processing-time
#: prediction (covers LPT imbalance, task noise, iteration-count draws).
UTILIZATION_REL_TOL = 0.30


def clean_batches(
    batches: Sequence[BatchInfo],
    warmup: int = 5,
    num_executors: Optional[int] = None,
    interval: Optional[float] = None,
) -> List[BatchInfo]:
    """Batches suitable for analytic comparison.

    Drops the warmup prefix (executor startup charges), empty batches
    (receiver stalls), and first-after-reconfig batches (the §5.4 rule),
    and — when a target configuration is given — keeps only batches run
    at that configuration (for optimizer runs, the final one).
    """
    out = []
    for i, b in enumerate(batches):
        if i < warmup:
            continue
        if b.records <= 0 or b.first_after_reconfig:
            continue
        if num_executors is not None and b.num_executors != num_executors:
            continue
        if interval is not None and abs(b.interval - interval) > 1e-9:
            continue
        out.append(b)
    return out


def predict_processing_time(
    workload: Workload,
    records: int,
    executors: Sequence[Executor],
    overhead: OverheadModel,
    iterations: Optional[float] = None,
) -> float:
    """Utilization-law prediction of batch processing time.

    ``iterations`` overrides the expected iteration count per iterated
    stage (defaults to the cost model's mean — correct on average over
    many batches, since draws are uniform).
    """
    if not executors:
        raise ValueError("prediction needs at least one executor")
    model = workload.cost_model
    cost_records = workload.effective_records(records)
    compute_capacity = sum(ex.cores * ex.speed_factor for ex in executors)
    total_cores = sum(ex.cores for ex in executors)
    mean_io_penalty = (
        sum(ex.cores * ex.io_penalty for ex in executors) / total_cores
    )
    coord = overhead.coordination_cost(len(executors))
    t = overhead.batch_setup
    for sc in model.stages:
        reps = 1.0
        if sc.name in model.iterated_stages:
            reps = model.iterations.mean if iterations is None else iterations
        compute = cost_records * sc.compute_per_record + sc.fixed_compute
        io = cost_records * sc.io_per_record
        parallel_time = (
            compute / compute_capacity
            + io * mean_io_penalty / total_cores
            + workload.partitions * overhead.task_dispatch / total_cores
        )
        t += reps * (overhead.stage_setup + coord + parallel_time)
    return t


def steady_state_delay_oracle(
    batches: Sequence[BatchInfo],
    rel_tol: float = STEADY_STATE_REL_TOL,
) -> OracleResult:
    """Check ``e2e = interval/2 + scheduling delay + processing time``.

    Compares mean observed end-to-end delay against the mean of the
    per-batch closed form; tolerance is ``rel_tol`` x mean interval.
    """
    if not batches:
        return OracleResult(
            oracle="steady-state-delay",
            expected=0.0,
            actual=0.0,
            tolerance=0.0,
            samples=0,
            detail="no clean batches to compare",
        )
    expected = sum(
        b.interval / 2.0 + b.scheduling_delay + b.processing_time
        for b in batches
    ) / len(batches)
    actual = sum(b.end_to_end_delay for b in batches) / len(batches)
    mean_interval = sum(b.interval for b in batches) / len(batches)
    return OracleResult(
        oracle="steady-state-delay",
        expected=expected,
        actual=actual,
        tolerance=rel_tol * mean_interval,
        samples=len(batches),
        detail="interval/2 + scheduling delay + processing time",
    )


def utilization_oracle(
    workload: Workload,
    batches: Sequence[BatchInfo],
    executors: Sequence[Executor],
    overhead: OverheadModel,
    rel_tol: float = UTILIZATION_REL_TOL,
) -> OracleResult:
    """Check mean processing time against the utilization-law prediction."""
    if not batches:
        return OracleResult(
            oracle="utilization-law",
            expected=0.0,
            actual=0.0,
            tolerance=0.0,
            samples=0,
            detail="no clean batches to compare",
        )
    mean_records = sum(b.records for b in batches) / len(batches)
    expected = predict_processing_time(
        workload, int(round(mean_records)), executors, overhead
    )
    actual = sum(b.processing_time for b in batches) / len(batches)
    return OracleResult(
        oracle="utilization-law",
        expected=expected,
        actual=actual,
        tolerance=rel_tol * expected,
        samples=len(batches),
        detail=(
            f"cost-model prediction at {mean_records:.0f} records/batch "
            f"on {len(executors)} executors"
        ),
    )


def run_oracles(setup, warmup: int = 5) -> List[OracleResult]:
    """Evaluate all analytic oracles against a finished run's batches.

    ``setup`` is an :class:`~repro.experiments.common.ExperimentSetup`
    whose context has been advanced; for optimizer runs the comparison
    restricts itself to batches measured at the final configuration.
    """
    ctx = setup.context
    rm = ctx.resource_manager
    batches = clean_batches(
        ctx.listener.metrics.batches,
        warmup=warmup,
        num_executors=rm.executor_count,
        interval=ctx.batch_interval,
    )
    return [
        steady_state_delay_oracle(batches),
        utilization_oracle(
            setup.workload, batches, rm.executors, ctx.overhead
        ),
    ]
