"""Spark batch engine substrate.

Stage/task job model, LPT list scheduler over heterogeneous executor
cores, and the overhead models (batch setup, coordination, executor
startup) that shape the paper's Fig. 2a and Fig. 3a curves.
"""

from .faults import NO_FAULTS, FaultModel
from .job import BatchJob
from .overhead import DEFAULT_OVERHEAD, ZERO_OVERHEAD, OverheadModel
from .stage import Stage
from .task import TaskRun, TaskSpec
from .task_scheduler import (
    JobRun,
    NoExecutorsError,
    NoiseModel,
    StageRun,
    TaskScheduler,
)

__all__ = [
    "BatchJob",
    "FaultModel",
    "NO_FAULTS",
    "DEFAULT_OVERHEAD",
    "JobRun",
    "NoExecutorsError",
    "NoiseModel",
    "OverheadModel",
    "Stage",
    "StageRun",
    "TaskRun",
    "TaskScheduler",
    "TaskSpec",
    "ZERO_OVERHEAD",
]
