"""Batch job model.

Every micro-batch that Spark Streaming hands to the Spark engine becomes a
:class:`BatchJob`: a chain of stages built by the workload for the number
of records in the batch.  The engine executes stages in order (a stage
starts only after its predecessor's barrier), which reproduces the
map → shuffle → reduce critical path of the real system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .stage import Stage


@dataclass
class BatchJob:
    """A chain of stages derived from one micro-batch.

    Parameters
    ----------
    job_id:
        Monotonic id assigned by the streaming job generator.
    batch_time:
        Simulation time at which the source batch closed (its "batch time"
        in Spark Streaming terminology).
    records:
        Total records in the batch.
    stages:
        Ordered stage chain.
    workload:
        Name of the generating workload, for reporting.
    """

    job_id: int
    batch_time: float
    records: int
    stages: List[Stage] = field(default_factory=list)
    workload: str = ""

    def __post_init__(self) -> None:
        if self.records < 0:
            raise ValueError(f"records must be >= 0, got {self.records}")
        seen = set()
        for s in self.stages:
            if s.stage_id in seen:
                raise ValueError(f"duplicate stage id {s.stage_id} in job {self.job_id}")
            seen.add(s.stage_id)

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def num_tasks(self) -> int:
        return sum(s.num_tasks * s.iterations for s in self.stages)

    @property
    def total_compute_cost(self) -> float:
        """Baseline compute-seconds over the whole job."""
        return sum(s.total_compute_cost for s in self.stages)

    @property
    def total_io_cost(self) -> float:
        return sum(s.total_io_cost for s in self.stages)

    def critical_path_lower_bound(self, total_cores: int, speed: float = 1.0) -> float:
        """Cheap lower bound on the job's makespan with ``total_cores`` cores.

        Used by tests as an invariant (the scheduler can never beat perfect
        parallelism) and by the back-pressure estimator as a rate hint.
        """
        if total_cores < 1:
            raise ValueError("total_cores must be >= 1")
        bound = 0.0
        for s in self.stages:
            per_iter = sum(t.compute_cost for t in s.tasks) / (total_cores * speed)
            longest = max((t.compute_cost / speed for t in s.tasks), default=0.0)
            bound += s.iterations * max(per_iter, longest)
        return bound
