"""Engine overhead models.

The paper's Fig. 3a shows a U-shaped relationship between executor count
and batch processing time: few executors → little parallelism; too many →
"the overhead of managing all executors and task execution would
negatively affect the batch processing time".  Fig. 2a shows that with a
small batch interval "the overhead of initializing batch processing would
be non-negligible".  This module centralizes those overheads so they are
tunable and ablatable:

* **batch setup** — fixed driver-side cost per job (DAG construction,
  task serialization), paid once per batch regardless of size;
* **coordination** — per-task dispatch latency plus a superlinear term in
  executor count (heartbeats, locality bookkeeping, result aggregation);
* **executor startup** — one-time jar-shipping / JVM-warmup charge for a
  freshly launched executor's first task, the reason NoStop discards the
  first batch after each reconfiguration (§5.4).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OverheadModel:
    """Parameterization of the engine's fixed and scaling overheads.

    All values are in seconds (baseline node speed).

    Parameters
    ----------
    batch_setup:
        Driver cost to submit one batch job (per stage chain).
    stage_setup:
        Driver cost per stage (shuffle bookkeeping, task set creation).
    task_dispatch:
        Scheduler cost per task launch, charged on the task's executor.
    coordination_coeff:
        Coefficient of the executor-management term: each *stage
        execution* pays ``coordination_coeff * log2(1 + executors)``
        seconds of driver-side coordination (tree-style task-set
        dispatch, result aggregation, heartbeat bookkeeping).  This is
        the term that bends Fig. 3a's curve back up at high executor
        counts — logarithmic growth matches the paper's mild upturn
        (proc time at 20 executors is "the closest to the batch interval
        while the system still remains stable").
    executor_startup:
        One-time initialization charge for a fresh executor's first task
        (application jar shipping, JVM class loading).
    reconfig_pause:
        Driver-side pause when a configuration change is applied (Spark
        graceful pause while the batch interval / executor set changes).
    """

    batch_setup: float = 0.25
    stage_setup: float = 0.08
    task_dispatch: float = 0.004
    coordination_coeff: float = 0.20
    executor_startup: float = 1.6
    reconfig_pause: float = 0.5

    def __post_init__(self) -> None:
        for name in (
            "batch_setup",
            "stage_setup",
            "task_dispatch",
            "coordination_coeff",
            "executor_startup",
            "reconfig_pause",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    def coordination_cost(self, executors: int) -> float:
        """Per-stage driver coordination cost for ``executors`` executors."""
        if executors < 0:
            raise ValueError("executors must be >= 0")
        if executors == 0:
            return 0.0
        import math

        return self.coordination_coeff * math.log2(1.0 + executors)


#: Default overhead model, calibrated so the paper's testbed shapes hold
#: (stability crossover near a 10 s interval for streaming LR at ~10k rec/s,
#: U-shape minimum near 20 executors in Fig. 3a).
DEFAULT_OVERHEAD = OverheadModel()

#: A zero-overhead model for ablations and analytic sanity tests.
ZERO_OVERHEAD = OverheadModel(
    batch_setup=0.0,
    stage_setup=0.0,
    task_dispatch=0.0,
    coordination_coeff=0.0,
    executor_startup=0.0,
    reconfig_pause=0.0,
)
