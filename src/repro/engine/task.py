"""Task model.

A task is the unit of work Spark schedules onto an executor core: it
processes one partition of a stage's input.  Task *cost* is expressed in
baseline-seconds of compute plus an I/O fraction; the actual wall-clock
duration on a given executor is derived from the hosting node's speed
factor and disk penalty, plus multiplicative noise drawn by the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.executor import Executor


@dataclass
class TaskSpec:
    """Static description of a task before it is scheduled.

    Parameters
    ----------
    task_id:
        Index of the task within its stage.
    records:
        Number of input records in the task's partition.
    compute_cost:
        Seconds of pure compute on a ``speed_factor == 1.0`` core.
    io_cost:
        Seconds of I/O (shuffle read/write, HDFS output) on an SSD node;
        HDD nodes multiply this by their penalty.
    """

    task_id: int
    records: int
    compute_cost: float
    io_cost: float = 0.0

    def __post_init__(self) -> None:
        if self.records < 0:
            raise ValueError(f"records must be >= 0, got {self.records}")
        if self.compute_cost < 0:
            raise ValueError(f"compute_cost must be >= 0, got {self.compute_cost}")
        if self.io_cost < 0:
            raise ValueError(f"io_cost must be >= 0, got {self.io_cost}")

    def duration_on(
        self,
        executor: Executor,
        noise_factor: float = 1.0,
        startup_cost: float = 0.0,
    ) -> float:
        """Wall-clock duration of this task on ``executor``.

        ``noise_factor`` is the multiplicative runtime jitter (network,
        GC, contention) drawn by the scheduler; ``startup_cost`` is the
        one-time initialization charge for a freshly launched executor.
        """
        if noise_factor <= 0:
            raise ValueError(f"noise_factor must be positive, got {noise_factor}")
        compute = self.compute_cost / executor.speed_factor
        io = self.io_cost * executor.io_penalty
        return (compute + io) * noise_factor + startup_cost


@dataclass
class TaskRun:
    """Record of one executed task (who ran it, when, for how long)."""

    spec: TaskSpec
    executor_id: int
    start: float
    finish: float
    startup_charged: bool = field(default=False)

    @property
    def duration(self) -> float:
        return self.finish - self.start

    def __post_init__(self) -> None:
        if self.finish < self.start:
            raise ValueError(
                f"task finish {self.finish} precedes start {self.start}"
            )
