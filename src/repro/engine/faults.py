"""Failure injection.

Real clusters lose task attempts to transient faults (executor GC
stalls, network resets, speculative kills); Spark retries a failed task
up to ``spark.task.maxFailures`` (default 4) times.  The fault model
injects such failures into the scheduler: a failed attempt wastes part
of the task's duration on its core before the task is re-queued,
inflating batch processing time — one more noise source NoStop must
tolerate (design goal "Noise Tolerance", §4.1).

Executor-level failures are modeled at the resource-manager level
(:meth:`repro.cluster.resource_manager.ResourceManager.fail_executor`):
the pool shrinks until the next configuration application restores the
target count — which NoStop does automatically on its next Adjust call,
demonstrating the scheme's transparency to infrastructure churn.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

#: Upper bound on the worst-case wasted work per task, expressed as a
#: multiple of the task's nominal duration: ``(max_attempts - 1)`` failed
#: attempts each wasting up to ``max_waste_fraction``.  Beyond this a
#: single task can inflate a batch by nearly an order of magnitude, which
#: no measurement protocol distinguishes from a hang.
MAX_WORST_CASE_WASTE = 8.0


@dataclass(frozen=True)
class FaultModel:
    """Transient task-failure injection parameters.

    Parameters
    ----------
    task_failure_prob:
        Probability that any given task attempt fails mid-run.  Must be
        in ``[0, 1)``: a probability of exactly 1.0 would make every
        retry fail too, so no task could ever complete.
    max_attempts:
        Attempts per task before the failure budget is exhausted
        (Spark's ``spark.task.maxFailures``); the final attempt always
        succeeds in the simulation (a real system would abort the job —
        tracked via ``JobRun.exhausted_retries`` instead of crashing the
        experiment).
    min_waste_fraction, max_waste_fraction:
        A failed attempt occupies its core for a uniform fraction of the
        task's nominal duration before failing.
    """

    task_failure_prob: float = 0.0
    max_attempts: int = 4
    min_waste_fraction: float = 0.1
    max_waste_fraction: float = 0.9

    def __post_init__(self) -> None:
        if not (0.0 <= self.task_failure_prob < 1.0):
            raise ValueError(
                f"task_failure_prob must be in [0, 1), got {self.task_failure_prob}"
            )
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if not (0.0 <= self.min_waste_fraction <= self.max_waste_fraction <= 1.0):
            raise ValueError("need 0 <= min_waste <= max_waste <= 1")
        worst = (self.max_attempts - 1) * self.max_waste_fraction
        if worst > MAX_WORST_CASE_WASTE:
            raise ValueError(
                "worst-case wasted work per task is "
                f"{worst:.2f}x its duration ((max_attempts - 1) * "
                f"max_waste_fraction); must be <= {MAX_WORST_CASE_WASTE}"
            )

    def with_prob(self, task_failure_prob: float) -> "FaultModel":
        """A copy of this model with a different failure probability.

        Convenience for sweeps that vary fault pressure while keeping the
        retry/waste envelope fixed."""
        return dataclasses.replace(self, task_failure_prob=task_failure_prob)

    @property
    def enabled(self) -> bool:
        return self.task_failure_prob > 0.0

    def attempt_fails(self, rng: np.random.Generator) -> bool:
        return self.enabled and rng.random() < self.task_failure_prob

    def waste_fraction(self, rng: np.random.Generator) -> float:
        return float(
            rng.uniform(self.min_waste_fraction, self.max_waste_fraction)
        )


#: No failures (the default for calibration-sensitive experiments).
NO_FAULTS = FaultModel(task_failure_prob=0.0)
