"""Stage model.

A Spark job is a DAG of stages separated by shuffle boundaries.  For the
micro-batch workloads in the paper this DAG is a simple chain (map-style
stages feeding reduce-style stages), so a stage here carries a list of
tasks plus an optional iteration count: ML workloads (streaming logistic /
linear regression) rerun their gradient stage once per model iteration,
which is the paper's explanation for their noisier batch processing time
(§6.3 — "the batch processing time of an unfitted model usually takes
longer than that of a fitted model").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .task import TaskSpec


@dataclass
class Stage:
    """A set of independent tasks plus a barrier at the end.

    Parameters
    ----------
    stage_id:
        Position in the job's chain.
    name:
        Human-readable label (e.g. ``"map"``, ``"reduceByKey"``,
        ``"gradient"``).
    tasks:
        Partition-level task specs; all tasks of a stage may run in
        parallel, and the stage completes when the last task does.
    iterations:
        How many times the stage body is executed back to back.  Modeling
        convergence loops this way keeps the DAG static while letting the
        cost model vary the iteration count per batch.
    """

    stage_id: int
    name: str
    tasks: List[TaskSpec] = field(default_factory=list)
    iterations: int = 1

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {self.iterations}")

    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    @property
    def total_records(self) -> int:
        return sum(t.records for t in self.tasks)

    @property
    def total_compute_cost(self) -> float:
        """Baseline compute-seconds across all tasks and iterations."""
        return self.iterations * sum(t.compute_cost for t in self.tasks)

    @property
    def total_io_cost(self) -> float:
        return self.iterations * sum(t.io_cost for t in self.tasks)
