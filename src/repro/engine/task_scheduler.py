"""Task scheduler: turns a :class:`BatchJob` into a makespan.

The scheduler reproduces Spark's TaskSchedulerImpl behaviour at the level
that matters for SSPO: tasks of a stage run in parallel across all
executor cores (longest-processing-time-first list scheduling, a good
model of Spark's pending-task queue under uniform locality), stages are
separated by barriers, ML-style stages iterate, and driver-side overheads
from :mod:`repro.engine.overhead` are charged per batch / stage / task.

The result is the *batch processing time* — the single most important
quantity in the paper, since the stability constraint is
``batch interval >= batch processing time``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.cluster.executor import Executor
from repro.obs.span import Span, TraceContext
from repro.obs.tracer import Tracer

from .faults import NO_FAULTS, FaultModel
from .job import BatchJob
from .overhead import DEFAULT_OVERHEAD, OverheadModel
from .task import TaskRun, TaskSpec


class NoExecutorsError(RuntimeError):
    """Raised when a job is submitted while zero executors are registered."""


@dataclass
class StageRun:
    """Aggregate record of one executed stage (all iterations)."""

    stage_id: int
    name: str
    start: float
    finish: float
    num_tasks: int
    iterations: int

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass
class JobRun:
    """Result of executing one batch job."""

    job_id: int
    start: float
    finish: float
    stage_runs: List[StageRun] = field(default_factory=list)
    task_runs: List[TaskRun] = field(default_factory=list)
    executors_used: int = 0
    task_failures: int = 0
    """Failed task attempts (transient faults, retried)."""
    exhausted_retries: int = 0
    """Tasks that consumed their whole failure budget (a real Spark job
    would have been aborted)."""

    @property
    def processing_time(self) -> float:
        """Batch processing time: submission to last-task completion."""
        return self.finish - self.start


@dataclass(frozen=True)
class NoiseModel:
    """Multiplicative log-normal jitter on task durations.

    ``sigma`` is the standard deviation of the underlying normal; 0.1
    yields roughly ±10% per-task variation — consistent with the "network
    jitters, resource contentions" noise the paper cites as motivation for
    a noise-tolerant optimizer (§4.1).
    """

    sigma: float = 0.10

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {self.sigma}")

    def draw(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if self.sigma == 0.0:
            return np.ones(n)
        # mean-1 log-normal so noise does not bias average durations
        return rng.lognormal(mean=-0.5 * self.sigma**2, sigma=self.sigma, size=n)


class TaskScheduler:
    """Greedy LPT list scheduler over heterogeneous executor cores."""

    def __init__(
        self,
        overhead: OverheadModel = DEFAULT_OVERHEAD,
        noise: NoiseModel = NoiseModel(),
        record_tasks: bool = False,
        faults: FaultModel = NO_FAULTS,
    ) -> None:
        self.overhead = overhead
        self.noise = noise
        self.record_tasks = record_tasks
        self.faults = faults

    def run_job(
        self,
        job: BatchJob,
        executors: Sequence[Executor],
        start_time: float,
        rng: np.random.Generator,
        tracer: Optional[Tracer] = None,
        parent: Optional[TraceContext] = None,
    ) -> JobRun:
        """Execute ``job`` on ``executors`` starting at ``start_time``.

        Returns a :class:`JobRun`; ``run.processing_time`` is the batch
        processing time reported to the streaming listener.

        With ``tracer`` and ``parent`` supplied, the run emits
        ``schedule`` / ``execute`` spans under the batch trace.  The
        spans tile ``[start_time, finish]`` exactly — driver-side setup
        and coordination land in ``schedule`` spans, task makespans in
        ``execute`` spans — so their durations sum to the batch
        processing time.
        """
        if not executors:
            raise NoExecutorsError(
                f"job {job.job_id} submitted with no executors registered"
            )
        traced = tracer is not None and tracer.enabled and parent is not None
        run = JobRun(
            job_id=job.job_id,
            start=start_time,
            finish=start_time,
            executors_used=len(executors),
        )
        # (free_at, slot_seq, executor) heap — one entry per core.
        slots: List[tuple] = []
        seq = 0
        clock = start_time + self.overhead.batch_setup
        for ex in executors:
            for _ in range(ex.cores):
                slots.append((clock, seq, ex))
                seq += 1
        heapq.heapify(slots)
        coord = self.overhead.coordination_cost(len(executors))
        if traced:
            setup = tracer.start_span(
                "schedule", parent, start_time, phase="job_setup"
            )
            setup.finish(clock)

        for stage in job.stages:
            stage_start = clock
            # LPT order: longest tasks first minimizes makespan for list
            # scheduling and mirrors Spark's preference for large pending
            # tasks.  The order is a pure function of the stage, so it is
            # computed once here rather than once per iteration — iterated
            # ML stages re-run the same task set dozens of times.
            order = sorted(
                stage.tasks,
                key=lambda t: t.compute_cost + t.io_cost,
                reverse=True,
            )
            for iteration in range(stage.iterations):
                # Driver-side serial costs per stage execution.
                sched_start = clock
                clock += self.overhead.stage_setup + coord
                exec_span: Optional[Span] = None
                if traced:
                    sched = tracer.start_span(
                        "schedule", parent, sched_start,
                        stage=stage.stage_id, iteration=iteration,
                    )
                    sched.finish(clock)
                    exec_span = tracer.start_span(
                        "execute", parent, clock,
                        stage=stage.stage_id, iteration=iteration,
                        tasks=stage.num_tasks,
                    )
                clock = self._run_task_set(
                    order, slots, clock, rng, run,
                    tracer=tracer if traced else None,
                    exec_span=exec_span,
                )
                if exec_span is not None:
                    exec_span.finish(clock)
            run.stage_runs.append(
                StageRun(
                    stage_id=stage.stage_id,
                    name=stage.name,
                    start=stage_start,
                    finish=clock,
                    num_tasks=stage.num_tasks,
                    iterations=stage.iterations,
                )
            )
        run.finish = clock
        return run

    def _run_task_set(
        self,
        order: Sequence[TaskSpec],
        slots: List[tuple],
        barrier: float,
        rng: np.random.Generator,
        run: JobRun,
        tracer: Optional[Tracer] = None,
        exec_span: Optional[Span] = None,
    ) -> float:
        """Schedule one iteration of a stage's (LPT-ordered) tasks.

        ``order`` must already be in longest-processing-time-first order
        (the caller sorts once per stage); returns the new barrier.
        """
        if not order:
            return barrier
        task_spans = (
            tracer is not None and tracer.task_detail and exec_span is not None
        )
        noise = self.noise.draw(rng, len(order))
        finish_max = barrier
        seq = len(slots)
        heappop = heapq.heappop
        heappush = heapq.heappush
        task_dispatch = self.overhead.task_dispatch
        max_attempts = self.faults.max_attempts
        faults_active = self.faults.enabled and max_attempts > 1
        record_tasks = self.record_tasks
        # Executor speed/penalty are invariant for the duration of one
        # task set (slowdown and node state only change between batches),
        # so resolve the property chains once per executor instead of
        # once per attempt.  The inlined duration below performs exactly
        # the same float operations as TaskSpec.duration_on, keeping
        # makespans bit-identical.
        ex_costs: dict = {}
        for i, spec in enumerate(order):
            noise_i = float(noise[i])
            compute_cost = spec.compute_cost
            io_cost = spec.io_cost
            attempts = 0
            while True:
                attempts += 1
                free_at, _, ex = heappop(slots)
                start = max(free_at, barrier) + task_dispatch
                startup = 0.0
                charged = False
                if not ex.initialized:
                    startup = self.overhead.executor_startup
                    ex.mark_initialized()
                    charged = True
                costs = ex_costs.get(ex.executor_id)
                if costs is None:
                    costs = (ex.speed_factor, ex.io_penalty)
                    ex_costs[ex.executor_id] = costs
                duration = (
                    compute_cost / costs[0] + io_cost * costs[1]
                ) * noise_i + startup
                may_fail = faults_active and attempts < max_attempts
                if may_fail and self.faults.attempt_fails(rng):
                    # Transient failure: the core is busy for part of the
                    # attempt, then the task re-queues on the earliest slot.
                    waste = duration * self.faults.waste_fraction(rng)
                    heappush(slots, (start + waste, seq, ex))
                    seq += 1
                    run.task_failures += 1
                    if exec_span is not None:
                        exec_span.add_event(
                            "task.retry", start + waste,
                            executor=ex.executor_id, attempt=attempts,
                        )
                    continue
                if attempts == max_attempts and attempts > 1:
                    # The final allowed attempt always succeeds here; a
                    # real system would abort the job at this point.
                    run.exhausted_retries += 1
                finish = start + duration
                if finish > finish_max:
                    finish_max = finish
                heappush(slots, (finish, seq, ex))
                seq += 1
                if task_spans:
                    tspan = tracer.start_span(
                        "task", exec_span, start,
                        executor=ex.executor_id, attempts=attempts,
                    )
                    tspan.finish(finish)
                if record_tasks:
                    run.task_runs.append(
                        TaskRun(
                            spec=spec,
                            executor_id=ex.executor_id,
                            start=start,
                            finish=finish,
                            startup_charged=charged,
                        )
                    )
                break
        # Barrier: next stage iteration starts when the slowest task ends.
        return finish_max
