"""Executor model.

Executors are the unit of resource allocation that NoStop tunes.  In the
paper's setup every executor gets 1 CPU core and 1 GB of memory (§6.2.1).
Executors are launched onto a worker node, inherit its speed factor and
disk penalty, and must be *initialized* (application jar shipped, JVM
warmed) before their first task — which is why NoStop discards the first
batch after every configuration change (§5.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .node import Node

#: Default executor sizing from the paper (§6.2.1).
DEFAULT_EXECUTOR_CORES = 1
DEFAULT_EXECUTOR_MEMORY_GB = 1.0


@dataclass
class Executor:
    """A single executor process pinned to a node.

    Attributes
    ----------
    executor_id:
        Unique id assigned by the resource manager.
    node:
        Hosting worker node.
    cores:
        CPU cores owned by the executor; each core runs one task at a time.
    memory_gb:
        Memory reserved on the node.
    launched_at:
        Simulation time at which the executor was launched; used to model
        the jar-shipping / initialization overhead on the first batch that
        uses a freshly added executor.
    initialized:
        Flips to True once the executor has run its first task.
    """

    executor_id: int
    node: "Node"
    cores: int = DEFAULT_EXECUTOR_CORES
    memory_gb: float = DEFAULT_EXECUTOR_MEMORY_GB
    launched_at: float = 0.0
    initialized: bool = field(default=False)
    slowdown: float = field(default=1.0)
    """Multiplicative service-time degradation (1.0 = healthy).  Chaos
    straggler injection raises this for a while; task durations scale by
    it through :attr:`speed_factor`."""

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"executor needs at least one core, got {self.cores}")
        if self.memory_gb <= 0:
            raise ValueError(f"memory_gb must be positive, got {self.memory_gb}")
        if self.slowdown < 1.0:
            raise ValueError(f"slowdown must be >= 1.0, got {self.slowdown}")

    @property
    def speed_factor(self) -> float:
        """Per-core throughput of the hosting node, degraded by any
        active straggler slowdown."""
        return self.node.speed_factor / self.slowdown

    def set_slowdown(self, factor: float) -> None:
        """Apply (or with ``1.0`` clear) a straggler slowdown."""
        if factor < 1.0:
            raise ValueError(f"slowdown must be >= 1.0, got {factor}")
        self.slowdown = factor

    @property
    def io_penalty(self) -> float:
        """I/O duration multiplier of the hosting node's disk."""
        return self.node.io_penalty

    def mark_initialized(self) -> None:
        self.initialized = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Executor(id={self.executor_id}, node={self.node.node_id}, "
            f"cores={self.cores}, init={self.initialized})"
        )
