"""Dynamic executor allocation.

The resource manager plays the role of Spark's standalone master plus the
dynamic-allocation hooks the paper added to Spark: NoStop asks for a target
executor count at runtime and the manager launches or decommissions
executors to meet it, spreading them across worker nodes round-robin (the
same spreading behaviour as Spark standalone's default ``spreadOut``).

Newly launched executors are uninitialized — the engine charges them a
one-time startup cost on their first task, which surfaces in the first
batch after a reconfiguration (the batch NoStop's metric collector
discards, §5.4).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs import catalog
from repro.obs.registry import NOOP_REGISTRY, MetricsRegistry

from .cluster import Cluster
from .executor import (
    DEFAULT_EXECUTOR_CORES,
    DEFAULT_EXECUTOR_MEMORY_GB,
    Executor,
)
from .node import Node


class InsufficientResourcesError(RuntimeError):
    """Raised when the cluster cannot host the requested executor count."""


class ResourceManager:
    """Launch and decommission executors on a :class:`Cluster`.

    Parameters
    ----------
    cluster:
        The cluster to manage.
    executor_cores, executor_memory_gb:
        Fixed per-executor sizing (the paper fixes 1 core / 1 GB and only
        varies the *count*).
    """

    def __init__(
        self,
        cluster: Cluster,
        executor_cores: int = DEFAULT_EXECUTOR_CORES,
        executor_memory_gb: float = DEFAULT_EXECUTOR_MEMORY_GB,
    ) -> None:
        self.cluster = cluster
        self.executor_cores = executor_cores
        self.executor_memory_gb = executor_memory_gb
        self._executors: Dict[int, Executor] = {}
        self._next_id = 1
        #: number of reconfigurations performed (for overhead accounting)
        self.reconfigurations = 0
        #: unplanned executor losses injected via :meth:`fail_executor`
        self.executor_failures = 0
        self.instrument(NOOP_REGISTRY)

    def instrument(self, registry: MetricsRegistry) -> None:
        """Bind telemetry instruments (no-op registry by default).

        ``scale_ops`` is a labeled family (``direction``: up/down) so
        dashboards can separate growth from shrink; both children are
        bound eagerly since the schema is a closed two-value set.
        """
        self._m_executors = catalog.instrument(
            registry, "repro_cluster_executors"
        )
        scale_ops = catalog.instrument(
            registry, "repro_cluster_scale_ops_total"
        )
        self._m_scale_up = scale_ops.labels(direction="up")
        self._m_scale_down = scale_ops.labels(direction="down")
        self._m_failures = catalog.instrument(
            registry, "repro_cluster_executor_failures_total"
        )

    # -- queries --------------------------------------------------------

    @property
    def executors(self) -> List[Executor]:
        """Live executors, in launch order."""
        return [self._executors[k] for k in sorted(self._executors)]

    @property
    def executor_count(self) -> int:
        return len(self._executors)

    @property
    def max_executors(self) -> int:
        """Upper bound on executor count for this cluster and sizing.

        This is the ``Max_Executors`` of the paper's configuration range
        (§5.1), derived from cluster capacity and per-executor resources.
        """
        total = 0
        for node in self.cluster.workers:
            by_cores = node.executor_capacity // self.executor_cores
            by_mem = int(node.memory_gb // self.executor_memory_gb)
            total += min(by_cores, by_mem)
        return total

    @property
    def available_capacity(self) -> int:
        """Executors that could still be launched right now.

        Unlike :attr:`max_executors` this accounts for resources already
        allocated and for offline nodes, so ``scale_to`` can verify an
        upscale atomically before launching anything.
        """
        total = 0
        for node in self.cluster.workers:
            if not node.can_host(self.executor_cores, self.executor_memory_gb):
                continue
            by_cores = node.free_cores // self.executor_cores
            by_mem = int(node.free_memory_gb // self.executor_memory_gb)
            total += min(by_cores, by_mem)
        return total

    @property
    def total_cores(self) -> int:
        return sum(e.cores for e in self._executors.values())

    def capacity_with(
        self, cores: int, memory_gb: Optional[float] = None
    ) -> int:
        """Hypothetical pool size the cluster could host at a given
        per-executor sizing, counting this manager's own allocations as
        free (a full-pool relaunch releases them first).

        Offline nodes contribute nothing: executors stranded on a node
        that went down mid-outage cannot be re-placed there.
        """
        if cores < 1:
            raise ValueError(f"executor cores must be >= 1, got {cores}")
        memory_gb = self.executor_memory_gb if memory_gb is None else memory_gb
        mine_cores: Dict[int, int] = {}
        mine_mem: Dict[int, float] = {}
        for e in self._executors.values():
            mine_cores[e.node.node_id] = (
                mine_cores.get(e.node.node_id, 0) + e.cores
            )
            mine_mem[e.node.node_id] = (
                mine_mem.get(e.node.node_id, 0.0) + e.memory_gb
            )
        total = 0
        for node in self.cluster.workers:
            if not node.online:
                continue
            free_cores = node.free_cores + mine_cores.get(node.node_id, 0)
            free_mem = node.free_memory_gb + mine_mem.get(node.node_id, 0.0)
            total += min(free_cores // cores, int(free_mem // memory_gb))
        return total

    def newly_launched(self, since: float) -> List[Executor]:
        """Executors launched at or after simulation time ``since``."""
        return [e for e in self.executors if e.launched_at >= since]

    # -- allocation -------------------------------------------------------

    def _pick_node(self) -> Optional[Node]:
        """Least-loaded worker that can host one more executor.

        Ties break toward the fastest node, mirroring how a real
        standalone master spreads executors over registered workers.
        """
        candidates = [
            n
            for n in self.cluster.workers
            if n.can_host(self.executor_cores, self.executor_memory_gb)
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda n: (n.used_cores, -n.speed_factor))

    def launch_executor(self, now: float = 0.0) -> Executor:
        """Launch one executor on the least-loaded worker."""
        node = self._pick_node()
        if node is None:
            raise InsufficientResourcesError(
                f"cluster {self.cluster.name!r} cannot host another "
                f"{self.executor_cores}-core/{self.executor_memory_gb}GB executor "
                f"({self.executor_count} running, max {self.max_executors})"
            )
        node.allocate(self.executor_cores, self.executor_memory_gb)
        executor = Executor(
            executor_id=self._next_id,
            node=node,
            cores=self.executor_cores,
            memory_gb=self.executor_memory_gb,
            launched_at=now,
        )
        self._next_id += 1
        self._executors[executor.executor_id] = executor
        return executor

    def _launch_many(self, count: int, now: float) -> None:
        """Launch ``count`` executors with bit-identical placement to
        ``count`` sequential :meth:`launch_executor` calls.

        The sequential path rescans every worker per launch —
        O(count x nodes), which dominates context construction on
        thousand-node clusters.  A lazy heap keyed
        ``(used_cores, -speed_factor, worker_index)`` reproduces the
        same pick sequence (``min`` over the worker list breaks ties by
        list position, exactly the index tie-break) in
        O((count + nodes) log nodes).
        """
        import heapq

        cores = self.executor_cores
        mem = self.executor_memory_gb
        heap = [
            (n.used_cores, -n.speed_factor, idx, n)
            for idx, n in enumerate(self.cluster.workers)
            if n.can_host(cores, mem)
        ]
        heapq.heapify(heap)
        launched = 0
        while launched < count:
            if not heap:
                raise InsufficientResourcesError(
                    f"cluster {self.cluster.name!r} cannot host another "
                    f"{cores}-core/{mem}GB executor "
                    f"({self.executor_count} running, "
                    f"max {self.max_executors})"
                )
            used, neg_speed, idx, node = heapq.heappop(heap)
            if used != node.used_cores:
                # Stale entry: re-key and retry.
                if node.can_host(cores, mem):
                    heapq.heappush(
                        heap, (node.used_cores, neg_speed, idx, node)
                    )
                continue
            node.allocate(cores, mem)
            executor = Executor(
                executor_id=self._next_id,
                node=node,
                cores=cores,
                memory_gb=mem,
                launched_at=now,
            )
            self._next_id += 1
            self._executors[executor.executor_id] = executor
            launched += 1
            if node.can_host(cores, mem):
                heapq.heappush(heap, (node.used_cores, neg_speed, idx, node))

    def remove_executor(self, executor_id: int) -> None:
        """Decommission one executor and release its node resources."""
        executor = self._executors.pop(executor_id, None)
        if executor is None:
            raise KeyError(f"no executor with id {executor_id}")
        executor.node.release(executor.cores, executor.memory_gb)

    def fail_executor(self, executor_id: Optional[int] = None) -> int:
        """Kill one executor (crash injection); returns its id.

        Unlike :meth:`remove_executor` this models an *unplanned* loss:
        the pool silently shrinks until the next ``scale_to`` call
        restores the target count — which NoStop's next configuration
        application does automatically, making the scheme transparent to
        infrastructure churn.
        """
        if not self._executors:
            raise RuntimeError("no executors to fail")
        if executor_id is None:
            executor_id = max(self._executors)  # newest dies first
        self.remove_executor(executor_id)
        self.executor_failures += 1
        self._m_failures.inc()
        self._m_executors.set(self.executor_count)
        return executor_id

    def scale_to(self, target: int, now: float = 0.0) -> int:
        """Adjust the executor count to ``target``; returns the delta.

        Removal takes the most recently launched executors first (they are
        least likely to hold cached state).  Raises
        :class:`InsufficientResourcesError` if the target exceeds cluster
        capacity.
        """
        if target < 0:
            raise ValueError(f"target executor count must be >= 0, got {target}")
        if target > self.max_executors:
            raise InsufficientResourcesError(
                f"target {target} exceeds cluster capacity {self.max_executors}"
            )
        delta = target - self.executor_count
        if delta > 0:
            # Atomic pre-check: verify the whole upscale fits before
            # launching anything, so a capacity shortfall (e.g. a chaos
            # node outage holding resources) cannot leave a partially
            # applied configuration behind.
            if delta > self.available_capacity:
                raise InsufficientResourcesError(
                    f"cluster {self.cluster.name!r} can host only "
                    f"{self.available_capacity} more executors, "
                    f"need {delta} to reach target {target}"
                )
            self._launch_many(delta, now)
        elif delta < 0:
            victims = sorted(
                self._executors.values(),
                key=lambda e: (e.launched_at, e.executor_id),
                reverse=True,
            )[: -delta]
            for v in victims:
                self.remove_executor(v.executor_id)
        if delta != 0:
            self.reconfigurations += 1
            (self._m_scale_up if delta > 0 else self._m_scale_down).inc()
        self._m_executors.set(self.executor_count)
        return delta

    def resize_cores(
        self, cores: int, now: float = 0.0, target: Optional[int] = None
    ) -> int:
        """Relaunch the pool with a new per-executor core count.

        Changing ``spark.executor.cores`` cannot be applied to a running
        executor: the whole pool is decommissioned and relaunched at the
        new sizing (fresh executors pay the startup charge on their
        first task, surfacing the real cost of a core resize).
        ``target`` is the pool size after the resize (default: the
        current count, letting callers combine a resize with a scale in
        one transactional step).

        An atomic pre-check against :meth:`capacity_with` makes the
        operation transactional: on
        :class:`InsufficientResourcesError` nothing has changed.
        Returns the resulting pool size.
        """
        if cores < 1:
            raise ValueError(f"executor cores must be >= 1, got {cores}")
        target = self.executor_count if target is None else target
        if target < 0:
            raise ValueError(
                f"target executor count must be >= 0, got {target}"
            )
        if cores == self.executor_cores:
            self.scale_to(target, now)
            return self.executor_count
        if target > self.capacity_with(cores):
            raise InsufficientResourcesError(
                f"cluster {self.cluster.name!r} cannot host {target} "
                f"{cores}-core executors "
                f"(capacity {self.capacity_with(cores)})"
            )
        for executor_id in list(self._executors):
            self.remove_executor(executor_id)
        self.executor_cores = cores
        self._launch_many(target, now)
        self.reconfigurations += 1
        self._m_executors.set(self.executor_count)
        return self.executor_count
