"""Cluster node model.

The paper evaluates NoStop on a heterogeneous five-node testbed (Table 2):
one master and four workers mixing I5-9400 / I5-10400 / Xeon Bronze 3204
CPUs and SSD / HDD disks.  A node here is a passive resource description;
executors (see :mod:`repro.cluster.executor`) are launched onto nodes and
inherit the node's relative compute speed.

Speed factors are expressed relative to a 1.0 baseline.  Task durations in
the engine are divided by the speed factor of the node hosting the
executor, so a 0.66-speed Xeon worker takes ~1.5x longer per task than an
I5 worker — this is what makes the cluster *heterogeneous* from the
optimizer's point of view, and NoStop must handle it transparently
(paper contribution #5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class DiskType(enum.Enum):
    """Persistent storage technology of a node.

    Disk type matters for shuffle-heavy and output-heavy workloads
    (e.g. Page Analyze writes results back to HDFS): HDD nodes apply a
    multiplicative penalty to the I/O portion of a task.
    """

    SSD = "ssd"
    HDD = "hdd"

    @property
    def io_penalty(self) -> float:
        """Multiplier applied to the I/O fraction of task durations."""
        return 1.0 if self is DiskType.SSD else 1.8


class NodeRole(enum.Enum):
    """Whether a node runs the driver (master) or hosts executors."""

    MASTER = "master"
    WORKER = "worker"


@dataclass(frozen=True)
class CpuSpec:
    """A CPU model with a nominal clock and core count.

    The ``speed_factor`` is the relative per-core throughput used by the
    engine's task-duration model.  It is *not* simply the clock ratio:
    the Xeon Bronze 3204 in the paper's testbed has both a lower clock
    (1.9 GHz) and an older core design, so we fold both into one factor.
    """

    model: str
    clock_ghz: float
    cores: int
    speed_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.clock_ghz <= 0:
            raise ValueError(f"clock_ghz must be positive, got {self.clock_ghz}")
        if self.cores <= 0:
            raise ValueError(f"cores must be positive, got {self.cores}")
        if self.speed_factor <= 0:
            raise ValueError(f"speed_factor must be positive, got {self.speed_factor}")


# CPU models from Table 2 of the paper, with speed factors normalized to
# the I5-9400 master/worker baseline.
I5_9400 = CpuSpec(model="I5-9400", clock_ghz=2.9, cores=6, speed_factor=1.0)
I5_10400 = CpuSpec(model="I5-10400", clock_ghz=2.9, cores=12, speed_factor=1.05)
XEON_BRONZE_3204 = CpuSpec(
    model="Xeon Bronze 3204", clock_ghz=1.9, cores=6, speed_factor=0.66
)


@dataclass
class Node:
    """A physical machine in the cluster.

    Parameters
    ----------
    node_id:
        Unique integer identifier (Table 2 numbers nodes 1..5).
    cpu:
        CPU specification; ``cpu.cores`` bounds how many single-core
        executors the node can host.
    disk:
        Disk technology, used for I/O penalties.
    role:
        Master nodes host the driver and, per the paper's standalone
        deployment, do not run executors.
    memory_gb:
        Total memory available for executors.
    """

    node_id: int
    cpu: CpuSpec
    disk: DiskType = DiskType.SSD
    role: NodeRole = NodeRole.WORKER
    memory_gb: float = 16.0
    online: bool = True
    _used_cores: int = field(default=0, repr=False)
    _used_memory_gb: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.memory_gb <= 0:
            raise ValueError(f"memory_gb must be positive, got {self.memory_gb}")

    # -- capacity accounting ------------------------------------------------

    @property
    def executor_capacity(self) -> int:
        """How many 1-core executors this node could host in total.

        An offline node (chaos-injected outage) contributes zero capacity
        until it comes back, which shrinks ``max_executors`` cluster-wide
        — exactly the infrastructure churn NoStop must tolerate.
        """
        if self.role is NodeRole.MASTER or not self.online:
            return 0
        return self.cpu.cores

    @property
    def free_cores(self) -> int:
        return self.executor_capacity - self._used_cores

    @property
    def free_memory_gb(self) -> float:
        return self.memory_gb - self._used_memory_gb

    @property
    def used_cores(self) -> int:
        return self._used_cores

    def can_host(self, cores: int, memory_gb: float) -> bool:
        """Whether the node has room for an executor of the given size."""
        if self.role is NodeRole.MASTER or not self.online:
            return False
        return self.free_cores >= cores and self.free_memory_gb >= memory_gb

    # -- availability (node-level fault injection) --------------------------

    def set_offline(self) -> None:
        """Take the node out of service (chaos-injected outage).

        Executors already running on the node must be failed separately
        (see :class:`repro.chaos.injectors.NodeOutage`); an offline node
        simply refuses new allocations and reports zero capacity.
        """
        self.online = False

    def set_online(self) -> None:
        """Return the node to service after an outage."""
        self.online = True

    def allocate(self, cores: int, memory_gb: float) -> None:
        """Reserve resources for an executor.

        Raises
        ------
        RuntimeError
            If the node does not have enough free cores or memory.
        """
        if not self.can_host(cores, memory_gb):
            raise RuntimeError(
                f"node {self.node_id} cannot host executor "
                f"({cores} cores / {memory_gb} GB requested, "
                f"{self.free_cores} cores / {self.free_memory_gb} GB free)"
            )
        self._used_cores += cores
        self._used_memory_gb += memory_gb

    def release(self, cores: int, memory_gb: float) -> None:
        """Return resources previously reserved with :meth:`allocate`."""
        if cores > self._used_cores or memory_gb > self._used_memory_gb + 1e-9:
            raise RuntimeError(
                f"node {self.node_id}: releasing more than allocated "
                f"({cores} cores / {memory_gb} GB vs "
                f"{self._used_cores} cores / {self._used_memory_gb} GB in use)"
            )
        self._used_cores -= cores
        self._used_memory_gb -= memory_gb

    # -- performance model --------------------------------------------------

    @property
    def speed_factor(self) -> float:
        """Relative per-core compute throughput of this node."""
        return self.cpu.speed_factor

    @property
    def io_penalty(self) -> float:
        """Multiplier on the I/O fraction of tasks executed on this node."""
        return self.disk.io_penalty
