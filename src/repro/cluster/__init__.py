"""Heterogeneous cluster substrate (paper Table 2).

Models nodes (CPU speed factors, disk types), 1-core/1-GB executors, and a
resource manager that launches/decommissions executors at runtime — the
substrate NoStop's executor-count parameter acts on.
"""

from .cluster import Cluster, homogeneous_cluster, paper_cluster
from .executor import (
    DEFAULT_EXECUTOR_CORES,
    DEFAULT_EXECUTOR_MEMORY_GB,
    Executor,
)
from .node import (
    I5_9400,
    I5_10400,
    XEON_BRONZE_3204,
    CpuSpec,
    DiskType,
    Node,
    NodeRole,
)
from .resource_manager import InsufficientResourcesError, ResourceManager

__all__ = [
    "Cluster",
    "CpuSpec",
    "DEFAULT_EXECUTOR_CORES",
    "DEFAULT_EXECUTOR_MEMORY_GB",
    "DiskType",
    "Executor",
    "I5_9400",
    "I5_10400",
    "InsufficientResourcesError",
    "Node",
    "NodeRole",
    "ResourceManager",
    "XEON_BRONZE_3204",
    "homogeneous_cluster",
    "paper_cluster",
]
