"""Cluster: a collection of nodes with a factory for the paper's testbed.

The paper's Table 2 testbed is exposed as :func:`paper_cluster` and is the
default substrate for every experiment driver under
:mod:`repro.experiments`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from .node import (
    I5_9400,
    I5_10400,
    XEON_BRONZE_3204,
    DiskType,
    Node,
    NodeRole,
)


class Cluster:
    """A named set of :class:`~repro.cluster.node.Node` objects.

    The cluster exposes aggregate capacity queries used by NoStop to derive
    the feasible range for the executor-count parameter (paper §5.1).
    """

    def __init__(self, nodes: Iterable[Node], name: str = "cluster") -> None:
        self.name = name
        self._nodes: List[Node] = list(nodes)
        ids = [n.node_id for n in self._nodes]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate node ids in cluster: {sorted(ids)}")
        if not self._nodes:
            raise ValueError("cluster must contain at least one node")

    # -- structure ----------------------------------------------------------

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> List[Node]:
        return list(self._nodes)

    @property
    def workers(self) -> List[Node]:
        return [n for n in self._nodes if n.role is NodeRole.WORKER]

    @property
    def master(self) -> Optional[Node]:
        for n in self._nodes:
            if n.role is NodeRole.MASTER:
                return n
        return None

    def node(self, node_id: int) -> Node:
        for n in self._nodes:
            if n.node_id == node_id:
                return n
        raise KeyError(f"no node with id {node_id} in cluster {self.name!r}")

    # -- capacity -----------------------------------------------------------

    @property
    def total_executor_capacity(self) -> int:
        """Maximum number of 1-core executors the cluster can host.

        This bounds ``Max_Executors`` in NoStop's configuration range.
        """
        return sum(n.executor_capacity for n in self.workers)

    @property
    def total_cores(self) -> int:
        return sum(n.cpu.cores for n in self._nodes)

    @property
    def free_executor_slots(self) -> int:
        return sum(n.free_cores for n in self.workers)

    def is_heterogeneous(self) -> bool:
        """True if worker nodes differ in speed or disk technology."""
        speeds = {n.speed_factor for n in self.workers}
        disks = {n.disk for n in self.workers}
        return len(speeds) > 1 or len(disks) > 1


def paper_cluster() -> Cluster:
    """Build the heterogeneous five-node testbed of the paper's Table 2.

    ======= ========================= ===== ========
    Node ID CPU                       Disk  Type
    ======= ========================= ===== ========
    1       I5-9400 2.9 GHz           SSD   Master
    2       I5-9400 2.9 GHz           SSD   Worker
    3       Xeon Bronze 3204 1.9 GHz  HDD   Worker
    4       I5-10400 2.9 GHz          HDD   Worker
    5       I5-10400 2.9 GHz          HDD   Worker
    ======= ========================= ===== ========

    Worker memory is sized so that the paper's executor range (up to 20
    executors of 1 core / 1 GB) fits: the four workers expose
    6 + 6 + 12 + 12 = 36 cores in total.
    """
    return Cluster(
        [
            Node(1, I5_9400, DiskType.SSD, NodeRole.MASTER, memory_gb=16),
            Node(2, I5_9400, DiskType.SSD, NodeRole.WORKER, memory_gb=16),
            Node(3, XEON_BRONZE_3204, DiskType.HDD, NodeRole.WORKER, memory_gb=16),
            Node(4, I5_10400, DiskType.HDD, NodeRole.WORKER, memory_gb=32),
            Node(5, I5_10400, DiskType.HDD, NodeRole.WORKER, memory_gb=32),
        ],
        name="paper-testbed",
    )


def homogeneous_cluster(
    workers: int = 4, cores_per_node: int = 8, memory_gb: float = 16.0
) -> Cluster:
    """Build a uniform cluster, useful for tests and controlled ablations."""
    if workers < 1:
        raise ValueError("need at least one worker")
    nodes = [Node(1, I5_9400, DiskType.SSD, NodeRole.MASTER, memory_gb=memory_gb)]
    for i in range(workers):
        spec = I5_9400
        if cores_per_node != spec.cores:
            from .node import CpuSpec

            spec = CpuSpec(
                model=spec.model,
                clock_ghz=spec.clock_ghz,
                cores=cores_per_node,
                speed_factor=spec.speed_factor,
            )
        nodes.append(
            Node(i + 2, spec, DiskType.SSD, NodeRole.WORKER, memory_gb=memory_gb)
        )
    return Cluster(nodes, name="homogeneous")
