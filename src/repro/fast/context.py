"""Fast-tier streaming context: the exact facade over the batch engine.

:class:`FastStreamingContext` mirrors the control surface of
:class:`repro.streaming.context.StreamingContext` — boundary advance,
runtime reconfiguration with the transactional scale-first rule, bounded
batch queue with oldest-first eviction, the real
:class:`~repro.streaming.listener.StreamingListener` — but replaces the
record/task substrates with closed forms:

* records per batch come from the rate trace's integral
  (``records_between``), not a simulated Kafka topic;
* the record-weighted mean arrival time is the interval midpoint (the
  uniform-arrival assumption the steady-state oracle encodes), so the
  delay identity ``e2e = interval/2 + sched + proc`` holds by
  construction;
* processing times come from the vectorized (or fluid) batch engine.

The per-batch Python path stays tiny because batch formation *prefetches*:
records and processing times for a block of future boundaries are
computed in one shot, and the block size adapts — it grows geometrically
while the configuration holds and resets when a reconfiguration
invalidates the prefetched work.  Batches already queued when a
reconfiguration lands are marked stale and re-costed under the live pool
at drain time, matching the exact engine's run-on-current-executors
semantics.

Not modeled in this tier: per-record payloads and kernels, Kafka broker
faults (receiver stalls), transient task failures, and batch traces.
Chaos scenarios therefore require the exact tier.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

import numpy as np

from repro.cluster.cluster import Cluster
from repro.datagen.generator import DataGenerator
from repro.engine.overhead import DEFAULT_OVERHEAD, OverheadModel
from repro.obs import catalog
from repro.obs.tracer import NOOP_TELEMETRY, Telemetry
from repro.streaming.context import StreamingConfig
from repro.streaming.listener import StreamingListener
from repro.streaming.metrics import BatchInfo
from repro.workloads.base import Workload

from .engine import FastBatchEngine

#: Adaptive prefetch bounds: first block after any (re)configuration,
#: growth factor while the configuration holds, and the cap.
_PREFETCH_START = 8
_PREFETCH_GROWTH = 4
_PREFETCH_MAX = 1024


class FastReceiver:
    """Rate-trace shim for the exact receiver's observation surface."""

    def __init__(self, context: "FastStreamingContext") -> None:
        self._context = context
        self.stall_windows = 0

    @property
    def stalled(self) -> bool:
        return False

    @property
    def backlog(self) -> int:
        return 0

    def stall(self) -> None:
        raise NotImplementedError(
            "broker stalls are not modeled in the fast tier; "
            "use fidelity='exact' for chaos scenarios"
        )

    resume = stall

    def observed_rate(self, window: float = 10.0) -> float:
        """Arrival rate over the trailing window, from the trace."""
        if window <= 0:
            raise ValueError("window must be positive")
        now = self._context.time
        start = max(0.0, now - window)
        if now <= start:
            return self._context.trace.rate(0.0)
        count = self._context.trace.records_between(start, now)
        return count / (now - start)


class FastStreamingContext:
    """Batch-level simulated Spark Streaming application (fast tier)."""

    #: Which fast mode this context runs ("vectorized" or "fluid").
    fidelity: str

    def __init__(
        self,
        cluster: Cluster,
        workload: Workload,
        generator: DataGenerator,
        config: StreamingConfig,
        seed: int = 0,
        overhead: OverheadModel = DEFAULT_OVERHEAD,
        noise_sigma: float = 0.10,
        queue_max_length: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
        mode: str = "vectorized",
    ) -> None:
        from repro.cluster.resource_manager import ResourceManager

        self.cluster = cluster
        self.workload = workload
        self.generator = generator
        self.trace = generator.trace
        self.rng = np.random.default_rng(seed)
        self.overhead = overhead
        self.telemetry = telemetry or NOOP_TELEMETRY
        self.fidelity = mode

        self.resource_manager = ResourceManager(cluster)
        self.resource_manager.instrument(self.telemetry.metrics)
        self.resource_manager.scale_to(config.num_executors, now=0.0)
        self.receiver = FastReceiver(self)
        self.listener = StreamingListener(telemetry=self.telemetry)
        self.engine = FastBatchEngine(
            workload,
            overhead,
            self.rng,
            noise_sigma=noise_sigma,
            mode=mode,
        )
        self.engine.set_profile(self.resource_manager.executors)

        self._interval = config.batch_interval
        self.time = 0.0
        self.config_changes = 0
        self.total_dropped = 0
        self._queue_max = queue_max_length
        #: queue entries: [boundary, records, mean_arrival, interval,
        #: proc_time_or_None (None = stale, re-cost at drain), job_id,
        #: cost_records]
        self._queue: Deque[list] = deque()
        self._boundary_hooks: List[Callable[[float], None]] = []
        self._job_counter = 0
        self._exec_count = self.resource_manager.executor_count
        #: Fresh executors pay the one-time startup charge on the next
        #: job (initial pool included — warmup absorbs it, as exact).
        self._startup_pending = True

        # Prefetched block: records / effective records / processing
        # times for boundaries _pf_b0 + i * interval.
        self._pf_records: List[int] = []
        self._pf_cost_records: List[int] = []
        self._pf_proc: List[float] = []
        self._pf_pos = 0
        self._pf_len = 0
        self._pf_b0 = 0.0
        self._pf_size = _PREFETCH_START

        registry = self.telemetry.metrics
        self._m_batches = catalog.instrument(
            registry, "repro_fast_batches_total"
        ).labels(mode=mode)
        self._m_dropped = catalog.instrument(
            registry, "repro_fast_batches_dropped_total"
        )
        self._m_reconfigs = catalog.instrument(
            registry, "repro_fast_reconfigurations_total"
        )
        self._m_fills = catalog.instrument(
            registry, "repro_fast_prefetch_fills_total"
        )
        self._m_depth = catalog.instrument(
            registry, "repro_fast_prefetch_depth"
        )
        self._m_depth.set(self._pf_size)

    # -- configuration ----------------------------------------------------

    @property
    def batch_interval(self) -> float:
        return self._interval

    @property
    def num_executors(self) -> int:
        return self.resource_manager.executor_count

    @property
    def config(self) -> StreamingConfig:
        return StreamingConfig(self._interval, self.num_executors)

    def change_configuration(
        self,
        batch_interval: Optional[float] = None,
        num_executors: Optional[int] = None,
        partitions: Optional[int] = None,
        executor_cores: Optional[int] = None,
    ) -> None:
        """Runtime reconfiguration; semantics match the exact context.

        Pool changes (core resize, then scale) run first so a capacity
        failure leaves the configuration untouched; any applied change
        injects the reconfiguration pause, invalidates the prefetched
        block, and marks queued batches stale (they re-cost on the live
        pool when the engine reaches them).  A core resize relaunches
        the whole pool, so the startup charge is re-armed.
        """
        new_interval = (
            self._interval if batch_interval is None else batch_interval
        )
        new_execs = (
            self.num_executors if num_executors is None else num_executors
        )
        if new_interval <= 0:
            raise ValueError(
                f"batch_interval must be positive, got {new_interval}"
            )
        if new_execs < 1:
            raise ValueError(f"num_executors must be >= 1, got {new_execs}")
        if partitions is not None and partitions < 1:
            raise ValueError(f"partitions must be >= 1, got {partitions}")
        if executor_cores is not None and executor_cores < 1:
            raise ValueError(
                f"executor_cores must be >= 1, got {executor_cores}"
            )
        changed = False
        if (
            executor_cores is not None
            and executor_cores != self.resource_manager.executor_cores
        ):
            self.resource_manager.resize_cores(
                executor_cores, now=self.time, target=new_execs
            )
            self._exec_count = self.resource_manager.executor_count
            self.engine.set_profile(self.resource_manager.executors)
            self._startup_pending = True
            changed = True
        elif new_execs != self.num_executors:
            delta = self.resource_manager.scale_to(new_execs, now=self.time)
            self._exec_count = self.resource_manager.executor_count
            self.engine.set_profile(self.resource_manager.executors)
            if delta > 0:
                self._startup_pending = True
            changed = True
        if abs(new_interval - self._interval) > 1e-12:
            self._interval = new_interval
            changed = True
        if partitions is not None and partitions != self.workload.partitions:
            self.workload.partitions = partitions
            changed = True
        if changed:
            self.config_changes += 1
            self._m_reconfigs.inc()
            self.engine.note_reconfiguration(
                self.time, self.overhead.reconfig_pause
            )
            self._invalidate_prefetch()

    def _invalidate_prefetch(self) -> None:
        self._pf_len = 0
        self._pf_pos = 0
        self._pf_size = _PREFETCH_START
        self._m_depth.set(self._pf_size)
        for entry in self._queue:
            entry[4] = None  # stale: re-cost under the live configuration

    # -- simulation --------------------------------------------------------

    def add_boundary_hook(self, hook: Callable[[float], None]) -> None:
        self._boundary_hooks.append(hook)

    def _refill_prefetch(self, first_boundary: float) -> None:
        size = self._pf_size
        interval = self._interval
        records_between = self.trace.records_between
        effective = self.workload.effective_records
        t0 = first_boundary - interval
        records = [
            records_between(t0 + i * interval, t0 + (i + 1) * interval)
            for i in range(size)
        ]
        cost_records = [effective(r) for r in records]
        proc = self.engine.batch_proc_times(
            np.asarray(cost_records, dtype=np.int64)
        )
        self._pf_records = records
        self._pf_cost_records = cost_records
        self._pf_proc = proc.tolist()
        self._pf_pos = 0
        self._pf_len = size
        self._pf_b0 = first_boundary
        self._m_fills.inc()
        if size < _PREFETCH_MAX:
            self._pf_size = min(size * _PREFETCH_GROWTH, _PREFETCH_MAX)
            self._m_depth.set(self._pf_size)

    def advance_one_batch(self) -> List[BatchInfo]:
        """Advance to the next boundary; mirrors the exact context."""
        interval = self._interval
        boundary = self.time + interval
        if self._boundary_hooks:
            for hook in self._boundary_hooks:
                hook(boundary)
        pos = self._pf_pos
        if (
            pos >= self._pf_len
            or abs(self._pf_b0 + pos * interval - boundary) > 1e-6
        ):
            self._refill_prefetch(boundary)
            pos = 0
        records = self._pf_records[pos]
        cost_records = self._pf_cost_records[pos]
        proc = self._pf_proc[pos]
        self._pf_pos = pos + 1
        # Interval-midpoint mean arrival: the uniform-arrival assumption
        # of the steady-state identity, exact for this tier's batch-level
        # arrival model.  Empty batches pin it to the boundary.
        mean_arrival = boundary - 0.5 * interval if records > 0 else boundary
        queue = self._queue
        if self._queue_max is not None and len(queue) >= self._queue_max:
            queue.popleft()
            self.total_dropped += 1
            self._m_dropped.inc()
        queue.append(
            [boundary, records, mean_arrival, interval, proc,
             self._job_counter, cost_records]
        )
        self._job_counter += 1
        self.time = boundary
        return self._drain(boundary + interval)

    def _drain(self, until: float) -> List[BatchInfo]:
        queue = self._queue
        completed: List[BatchInfo] = []
        if not queue:
            return completed
        engine = self.engine
        free = engine.free_at
        startup = self.overhead.executor_startup
        execs = self._exec_count
        on_batch_completed = self.listener.on_batch_completed
        while queue:
            head = queue[0]
            batch_time = head[0]
            start = free if free > batch_time else batch_time
            if start >= until:
                break
            queue.popleft()
            proc = head[4]
            if proc is None:
                proc = float(
                    engine.batch_proc_times(
                        np.asarray([head[6]], dtype=np.int64)
                    )[0]
                )
            if self._startup_pending:
                proc += startup
                self._startup_pending = False
            end = start + proc
            free = end
            info = BatchInfo(
                batch_index=head[5],
                batch_time=batch_time,
                interval=head[3],
                records=head[1],
                num_executors=execs,
                mean_arrival_time=head[2],
                processing_start=start,
                processing_end=end,
                first_after_reconfig=engine._reconfig_pending,
            )
            engine._reconfig_pending = False
            engine.jobs_run += 1
            on_batch_completed(info)
            completed.append(info)
        engine.free_at = free
        if completed:
            self._m_batches.inc(len(completed))
        return completed

    def advance_batches(self, n: int) -> List[BatchInfo]:
        if n < 0:
            raise ValueError("n must be >= 0")
        completed: List[BatchInfo] = []
        for _ in range(n):
            completed.extend(self.advance_one_batch())
        return completed

    def advance_until(self, t: float) -> List[BatchInfo]:
        completed: List[BatchInfo] = []
        while self.time + self._interval <= t:
            completed.extend(self.advance_one_batch())
        return completed

    # -- fault injection ---------------------------------------------------

    def inject_executor_failure(self, executor_id: Optional[int] = None) -> int:
        """Crash one executor; subsequent jobs run on the smaller pool."""
        failed = self.resource_manager.fail_executor(executor_id)
        self._exec_count = self.resource_manager.executor_count
        self.engine.set_profile(self.resource_manager.executors)
        self._invalidate_prefetch()
        return failed

    # -- status ------------------------------------------------------------

    @property
    def pending_batches(self) -> int:
        return len(self._queue)

    def is_stable(self, last_n: int = 5) -> bool:
        recent = self.listener.metrics.recent(last_n)
        if not recent:
            return True
        return all(b.stable for b in recent)
