"""Fast-tier simulation core.

The exact DES (:mod:`repro.streaming`) walks every record, tick, and
task; that fidelity is the repository's ground truth, but it caps the
scale a sweep can touch.  This package provides two cheaper fidelity
tiers that reproduce the *batch-level* observables the rest of the
repository consumes — interval, scheduling delay, processing time,
end-to-end delay — without ever materializing a record, a task, or a
per-tick producer append:

* ``vectorized`` — task durations for whole *blocks* of future batches
  are drawn as numpy arrays from the calibrated workload cost models,
  and the LPT makespan is folded across executor cores vectorized
  (:class:`~repro.fast.engine.FastBatchEngine`).  Stochastically
  faithful: same cost model, same mean-1 lognormal noise, same overhead
  charges as the exact scheduler.
* ``fluid`` — the closed forms the analytic oracles encode
  (utilization-law processing time, steady-state delay identity)
  evaluated directly; deterministic and effectively free.

Both tiers sit behind :class:`~repro.fast.context.FastStreamingContext`,
which mirrors the :class:`~repro.streaming.context.StreamingContext`
control surface, so NoStop's controller, the SLO judge, the figure
drivers, and ``repro check`` consume fast-tier runs unchanged.  Select a
tier with the ``fidelity`` knob on
:func:`repro.experiments.common.build_experiment`, on sweep cells, or
via ``repro sweep --fidelity``.
"""

from .context import FastStreamingContext
from .engine import ExecutorProfile, FastBatchEngine
from .invariants import check_fast_run

#: The fidelity tiers ``build_experiment`` / the cells / the CLI accept.
FIDELITIES = ("exact", "vectorized", "fluid")

#: The tiers served by this package (everything but the exact DES).
FAST_FIDELITIES = ("vectorized", "fluid")

__all__ = [
    "FIDELITIES",
    "FAST_FIDELITIES",
    "ExecutorProfile",
    "FastBatchEngine",
    "FastStreamingContext",
    "check_fast_run",
]
