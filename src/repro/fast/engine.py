"""Vectorized batch-level engine: cost-model arrays to makespans.

The exact scheduler (:class:`repro.engine.task_scheduler.TaskScheduler`)
walks a heap of executor-core slots task by task.  This engine computes
the same quantity — the batch processing time — for *blocks* of batches
at once:

1. per-task base costs come straight from the workload cost model's
   per-stage linear laws (the same ``fixed/P + n·cpr`` split
   :meth:`~repro.workloads.base.Workload.build_job` performs, as a
   ``(batches, partitions)`` array);
2. one mean-1 lognormal draw covers every task of every stage execution
   in the block;
3. the LPT fold exploits that within one stage all tasks are near-equal
   (an even record split differs by at most one record), so the greedy
   earliest-free-core schedule the exact heap computes reduces to a
   *static assignment* — a pure function of the core speed profile and
   the partition count, computed once with a tiny scalar heap and
   cached.  Per-core loads then follow in closed form from each batch's
   record split, and per-task noise folds into one aggregated mean-1
   lognormal multiplier per core (same mean, variance shrunk by its
   task count — the exact distribution of an averaged mean-1 lognormal
   to second order);
4. serial driver overheads (batch setup, per-stage-execution setup and
   coordination, per-task dispatch on the critical core) are charged
   exactly as the overhead model specifies.

Iterated ML stages draw their per-batch iteration counts in one
``integers`` call and expand to stage-execution rows with ``repeat``;
per-batch stage times come back via ``bincount``.  When the pool has at
least one core per task no assignment is needed at all (each task runs
alone on one core, popped in executor order off the barrier tie exactly
as the heap does), which is what makes 10k-executor scenarios cheap.

The ``fluid`` mode evaluates the utilization-law closed form
(:func:`repro.check.oracles.predict_processing_time`) over the same
arrays: no noise, mean iteration counts, instant.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence

import numpy as np

from repro.cluster.executor import Executor
from repro.engine.overhead import OverheadModel
from repro.workloads.base import Workload


class ExecutorProfile:
    """Per-core speed/penalty arrays for one executor pool snapshot.

    Rebuilt whenever the pool changes (scale up/down, crash) — cheap,
    O(cores) — so the engine's vector math never touches ``Executor``
    objects on the per-batch path.
    """

    __slots__ = (
        "num_executors",
        "total_cores",
        "inv_speed",
        "io_penalty",
        "compute_capacity",
        "mean_io_penalty",
        "uniform",
        "assign_cache",
    )

    def __init__(self, executors: Sequence[Executor]) -> None:
        if not executors:
            raise ValueError("profile needs at least one executor")
        speed: List[float] = []
        penalty: List[float] = []
        for ex in executors:
            s = ex.speed_factor
            p = ex.io_penalty
            for _ in range(ex.cores):
                speed.append(s)
                penalty.append(p)
        speed_arr = np.asarray(speed, dtype=np.float64)
        self.num_executors = len(executors)
        self.total_cores = len(speed)
        self.inv_speed = 1.0 / speed_arr
        self.io_penalty = np.asarray(penalty, dtype=np.float64)
        self.compute_capacity = float(speed_arr.sum())
        self.mean_io_penalty = float(self.io_penalty.mean())
        self.uniform = bool(
            np.ptp(speed_arr) < 1e-12 and np.ptp(self.io_penalty) < 1e-12
        )
        #: Static LPT assignments memoized per (io_fraction, partitions,
        #: noise_sigma, dispatch) — see FastBatchEngine._assignment.
        self.assign_cache: dict = {}

    def core_factors(self, io_fraction: float) -> np.ndarray:
        """Per-core seconds per unit of speed-1 work at ``io_fraction``.

        A task whose speed-1 cost is ``w`` with an ``io_fraction`` share
        of I/O runs in ``w * f_c`` seconds on core ``c``.
        """
        return (1.0 - io_fraction) * self.inv_speed + io_fraction * self.io_penalty


class FastBatchEngine:
    """Block-vectorized (or fluid) batch processing-time engine.

    Owns the same busy-timeline state the exact
    :class:`~repro.streaming.simulator.MicroBatchEngine` exposes
    (``free_at``, ``jobs_run``, ``total_pause_injected``,
    ``note_reconfiguration``) so controllers and invariant checks see an
    identical surface.
    """

    def __init__(
        self,
        workload: Workload,
        overhead: OverheadModel,
        rng: np.random.Generator,
        noise_sigma: float = 0.10,
        mode: str = "vectorized",
    ) -> None:
        if mode not in ("vectorized", "fluid"):
            raise ValueError(
                f"mode must be 'vectorized' or 'fluid', got {mode!r}"
            )
        if noise_sigma < 0:
            raise ValueError(f"noise_sigma must be >= 0, got {noise_sigma}")
        self.workload = workload
        self.overhead = overhead
        self.rng = rng
        self.sigma = float(noise_sigma)
        self.mode = mode
        self.profile: ExecutorProfile | None = None
        #: Engine-busy timeline, as in the exact micro-batch engine.
        self.free_at = 0.0
        self.jobs_run = 0
        self.total_pause_injected = 0.0
        self._reconfig_pending = False

    # -- exact-engine surface ------------------------------------------------

    def note_reconfiguration(self, now: float, pause: float) -> None:
        """Inject the reconfiguration pause into the busy timeline."""
        if pause < 0:
            raise ValueError("pause must be >= 0")
        self.free_at = max(self.free_at, now) + pause
        self.total_pause_injected += pause
        self._reconfig_pending = True

    def set_profile(self, executors: Sequence[Executor]) -> None:
        """Snapshot the current executor pool into array form."""
        self.profile = ExecutorProfile(executors)

    # -- batch costs ---------------------------------------------------------

    def batch_proc_times(self, cost_records: np.ndarray) -> np.ndarray:
        """Processing times for a block of batches.

        ``cost_records`` holds each batch's *effective* record count
        (post window expansion).  Vectorized mode consumes RNG state —
        iteration draws then task noise, in block order — so results
        are deterministic per (seed, call sequence).
        """
        if self.profile is None:
            raise RuntimeError("set_profile() must run before batch costs")
        cr = np.asarray(cost_records, dtype=np.int64)
        if self.mode == "fluid":
            return self._fluid_proc_times(cr)
        return self._vectorized_proc_times(cr)

    def _fluid_proc_times(self, cr: np.ndarray) -> np.ndarray:
        prof = self.profile
        ov = self.overhead
        model = self.workload.cost_model
        partitions = self.workload.partitions
        serial = ov.stage_setup + ov.coordination_cost(prof.num_executors)
        cores = float(prof.total_cores)
        dispatch = partitions * ov.task_dispatch / cores
        crf = cr.astype(np.float64)
        t = np.full(cr.shape[0], ov.batch_setup)
        for sc in model.stages:
            reps = (
                model.iterations.mean
                if sc.name in model.iterated_stages
                else 1.0
            )
            compute = crf * sc.compute_per_record + sc.fixed_compute
            io = crf * sc.io_per_record
            t += reps * (
                serial
                + compute / prof.compute_capacity
                + io * prof.mean_io_penalty / cores
                + dispatch
            )
        return t

    def _vectorized_proc_times(self, cr: np.ndarray) -> np.ndarray:
        prof = self.profile
        ov = self.overhead
        model = self.workload.cost_model
        partitions = self.workload.partitions
        k = cr.shape[0]
        serial = ov.stage_setup + ov.coordination_cost(prof.num_executors)

        im = model.iterations
        if im.lo == im.hi:
            iters = np.full(k, im.lo, dtype=np.int64)
        else:
            iters = self.rng.integers(im.lo, im.hi + 1, size=k)

        # Even split of records over partitions — the array form of
        # build_job's divmod loop.  The remainder goes to the first
        # partitions, so tasks are born in LPT (longest-first) order.
        base, rem = np.divmod(cr, partitions)
        cr_sum = float(cr.sum())

        proc = np.full(k, ov.batch_setup)
        row_batch = None  # built lazily, only if a stage iterates
        for sc in model.stages:
            # Per-task cost law of build_job: fixed/P + n_i * per-record.
            q = sc.fixed_compute / partitions
            u = sc.compute_per_record + sc.io_per_record
            compute_total = cr_sum * sc.compute_per_record + k * sc.fixed_compute
            io_total = cr_sum * sc.io_per_record
            denom = compute_total + io_total
            io_fraction = io_total / denom if denom > 0.0 else 0.0
            if sc.name in model.iterated_stages:
                if row_batch is None:
                    row_batch = np.repeat(np.arange(k), iters)
                makespans = self._stage_makespans(
                    base[row_batch], rem[row_batch], q, u,
                    io_fraction, partitions,
                )
                stage_time = np.bincount(
                    row_batch, weights=makespans, minlength=k
                )
                proc += iters * serial + stage_time
            else:
                proc += serial + self._stage_makespans(
                    base, rem, q, u, io_fraction, partitions
                )
        return proc

    def _assignment(self, io_fraction: float, partitions: int) -> tuple:
        """Static LPT task→core assignment for near-equal tasks.

        Greedy earliest-free-core scheduling of ``partitions`` equal
        tasks over the profile's cores — the schedule the exact heap
        produces up to intra-stage noise — run once with a scalar heap
        and memoized on the profile.  Returns ``(factors, counts, cum,
        sig)``: per-core cost factors, per-core task counts, the prefix
        table ``cum[r, c]`` = how many of the first ``r`` tasks land on
        core ``c`` (first ``r`` tasks carry the remainder record), and
        the per-core aggregated noise sigma (a mean of ``counts[c]``
        mean-1 lognormals has its variance shrunk by ``counts[c]``).
        """
        prof = self.profile
        key = (io_fraction, partitions)
        hit = prof.assign_cache.get(key)
        if hit is not None:
            return hit
        cores = prof.total_cores
        factors = prof.core_factors(io_fraction)
        per_task = factors + self.overhead.task_dispatch
        # (free_at, core) heap; the all-zero barrier tie pops in core
        # order, as the exact heap's slot-sequence tie-break does.
        heap = [(0.0, c) for c in range(cores)]
        assign = np.empty(partitions, dtype=np.intp)
        for i in range(partitions):
            t, c = heapq.heappop(heap)
            assign[i] = c
            heapq.heappush(heap, (t + per_task[c], c))
        onehot = np.zeros((partitions, cores))
        onehot[np.arange(partitions), assign] = 1.0
        cum = np.zeros((partitions + 1, cores))
        np.cumsum(onehot, axis=0, out=cum[1:])
        counts = cum[-1].copy()
        var = np.expm1(self.sigma**2) / np.maximum(counts, 1.0)
        sig = np.sqrt(np.log1p(var))
        sig[counts == 0.0] = 0.0
        hit = (factors, counts, cum, sig)
        prof.assign_cache[key] = hit
        return hit

    def _stage_makespans(
        self,
        base: np.ndarray,
        rem: np.ndarray,
        q: float,
        u: float,
        io_fraction: float,
        partitions: int,
    ) -> np.ndarray:
        """Makespans of one stage execution per row.

        ``base``/``rem`` are the per-row record split (``divmod`` of the
        effective record count by ``partitions``); ``q``/``u`` the
        stage's fixed-per-task and per-record speed-1 costs.  Noise is
        applied after task ordering, exactly as the exact scheduler
        draws per-attempt noise over its pre-sorted task list.
        """
        prof = self.profile
        dispatch = self.overhead.task_dispatch
        cores = prof.total_cores
        rows = base.shape[0]
        sigma = self.sigma
        if cores >= partitions:
            # One core per task: no queueing, the stage ends with its
            # slowest task.  The exact heap pops the barrier tie in
            # executor order, so task i lands on core i.  Uniform pools
            # reduce to a row-max — the 10k-executor scale path.
            n = base[:, None] + (
                np.arange(partitions)[None, :] < rem[:, None]
            )
            w = n * u + q
            if sigma:
                z = self.rng.standard_normal(size=w.shape)
                w = w * np.exp(sigma * z - 0.5 * sigma**2)
            factors = prof.core_factors(io_fraction)
            if prof.uniform:
                return w.max(axis=1) * factors[0] + dispatch
            return (w * factors[None, :partitions]).max(axis=1) + dispatch
        factors, counts, cum, sig = self._assignment(io_fraction, partitions)
        # Closed-form per-core loads from the static assignment: core c
        # runs counts[c] tasks of base cost q + u*base, of which
        # cum[rem, c] carry one extra record.
        loads = (u * base + q)[:, None] * (factors * counts)[None, :] + (
            u * factors
        )[None, :] * cum[rem]
        if sigma:
            z = self.rng.standard_normal(size=(rows, cores))
            loads = loads * np.exp(sig * z - 0.5 * sig * sig)
        return (loads + counts * dispatch).max(axis=1)

