"""Runtime invariants for fast-tier runs.

The exact tier's :class:`~repro.check.invariants.InvariantEngine` hooks
record conservation, queue accounting, and per-task timelines — state
the fast tier deliberately never materializes.  This module checks what
the batch-level abstraction *does* promise, plus one identity that is
strictly stronger than anything the exact tier can offer: with
interval-midpoint arrivals, ``e2e = interval/2 + sched + proc`` holds
per batch to float precision, not merely in steady-state expectation.

:func:`check_fast_run` returns ``(checks_run, violations)`` in the same
:class:`~repro.check.violations.InvariantViolation` currency the exact
engine emits, so ``repro check`` reports are tier-uniform.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

from repro.check.violations import InvariantViolation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .context import FastStreamingContext

#: Absolute slack for the per-batch delay identity (pure float error).
IDENTITY_ABS_TOL = 1e-6

#: Slack for ordering comparisons, matching BatchInfo's own validation.
ORDER_TOL = 1e-9


def check_fast_run(
    context: "FastStreamingContext",
) -> Tuple[int, List[InvariantViolation]]:
    """Validate every completed batch of a fast-tier run.

    Checks, per batch: monotonically increasing batch index and batch
    time; processing starts at or after batch formation; jobs serialize
    on the engine timeline (no overlap); the exact per-batch delay
    identity for non-empty batches (empty batches pin mean arrival to
    the boundary instead); and the stability flag's definition.  Plus
    one global check: the engine ran exactly one job per recorded batch.
    """
    batches = context.listener.metrics.batches
    violations: List[InvariantViolation] = []
    checks_run = 0

    def violate(invariant: str, time: float, message: str, **details) -> None:
        violations.append(
            InvariantViolation(
                invariant=invariant,
                time=time,
                message=message,
                details=details,
            )
        )

    prev = None
    for info in batches:
        checks_run += 1
        if prev is not None:
            if info.batch_index <= prev.batch_index:
                violate(
                    "fast-batch-order",
                    info.batch_time,
                    f"batch index {info.batch_index} not after "
                    f"{prev.batch_index}",
                    index=info.batch_index,
                    previous=prev.batch_index,
                )
            if info.batch_time < prev.batch_time - ORDER_TOL:
                violate(
                    "fast-batch-order",
                    info.batch_time,
                    "batch time regressed",
                    batch_time=info.batch_time,
                    previous=prev.batch_time,
                )
            if info.processing_start < prev.processing_end - ORDER_TOL:
                violate(
                    "fast-serialized-jobs",
                    info.processing_start,
                    f"batch {info.batch_index} started before batch "
                    f"{prev.batch_index} finished",
                    start=info.processing_start,
                    previous_end=prev.processing_end,
                )
        if info.processing_start < info.batch_time - ORDER_TOL:
            violate(
                "fast-causality",
                info.processing_start,
                f"batch {info.batch_index} started before it was formed",
                start=info.processing_start,
                batch_time=info.batch_time,
            )
        if info.records > 0:
            expected = (
                info.interval / 2.0
                + info.scheduling_delay
                + info.processing_time
            )
            if abs(info.end_to_end_delay - expected) > IDENTITY_ABS_TOL:
                violate(
                    "fast-delay-identity",
                    info.batch_time,
                    f"batch {info.batch_index}: e2e "
                    f"{info.end_to_end_delay:.6f} != interval/2 + sched "
                    f"+ proc = {expected:.6f}",
                    e2e=info.end_to_end_delay,
                    expected=expected,
                )
        elif abs(info.mean_arrival_time - info.batch_time) > ORDER_TOL:
            violate(
                "fast-empty-batch-arrival",
                info.batch_time,
                f"empty batch {info.batch_index} mean arrival not pinned "
                "to the boundary",
                mean_arrival=info.mean_arrival_time,
                batch_time=info.batch_time,
            )
        if info.stable != (info.processing_time <= info.interval):
            violate(
                "fast-stability-flag",
                info.batch_time,
                f"batch {info.batch_index} stable flag inconsistent with "
                "proc <= interval",
                stable=info.stable,
                processing_time=info.processing_time,
                interval=info.interval,
            )
        prev = info

    checks_run += 1
    if context.engine.jobs_run != len(batches):
        violate(
            "fast-job-conservation",
            context.time,
            f"engine ran {context.engine.jobs_run} jobs but "
            f"{len(batches)} batches were recorded",
            jobs_run=context.engine.jobs_run,
            batches=len(batches),
        )
    return checks_run, violations
