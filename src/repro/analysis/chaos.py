"""Recovery observability: MTTR and overshoot from batch histories.

The chaos engine logs *when* faults fired; these helpers read the
streaming listener's batch history to quantify *how* the system coped:

* **time-to-recover** — from fault injection until the pipeline is again
  processing batches within their interval (``k`` consecutive stable
  batches, so one lucky batch does not count as recovery);
* **delay overshoot** — how far end-to-end delay rose above its
  pre-fault baseline while the fault was being absorbed.

Both are defined purely over :class:`~repro.streaming.metrics.BatchInfo`
sequences, so they apply equally to NoStop runs and to the fixed /
back-pressure baselines the recovery benchmark compares against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence
from typing import Dict, List, Optional

from repro.obs.span import Span
from repro.streaming.metrics import BatchInfo


def time_to_recover(
    batches: Sequence[BatchInfo],
    fault_start: float,
    consecutive: int = 3,
) -> float:
    """Seconds from ``fault_start`` until sustained stability returns.

    Recovery is declared at the completion time of the ``consecutive``-th
    consecutive stable batch (``processing_time <= interval``) among
    batches completing after the fault.  Returns ``math.inf`` when the
    history never restabilizes — a baseline that stays drowned reports an
    infinite MTTR rather than a misleading large number.
    """
    if consecutive < 1:
        raise ValueError(f"consecutive must be >= 1, got {consecutive}")
    run = 0
    for b in batches:
        if b.processing_end <= fault_start:
            continue
        if b.stable:
            run += 1
            if run >= consecutive:
                return b.processing_end - fault_start
        else:
            run = 0
    return math.inf


def baseline_delay(
    batches: Sequence[BatchInfo],
    before: float,
    window: int = 10,
) -> Optional[float]:
    """Mean end-to-end delay of the last ``window`` pre-fault batches."""
    prior = [b for b in batches if b.processing_end <= before]
    if not prior:
        return None
    used = prior[-window:]
    return sum(b.end_to_end_delay for b in used) / len(used)


def delay_overshoot(
    batches: Sequence[BatchInfo],
    fault_start: float,
    recovered_by: Optional[float] = None,
) -> Optional[float]:
    """Peak delay above the pre-fault baseline during the fault window.

    ``recovered_by`` bounds the window (None = rest of the history).
    Returns None when there is no pre-fault baseline or no batch in the
    window; 0.0 when the fault never pushed delay above baseline.
    """
    base = baseline_delay(batches, before=fault_start)
    if base is None:
        return None
    end = math.inf if recovered_by is None else recovered_by
    window = [
        b for b in batches if fault_start < b.processing_end <= end
    ]
    if not window:
        return None
    peak = max(b.end_to_end_delay for b in window)
    return max(0.0, peak - base)


def poisoned_step_fraction(avoided: int, taken: int) -> float:
    """Share of corrupted SPSA rounds the guard caught."""
    total = avoided + taken
    return avoided / total if total else 0.0


# -- joining chaos events to batch traces ------------------------------------


@dataclass(frozen=True)
class FaultTraceJoin:
    """One chaos event located in the trace stream.

    ``event_id`` is the :class:`~repro.chaos.engine.EventRecord` sequence
    number the engine stamped on the ``chaos.inject`` span event, so a
    ChaosReport row, an MTTR number, and the exact batch trace that
    absorbed the fault all share one key.
    """

    event_id: int
    name: str
    kind: str
    fired_at: float
    trace_id: str
    """Trace of the batch being formed when the fault fired."""
    recover_trace_id: Optional[str] = None
    """Trace carrying the matching ``chaos.recover`` event, if any."""


class FaultJoinResult(Sequence):
    """Joins in event-id order, plus how many fault events had no trace.

    Behaves as a sequence of :class:`FaultTraceJoin` (iteration,
    indexing, ``len``) so existing call sites keep working; ``orphans``
    counts chaos events that could not be located in the span store —
    spans evicted by the tracer's ring bound, tracing disabled mid-run,
    or a malformed ``event_id`` attribute.  Because orphans are *skipped*
    rather than joined, ``result[i]`` does **not** necessarily line up
    with ``ChaosEngine.records[i]``; join by ``event_id`` instead.
    """

    def __init__(self, joins: List[FaultTraceJoin], orphans: int) -> None:
        self.joins = joins
        self.orphans = orphans

    def __iter__(self):
        return iter(self.joins)

    def __len__(self) -> int:
        return len(self.joins)

    def __getitem__(self, index):
        return self.joins[index]

    def by_event_id(self) -> Dict[int, FaultTraceJoin]:
        return {j.event_id: j for j in self.joins}

    def __repr__(self) -> str:
        return (
            f"FaultJoinResult({len(self.joins)} joins, "
            f"{self.orphans} orphans)"
        )


def join_faults_to_traces(
    spans: Sequence[Span],
    records: Optional[Sequence] = None,
) -> FaultJoinResult:
    """Map every ``chaos.inject`` span event to its batch trace.

    Scans root spans for chaos events (the engine attaches them to the
    batch span current at the boundary where the fault fired) and pairs
    injections with their recoveries by event id.

    A fault event whose ``event_id`` has no matching trace span — the
    batch span was evicted from the tracer's ring buffer, tracing was
    off when the fault fired, or the attribute is not an integer — is
    *skipped*, not an error.  Pass the engine's ``records`` to have
    those skips counted: ``result.orphans`` is the number of recorded
    firings absent from the join (without ``records``, only malformed
    span events can be detected and counted).
    """
    injected: Dict[int, FaultTraceJoin] = {}
    recovered: Dict[int, str] = {}
    malformed = 0
    for span in spans:
        for ev in span.events:
            eid = ev.attributes.get("event_id")
            if eid is None:
                continue
            try:
                eid = int(eid)
            except (TypeError, ValueError):
                malformed += 1
                continue
            if ev.name == "chaos.inject":
                injected[eid] = FaultTraceJoin(
                    event_id=eid,
                    name=str(ev.attributes.get("fault", "")),
                    kind=str(ev.attributes.get("kind", "")),
                    fired_at=ev.time,
                    trace_id=span.trace_id,
                )
            elif ev.name == "chaos.recover":
                recovered[eid] = span.trace_id
    joins = []
    for eid in sorted(injected):
        j = injected[eid]
        if eid in recovered:
            j = FaultTraceJoin(
                event_id=j.event_id, name=j.name, kind=j.kind,
                fired_at=j.fired_at, trace_id=j.trace_id,
                recover_trace_id=recovered[eid],
            )
        joins.append(j)
    if records is not None:
        orphans = sum(
            1 for r in records if int(r.event_id) not in injected
        )
    else:
        orphans = malformed
    return FaultJoinResult(joins, orphans)
