"""Statistical helpers for experiment post-processing.

Every Fig. 7 / Fig. 8 style result in the paper is "repeat five times,
report mean ± standard deviation"; these helpers centralize that pattern
(plus bootstrap confidence intervals for the extended analyses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Mean ± std summary of repeated measurements."""

    mean: float
    std: float
    n: int
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return f"{self.mean:.2f} ± {self.std:.2f} (n={self.n})"


def summarize(values: Sequence[float]) -> Summary:
    """Mean/std/min/max of a repeat set (ddof=1 when possible)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sequence")
    if np.any(~np.isfinite(arr)):
        raise ValueError("values must be finite")
    std = float(np.std(arr, ddof=1)) if arr.size > 1 else 0.0
    return Summary(
        mean=float(np.mean(arr)),
        std=std,
        n=int(arr.size),
        minimum=float(np.min(arr)),
        maximum=float(np.max(arr)),
    )


def improvement_factor(baseline: float, improved: float) -> float:
    """How many times smaller ``improved`` is than ``baseline``."""
    if improved <= 0:
        raise ValueError("improved value must be positive")
    if baseline < 0:
        raise ValueError("baseline must be >= 0")
    return baseline / improved


def bootstrap_ci(
    values: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    n_resamples: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
) -> tuple:
    """Percentile bootstrap confidence interval for a statistic."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size < 2:
        raise ValueError("need at least two values for a bootstrap CI")
    if not (0.0 < confidence < 1.0):
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, arr.size, size=(n_resamples, arr.size))
    stats = np.apply_along_axis(statistic, 1, arr[idx])
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(stats, alpha)),
        float(np.quantile(stats, 1.0 - alpha)),
    )


def rolling_mean(values: Sequence[float], window: int) -> np.ndarray:
    """Simple trailing rolling mean (for evolution-plot smoothing)."""
    if window < 1:
        raise ValueError("window must be >= 1")
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return arr
    out = np.empty_like(arr)
    csum = np.cumsum(arr)
    for i in range(arr.size):
        lo = max(0, i - window + 1)
        out[i] = (csum[i] - (csum[lo - 1] if lo > 0 else 0.0)) / (i - lo + 1)
    return out
