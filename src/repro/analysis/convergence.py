"""Convergence diagnostics for optimizer runs.

The paper argues SPSA's "proven convergence property ... ensur[es] that
each optimization step is effective" (§4.2.1).  These helpers quantify
that on recorded runs: best-so-far (regret) curves, distance of the
iterate to its final value, the empirical decay-rate fit, and a simple
settling-time metric used by the Fig. 6/8 analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


def best_so_far(values: Sequence[float]) -> np.ndarray:
    """Running minimum of an objective series (the regret curve's envelope)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("empty series")
    return np.minimum.accumulate(arr)


def regret(values: Sequence[float], optimum: float) -> np.ndarray:
    """Per-evaluation simple regret against a known/assumed optimum."""
    curve = best_so_far(values)
    r = curve - float(optimum)
    if np.any(r < -1e-9):
        raise ValueError(
            "optimum is larger than an observed value; pass the true optimum"
        )
    return np.maximum(r, 0.0)


def distance_to_final(iterates: Sequence[Sequence[float]]) -> np.ndarray:
    """Euclidean distance of every iterate to the final iterate.

    A (noisily) decreasing curve is the visual signature of stochastic-
    approximation convergence.
    """
    pts = np.asarray([list(p) for p in iterates], dtype=float)
    if pts.ndim != 2 or len(pts) < 2:
        raise ValueError("need at least two iterates of equal dimension")
    return np.linalg.norm(pts - pts[-1], axis=1)


def settling_round(
    values: Sequence[float], tolerance: float, window: int = 5
) -> int:
    """First index after which the series stays within ``tolerance`` of
    its final value for at least ``window`` consecutive entries.

    Returns ``len(values)`` when the series never settles.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be >= 0")
    if window < 1:
        raise ValueError("window must be >= 1")
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("empty series")
    final = arr[-1]
    ok = np.abs(arr - final) <= tolerance
    run = 0
    for i, flag in enumerate(ok):
        run = run + 1 if flag else 0
        if run >= window and np.all(ok[i:]):
            return i - window + 1
    return len(arr)


@dataclass(frozen=True)
class DecayFit:
    """Power-law fit ``d_k ≈ C · k^{-β}`` to a convergence curve."""

    beta: float
    log_c: float
    r_squared: float

    @property
    def converging(self) -> bool:
        """Meaningfully positive decay exponent (β > 0.05)."""
        return self.beta > 0.05


def fit_decay_rate(distances: Sequence[float]) -> DecayFit:
    """Least-squares power-law fit in log-log space.

    SPSA theory gives asymptotic O(k^{-(α-γ)/2 - ...}) decay of the
    iterate error; the empirical β from a run is a useful smoke test
    that the gains are in a sane regime (β ≈ 0 means no progress).
    Zero distances (exact hits) are floored at the smallest positive
    observation.
    """
    arr = np.asarray(list(distances), dtype=float)
    if arr.size < 3:
        raise ValueError("need at least three points to fit a decay rate")
    if np.any(arr < 0):
        raise ValueError("distances must be >= 0")
    positive = arr[arr > 0]
    if positive.size == 0:
        return DecayFit(beta=float("inf"), log_c=-float("inf"), r_squared=1.0)
    floored = np.maximum(arr, positive.min())
    k = np.arange(1, arr.size + 1, dtype=float)
    x = np.log(k)
    y = np.log(floored)
    slope, intercept = np.polyfit(x, y, 1)
    pred = slope * x + intercept
    ss_res = float(np.sum((y - pred) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return DecayFit(beta=float(-slope), log_c=float(intercept), r_squared=r2)


def spsa_run_diagnostics(history) -> dict:
    """Summary diagnostics for an :class:`~repro.core.spsa.SPSAOptimizer`
    history (list of :class:`SPSAIteration`)."""
    if not history:
        raise ValueError("empty SPSA history")
    iterates = [rec.theta for rec in history] + [history[-1].theta_next]
    objectives: List[float] = []
    for rec in history:
        vals = [v for v in (rec.y_plus, rec.y_minus) if np.isfinite(v)]
        objectives.append(float(np.mean(vals)))
    distances = distance_to_final(iterates)
    return {
        "iterations": len(history),
        "best_objective": float(np.min(objectives)),
        "final_distance_start": float(distances[0]),
        "decay": fit_decay_rate(distances[:-1]) if len(distances) > 3 else None,
        "best_so_far": best_so_far(objectives),
    }
