"""Plain-text table rendering for benchmark output.

The benchmark harness prints "the same rows/series the paper reports";
these helpers format aligned ASCII tables without external dependencies.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
    float_fmt: str = "{:.2f}",
) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = []
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, bool):
                cells.append("yes" if cell else "no")
            elif isinstance(cell, float):
                cells.append(float_fmt.format(cell))
            else:
                cells.append(str(cell))
        str_rows.append(cells)
    widths = [len(h) for h in headers]
    for cells in str_rows:
        if len(cells) != len(headers):
            raise ValueError(
                f"row has {len(cells)} cells but table has {len(headers)} columns"
            )
        for i, c in enumerate(cells):
            widths[i] = max(widths[i], len(c))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for cells in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence, unit: str = "") -> str:
    """Render a figure series as ``x -> y`` pairs, one per line."""
    if len(xs) != len(ys):
        raise ValueError(f"series length mismatch: {len(xs)} vs {len(ys)}")
    suffix = f" {unit}" if unit else ""
    lines = [f"series: {name}"]
    for x, y in zip(xs, ys):
        yv = f"{y:.3f}" if isinstance(y, float) else str(y)
        lines.append(f"  {x} -> {yv}{suffix}")
    return "\n".join(lines)
