"""Experiment trace recording and replay.

Experiments serialize their raw per-batch / per-round series to JSON so
results can be re-plotted or diffed across runs without re-simulating.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, is_dataclass
from pathlib import Path
from typing import Any, Dict, List, Union

import numpy as np


def _jsonable(obj: Any) -> Any:
    """Recursively convert numpy / dataclass values to JSON-native ones."""
    if isinstance(obj, (np.floating, np.integer)):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return [_jsonable(v) for v in obj.tolist()]
    if is_dataclass(obj) and not isinstance(obj, type):
        return _jsonable(asdict(obj))
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    return obj


@dataclass
class ExperimentTrace:
    """A named experiment with arbitrary series and metadata."""

    experiment: str
    metadata: Dict[str, Any] = field(default_factory=dict)
    series: Dict[str, List] = field(default_factory=dict)

    def add_series(self, name: str, values: List) -> None:
        if name in self.series:
            raise ValueError(f"series {name!r} already recorded")
        self.series[name] = list(values)

    def append(self, name: str, value: Any) -> None:
        self.series.setdefault(name, []).append(value)

    def to_json(self) -> str:
        return json.dumps(
            {
                "experiment": self.experiment,
                "metadata": _jsonable(self.metadata),
                "series": _jsonable(self.series),
            },
            indent=2,
        )

    def save(self, path: Union[str, Path]) -> Path:
        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(self.to_json())
        return p

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ExperimentTrace":
        payload = json.loads(Path(path).read_text())
        for key in ("experiment", "series"):
            if key not in payload:
                raise ValueError(f"malformed trace file: missing {key!r}")
        return cls(
            experiment=payload["experiment"],
            metadata=payload.get("metadata", {}),
            series={k: list(v) for k, v in payload["series"].items()},
        )


def load_span_jsonl(path: Union[str, Path]) -> List:
    """Reload ``repro trace --out`` span JSONL for offline analysis.

    Returns the spans in file order (the tracer's store order), ready
    for :func:`repro.obs.analyze_spans`,
    :func:`repro.obs.chrome_trace_json`, or
    :func:`repro.obs.folded_stacks` — the analytics are pure over span
    values, so a reloaded archive decomposes and exports byte-identically
    to the live run that wrote it.
    """
    from repro.obs import parse_jsonl_spans

    return parse_jsonl_spans(Path(path).read_text())
