"""Measurement post-processing: repeat-set statistics, ASCII tables for
the benchmark harness, and JSON experiment traces."""

from .chaos import (
    baseline_delay,
    delay_overshoot,
    poisoned_step_fraction,
    time_to_recover,
)
from .convergence import (
    DecayFit,
    best_so_far,
    distance_to_final,
    fit_decay_rate,
    regret,
    settling_round,
    spsa_run_diagnostics,
)
from .stats import Summary, bootstrap_ci, improvement_factor, rolling_mean, summarize
from .tables import format_series, format_table
from .traces import ExperimentTrace, load_span_jsonl

__all__ = [
    "DecayFit",
    "ExperimentTrace",
    "load_span_jsonl",
    "baseline_delay",
    "delay_overshoot",
    "poisoned_step_fraction",
    "time_to_recover",
    "best_so_far",
    "distance_to_final",
    "fit_decay_rate",
    "regret",
    "settling_round",
    "spsa_run_diagnostics",
    "Summary",
    "bootstrap_ci",
    "format_series",
    "format_table",
    "improvement_factor",
    "rolling_mean",
    "summarize",
]
