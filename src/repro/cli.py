"""Command-line interface.

Run ``python -m repro <command>``:

* ``run``       — NoStop on one workload, with a per-round trajectory and
                  an optional JSON trace dump;
* ``trace``     — NoStop run with batch-lifecycle tracing on: prints a
                  span timeline, optionally dumps spans / the SPSA audit
                  trail as JSONL;
* ``metrics``   — NoStop run with metrics on: prints a Prometheus
                  text-exposition snapshot, a human-readable summary, or
                  JSON events (``--json``/``--filter``/``--events-out``);
                  ``metrics catalog`` renders the declarative metric
                  catalog (``--write`` regenerates docs, ``--check``
                  fails on drift);
* ``dash``      — generate the Grafana dashboard JSON from the catalog;
* ``report``    — one judged chaos run distilled into a run report (SLO
                  verdicts, burn-rate alerts, anomalies, hotspots, MTTR,
                  SPSA history); exits 1 on a critical SLO breach;
* ``figure``    — regenerate one paper figure/table (fig2 fig3 fig5 fig6
                  fig7 fig8 table2);
* ``sweep``     — run a figure sweep through the parallel sweep runner
                  with the content-addressed result cache (``--workers``,
                  ``--no-cache``, ``--clear-cache``, ``--cache-dir``);
* ``tournament``— rank every registered tuner (SPSA, BO, annealing,
                  random, grid, RL, safe-online) across scenario shapes
                  on the parallel runner; ``--json`` writes the
                  byte-deterministic leaderboard;
* ``compare``   — SPSA vs BO vs annealing vs random search on one workload;
* ``workloads`` — list available workloads and their paper rate bands.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.tables import format_table
from repro.analysis.traces import ExperimentTrace
from repro.datagen.rates import PAPER_RATE_BANDS, RATE_BAND_ALIASES
from repro.workloads import WORKLOADS


def _cmd_workloads(_args) -> int:
    rows = []
    for name in WORKLOADS:
        band_key = RATE_BAND_ALIASES.get(name, name)
        band = PAPER_RATE_BANDS.get(band_key)
        band_str = f"[{band[0]:,} .. {band[1]:,}] rec/s" if band else "-"
        rows.append((name, band_str))
    print(format_table(["workload", "paper rate band"], rows,
                       title="Available workloads"))
    return 0


def _cmd_run(args) -> int:
    from repro.experiments.common import build_experiment, make_controller

    setup = build_experiment(args.workload, seed=args.seed)
    controller = make_controller(setup, seed=args.seed)
    report = controller.run(args.rounds)

    rows = []
    for r in report.rounds:
        rows.append((
            r.round_index, r.phase, f"{r.batch_interval:.2f}",
            r.num_executors,
            f"{r.mean_processing_time:.2f}" if r.mean_processing_time else "-",
        ))
    print(format_table(
        ["round", "phase", "interval (s)", "executors", "proc (s)"],
        rows,
        title=f"NoStop on {args.workload} (seed {args.seed})",
    ))
    best = controller.pause_rule.best_config()
    print(f"\nfinal: interval={report.final_interval:.2f}s x "
          f"{report.final_executors} executors "
          f"(stable={best.stable}, delay~{best.end_to_end_delay:.2f}s)")
    print(f"configuration changes: {report.config_changes}, "
          f"resets: {report.resets}, "
          f"paused at round: {report.first_pause_round}")

    if args.trace_out:
        trace = ExperimentTrace(
            experiment=f"nostop-{args.workload}",
            metadata={"seed": args.seed, "rounds": args.rounds},
        )
        trace.add_series("interval", [r.batch_interval for r in report.rounds])
        trace.add_series("executors", [r.num_executors for r in report.rounds])
        trace.add_series(
            "processing_time",
            [r.mean_processing_time for r in report.rounds],
        )
        trace.add_series("phase", [r.phase for r in report.rounds])
        path = trace.save(args.trace_out)
        print(f"trace written to {path}")
    return 0


def _run_with_telemetry(args, task_detail: bool = False,
                        emitter_factory=None):
    """Shared setup for ``trace`` / ``metrics``: an instrumented run."""
    from repro.experiments.common import build_experiment, make_controller
    from repro.obs import Telemetry

    telemetry = Telemetry(
        enabled=True,
        task_detail=task_detail,
        sample_rate=getattr(args, "sample", 1),
        retain_interesting=not getattr(args, "no_retain", False),
    )
    if emitter_factory is not None:
        telemetry.attach_emitter(emitter_factory(telemetry.metrics))
    setup = build_experiment(args.workload, seed=args.seed,
                             telemetry=telemetry)
    controller = make_controller(setup, seed=args.seed)
    controller.run(args.rounds)
    return telemetry, setup, controller


def _cmd_trace(args) -> int:
    from repro.obs import (
        analyze_spans,
        decompose_spans,
        render_breakdown,
        render_timeline,
        save_chrome_trace,
        save_folded,
        save_spans,
        steady_state_agreement,
    )

    telemetry, setup, controller = _run_with_telemetry(
        args, task_detail=args.tasks
    )
    tracer = telemetry.tracer
    tracer.finalize_all()
    spans = tracer.spans
    print(render_timeline(spans, last_n_traces=args.last))
    n_traces = len(tracer.trace_ids())
    print(f"\n{len(spans)} spans across {n_traces} batch traces "
          f"({tracer.dropped_spans} dropped); "
          f"audit: {len(telemetry.audit)} decisions, "
          f"{len(telemetry.audit.firings)} rule firings")
    if args.sample > 1 or tracer.evicted_traces:
        retained = " ".join(
            f"{reason}={n}"
            for reason, n in sorted(tracer.retained_by_reason.items())
        )
        print(f"flight recorder: 1/{args.sample} sampling, "
              f"{tracer.retained_traces} retained"
              + (f" ({retained})" if retained else "")
              + f", {tracer.evicted_traces} evicted")
    if args.critical:
        breakdown = analyze_spans(spans)
        print("\n-- where the delay went (critical path) --")
        print(render_breakdown(breakdown))
        batches = setup.context.listener.metrics.batches
        agreement = steady_state_agreement(decompose_spans(spans), batches)
        if agreement.samples:
            mark = "AGREE" if agreement.ok else "DISAGREE"
            print(f"steady-state oracle cross-check: trace-side "
                  f"{agreement.expected:.3f}s vs batch-side "
                  f"{agreement.actual:.3f}s over {agreement.samples} "
                  f"batches (tol {agreement.tolerance:.3f}s) -> {mark}")
            if not agreement.ok:
                return 1
        else:
            print("steady-state oracle cross-check: no matchable batches")
    if args.out:
        print(f"spans written to {save_spans(spans, args.out)}")
    if args.chrome:
        print(f"Chrome trace written to {save_chrome_trace(spans, args.chrome)}")
    if args.folded:
        print(f"folded stacks written to {save_folded(spans, args.folded)}")
    if args.audit_out:
        print(f"audit trail written to {telemetry.audit.save(args.audit_out)}")
    mismatches = telemetry.audit.replay(box=setup.scaler.scaled)
    if mismatches:
        print(f"AUDIT REPLAY FAILED: {len(mismatches)} mismatches",
              file=sys.stderr)
        return 1
    print("audit replay: all recorded steps match the optimizer arithmetic")
    return 0


class _PrefixView:
    """Registry view restricted to names starting with a prefix.

    Exporters only need ``collect()``; the view keeps their output
    ordering (and thus determinism) intact.
    """

    def __init__(self, registry, prefix: str) -> None:
        self._registry = registry
        self.prefix = prefix

    def collect(self):
        return [
            m for m in self._registry.collect()
            if m.name.startswith(self.prefix)
        ]


def _cmd_metrics(args) -> int:
    if args.action == "catalog":
        return _cmd_metrics_catalog(args)
    import json as _json

    from repro.obs import (
        EmissionBatcher,
        JsonlSink,
        metric_events,
        prometheus_text,
        render_metrics_summary,
    )

    batcher = None

    def _make_emitter(registry):
        nonlocal batcher
        batcher = EmissionBatcher(JsonlSink(args.events_out),
                                  registry=registry)
        return batcher

    telemetry, setup, _ = _run_with_telemetry(
        args,
        emitter_factory=_make_emitter if args.events_out else None,
    )

    registry = telemetry.metrics
    if args.filter:
        view = _PrefixView(registry, args.filter)
        if not view.collect():
            print(f"no metric matches prefix {args.filter!r}",
                  file=sys.stderr)
            if batcher is not None:
                telemetry.close_emitter()
            return 2
        registry = view

    if args.json:
        events = metric_events(registry, time=setup.context.time)
        text = _json.dumps(events, indent=2, sort_keys=True)
    elif args.format == "prom":
        text = prometheus_text(registry)
    else:
        text = render_metrics_summary(registry)
    print(text)

    if args.out:
        if not text:
            # Empty-registry export is a no-op: never leave a zero-byte
            # scrape file behind.
            print("\nempty snapshot; nothing written", file=sys.stderr)
        else:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(text + "\n")
            print(f"\nsnapshot written to {args.out}", file=sys.stderr)

    if batcher is not None:
        # Final registry snapshot rides the same pipeline as the
        # per-batch events, then flush-on-close seals the file.
        for event in metric_events(telemetry.metrics,
                                   time=setup.context.time):
            batcher.emit(event, now=setup.context.time)
        telemetry.close_emitter()
        print(
            f"events written to {args.events_out} "
            f"({batcher.flushed} shipped, {batcher.dropped} dropped, "
            f"{batcher.flushes} flushes)",
            file=sys.stderr,
        )
    return 0


def _cmd_metrics_catalog(args) -> int:
    """Generate (or verify) the checked-in metric catalog docs."""
    import os

    from repro.obs import catalog_json, catalog_markdown, lint_catalog

    problems = lint_catalog()
    if problems:
        for p in problems:
            print(f"catalog lint: {p}", file=sys.stderr)
        return 1

    md = catalog_markdown()
    js = catalog_json()
    md_path = os.path.join(args.docs_dir, "METRICS.md")
    json_path = os.path.join(args.docs_dir, "metrics.json")

    if args.check:
        stale = []
        for path, want in ((md_path, md), (json_path, js)):
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    have = fh.read()
            except OSError:
                have = None
            if have != want:
                stale.append(path)
        if stale:
            for path in stale:
                print(f"stale generated file: {path} "
                      "(run `repro metrics catalog --write`)",
                      file=sys.stderr)
            return 1
        print("metrics catalog up to date")
        return 0

    if args.write:
        os.makedirs(args.docs_dir, exist_ok=True)
        with open(md_path, "w", encoding="utf-8") as fh:
            fh.write(md)
        with open(json_path, "w", encoding="utf-8") as fh:
            fh.write(js)
        print(f"wrote {md_path} and {json_path}")
        return 0

    print(md, end="")
    return 0


def _cmd_dash(args) -> int:
    """Generate the Grafana dashboard JSON from the catalog."""
    from repro.obs import dashboard_json

    text = dashboard_json(title=args.title)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.out}")
    else:
        print(text, end="")
    return 0


def _cmd_report(args) -> int:
    """One judged chaos run distilled into a self-contained report.

    Exit status 1 signals a critical SLO breach (the CI gate); 0 means
    the run stayed on the rails.
    """
    from repro.experiments.common import judged_chaos_run
    from repro.obs.profiler import WallClockProfiler

    wall = WallClockProfiler()
    with wall.section("run+judge"):
        run = judged_chaos_run(
            workload_name=args.workload,
            rounds=args.rounds,
            seed=args.seed,
            rate_shift_at=args.rate_shift_at,
            rate_shift_multiplier=args.rate_shift_multiplier,
        )
    report = run.report
    with wall.section("render"):
        text = report.render_text()
        html = report.render_html() if args.html else None
        payload = report.to_json() if args.json else None
    print(text)
    if html is not None:
        with open(args.html, "w", encoding="utf-8") as fh:
            fh.write(html + "\n")
        print(f"\nHTML report written to {args.html}", file=sys.stderr)
    if payload is not None:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(payload + "\n")
        print(f"JSON report written to {args.json}", file=sys.stderr)
    # Wall-clock attribution goes to stderr: real seconds are useful at
    # the terminal but must never leak into the deterministic artifacts.
    print("\nwall-clock profile:\n" + wall.render(), file=sys.stderr)
    return 1 if report.critical_breach else 0


def _cmd_figure(args) -> int:
    name = args.name.lower()
    if name == "table2":
        from repro.cluster import paper_cluster

        cluster = paper_cluster()
        rows = [
            (n.node_id, f"{n.cpu.model} {n.cpu.clock_ghz}GHz",
             n.disk.value.upper(), n.role.value.capitalize())
            for n in cluster
        ]
        print(format_table(["Node ID", "CPU", "Disk", "Type"], rows,
                           title="Table 2: list of cluster nodes"))
        return 0
    if name == "fig2":
        from repro.experiments.fig2_batch_interval import run_fig2

        print(run_fig2(seed=args.seed).to_table())
        return 0
    if name == "fig3":
        from repro.experiments.fig3_executors import run_fig3

        print(run_fig3(seed=args.seed).to_table())
        return 0
    if name == "fig5":
        from repro.experiments.fig5_rates import run_fig5

        print(run_fig5(seed=args.seed).to_table())
        return 0
    if name == "fig6":
        from repro.experiments.fig6_evolution import run_fig6

        for wname, trace in run_fig6(seed=args.seed).items():
            print(trace.to_text())
            best = trace.report.best
            print(f"  settled: {best.batch_interval:.2f}s x "
                  f"{best.num_executors} (stable={best.stable})\n")
        return 0
    if name == "fig7":
        from repro.experiments.fig7_improvement import run_fig7

        print(run_fig7(repeats=args.repeats, base_seed=args.seed).to_table())
        return 0
    if name == "fig8":
        from repro.experiments.fig8_spsa_vs_bo import run_fig8

        print(run_fig8(repeats=args.repeats, base_seed=args.seed).to_table())
        return 0
    print(f"unknown figure {args.name!r}; expected "
          f"table2/fig2/fig3/fig5/fig6/fig7/fig8", file=sys.stderr)
    return 2


def _cmd_sweep(args) -> int:
    """Run a figure sweep through the supervised, cached sweep runner."""
    import json as _json
    from pathlib import Path

    from repro.runner import (
        ResultCache,
        RetryPolicy,
        SweepJournal,
        SweepRunner,
        default_cache_dir,
    )

    cache_dir = Path(args.cache_dir) if args.cache_dir else default_cache_dir()
    cache = ResultCache(cache_dir)
    if args.clear_cache:
        removed = cache.clear()
        print(f"cache cleared: {removed} entries removed from {cache_dir}",
              file=sys.stderr)
        if args.name is None:
            return 0
    if args.name is None:
        print("no sweep named; use fig2/fig3/fig5/fig7/fig8 or --clear-cache",
              file=sys.stderr)
        return 2

    journal_path = args.resume or args.journal
    journal = SweepJournal(Path(journal_path)) if journal_path else None
    retry = RetryPolicy(
        max_retries=args.retries, timeout_seconds=args.timeout
    )
    import os as _os

    workers = args.workers if args.workers else (_os.cpu_count() or 1)
    runner = SweepRunner(
        workers=workers, cache=cache, use_cache=not args.no_cache,
        journal=journal, retry=retry,
    )
    name = args.name.lower()
    # A failed cell comes back as a structured CellFailure result; most
    # figure drivers then choke assembling their table.  The sweep/json
    # accounting below must survive that, so the driver is guarded and
    # the error carried into the payload instead of aborting the CLI.
    error: Optional[str] = None
    try:
        if name == "fig2":
            from repro.experiments.fig2_batch_interval import run_fig2

            kwargs = {"workload": args.workload} if args.workload else {}
            print(run_fig2(seed=args.seed, runner=runner,
                           count_only=args.count_only,
                           fidelity=args.fidelity, **kwargs).to_table())
        elif name == "fig3":
            from repro.experiments.fig3_executors import run_fig3

            kwargs = {"workload": args.workload} if args.workload else {}
            print(run_fig3(seed=args.seed, runner=runner,
                           count_only=args.count_only,
                           fidelity=args.fidelity, **kwargs).to_table())
        elif name == "fig5":
            from repro.experiments.fig5_rates import run_fig5

            print(run_fig5(seed=args.seed, runner=runner).to_table())
        elif name == "fig7":
            from repro.experiments.fig6_evolution import PAPER_WORKLOADS
            from repro.experiments.fig7_improvement import run_fig7

            workloads = [args.workload] if args.workload else PAPER_WORKLOADS
            print(run_fig7(repeats=args.repeats, rounds=args.rounds,
                           base_seed=args.seed, workloads=workloads,
                           runner=runner, count_only=args.count_only,
                           fidelity=args.fidelity).to_table())
        elif name == "fig8":
            from repro.experiments.fig6_evolution import PAPER_WORKLOADS
            from repro.experiments.fig8_spsa_vs_bo import run_fig8

            workloads = [args.workload] if args.workload else PAPER_WORKLOADS
            print(run_fig8(repeats=args.repeats, rounds=args.rounds,
                           base_seed=args.seed, workloads=workloads,
                           runner=runner, count_only=args.count_only,
                           fidelity=args.fidelity).to_table())
        else:
            print(
                f"unknown sweep {args.name!r}; "
                "expected fig2/fig3/fig5/fig7/fig8",
                file=sys.stderr,
            )
            return 2
    except Exception as exc:  # noqa: BLE001 - reported in payload/stderr
        error = f"{type(exc).__name__}: {exc}"
        print(f"sweep driver failed: {error}", file=sys.stderr)

    t = runner.totals
    print(
        f"\nsweep: {t.cells} cells | {t.cache_hits} cache hits, "
        f"{t.executed} executed ({t.batches_executed} batches simulated), "
        f"{t.failed} failed | "
        f"{t.workers} worker(s), {t.wall_seconds:.2f}s wall | "
        f"cache: {cache_dir}",
        file=sys.stderr,
    )
    for failure in runner.failures:
        print(
            f"  cell {failure.get('cellIndex')} "
            f"({failure.get('cellKind')}): {failure.get('failure')} "
            f"after {failure.get('attempts')} attempt(s) — "
            f"{failure.get('error')}",
            file=sys.stderr,
        )
    if args.json:
        payload = {
            "sweep": name,
            "status": "error" if error else ("failed" if t.failed else "ok"),
            "error": error,
            "cells": t.cells,
            "cacheHits": t.cache_hits,
            "cacheMisses": t.cache_misses,
            "executed": t.executed,
            "failed": t.failed,
            "retries": t.retries,
            "timeouts": t.timeouts,
            "poolRebuilds": t.pool_rebuilds,
            "journalReplayed": t.journal_replayed,
            "cacheSelfHealed": t.cache_self_healed,
            "batchesExecuted": t.batches_executed,
            "workers": t.workers,
            "wallSeconds": t.wall_seconds,
            "cacheDir": str(cache_dir),
            "journal": str(journal_path) if journal_path else None,
            "versionTag": cache.version_tag,
            "cellFailures": runner.failures,
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            _json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"sweep stats written to {args.json}", file=sys.stderr)
    if (t.failed or error) and args.strict:
        return 1
    return 0


def _cmd_tournament(args) -> int:
    """Rank every registered tuner across scenario shapes."""
    import json as _json
    from pathlib import Path

    from repro.runner import (
        ResultCache,
        RetryPolicy,
        SweepJournal,
        SweepRunner,
        default_cache_dir,
    )
    from repro.runner.spec import SweepSpec
    from repro.tuners import (
        build_leaderboard,
        render_leaderboard,
        scenario_names,
        tuner_names,
    )

    roster = (
        [t.strip() for t in args.tuners.split(",") if t.strip()]
        if args.tuners
        else tuner_names()
    )
    unknown = sorted(set(roster) - set(tuner_names()))
    if unknown:
        print(f"unknown tuner(s) {unknown}; registered: {tuner_names()}",
              file=sys.stderr)
        return 2
    scenarios = (
        [s.strip() for s in args.scenarios.split(",") if s.strip()]
        if args.scenarios
        else ["steady", "step", "spike"]
    )
    bad = sorted(set(scenarios) - set(scenario_names()))
    if bad:
        print(f"unknown scenario(s) {bad}; expected {scenario_names()}",
              file=sys.stderr)
        return 2

    spec = SweepSpec(
        name="tournament",
        kind="tournament",
        base={
            "workload": args.workload,
            "budget": args.budget,
            "fidelity": args.fidelity,
            "slo_delay": args.slo,
        },
        grid={
            "tuner": roster,
            "scenario": scenarios,
            "seed": [args.seed + 100 * r for r in range(args.repeats)],
        },
    )
    import os as _os

    cache_dir = Path(args.cache_dir) if args.cache_dir else default_cache_dir()
    journal = SweepJournal(Path(args.journal)) if args.journal else None
    workers = args.workers if args.workers else (_os.cpu_count() or 1)
    runner = SweepRunner(
        workers=workers,
        cache=ResultCache(cache_dir),
        use_cache=not args.no_cache,
        journal=journal,
        retry=RetryPolicy(max_retries=args.retries),
    )
    sweep = runner.run(spec)
    payload = build_leaderboard(
        sweep.results,
        budget=args.budget,
        slo_delay=args.slo,
        fidelity=args.fidelity,
    )
    print(render_leaderboard(payload))
    t = runner.totals
    print(
        f"\ntournament: {t.cells} cells | {t.cache_hits} cache hits, "
        f"{t.executed} executed ({t.batches_executed} batches simulated), "
        f"{t.failed} failed | {t.workers} worker(s), "
        f"{t.wall_seconds:.2f}s wall",
        file=sys.stderr,
    )
    for failure in runner.failures:
        print(
            f"  cell {failure.get('cellIndex')}: {failure.get('error')}",
            file=sys.stderr,
        )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            _json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"leaderboard written to {args.json}", file=sys.stderr)
    return 1 if (t.failed and args.strict) else 0


def _cmd_compare(args) -> int:
    from repro.baselines.annealing import run_simulated_annealing
    from repro.baselines.bayesian import run_bayesian_optimization
    from repro.baselines.random_search import run_random_search
    from repro.experiments.common import build_experiment, make_controller

    rows = []

    setup = build_experiment(args.workload, seed=args.seed)
    controller = make_controller(setup, seed=args.seed)
    report = controller.run(args.rounds)
    best = controller.pause_rule.best_config()
    rows.append(("SPSA (NoStop)", f"{best.end_to_end_delay:.2f}",
                 report.adjust_calls_to_pause or controller.adjust.calls,
                 "yes" if report.first_pause_round else "no"))

    budget = 2 * args.rounds
    setup = build_experiment(args.workload, seed=args.seed)
    bo = run_bayesian_optimization(
        setup.system, setup.scaler, max_evaluations=budget, seed=args.seed
    )
    rows.append(("Bayesian opt", f"{bo.final_delay:.2f}", bo.config_steps,
                 "yes" if bo.converged_at else "no"))

    setup = build_experiment(args.workload, seed=args.seed)
    sa = run_simulated_annealing(
        setup.system, setup.scaler, max_evaluations=budget, seed=args.seed
    )
    rows.append(("Simulated annealing", f"{sa.best().end_to_end_delay:.2f}",
                 sa.config_steps, "yes" if sa.converged_at else "no"))

    setup = build_experiment(args.workload, seed=args.seed)
    rs = run_random_search(
        setup.system, setup.scaler, max_evaluations=budget, seed=args.seed
    )
    rows.append(("Random search", f"{rs.best().end_to_end_delay:.2f}",
                 len(rs.evaluations), "yes" if rs.converged_at else "no"))

    print(format_table(
        ["optimizer", "final delay (s)", "config steps", "converged"],
        rows,
        title=f"Optimizer comparison on {args.workload} (seed {args.seed})",
    ))
    return 0


def _cmd_check(args) -> int:
    from repro.check import run_check

    report = run_check(
        target=args.target,
        workload=args.workload,
        seed=args.seed,
        batches=args.batches,
        rounds=args.rounds,
        warmup=args.warmup,
        metamorphic=args.metamorphic,
        fidelity=args.fidelity,
    )
    print(report.render_text())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(report.to_json())
        print(f"wrote {args.json}")
    if args.strict and not report.ok:
        return 1
    return 0


def _cmd_lint(args) -> int:
    import json as _json

    from repro.check.lint import lint_paths

    paths = args.paths
    if not paths:
        from pathlib import Path

        import repro

        paths = [str(Path(repro.__file__).parent)]
    findings = lint_paths(paths)
    for f in findings:
        print(f.format())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            _json.dump(
                [f.to_dict() for f in findings], fh, indent=2, sort_keys=True
            )
        print(f"wrote {args.json}")
    if findings:
        print(f"{len(findings)} determinism finding(s)")
        return 1
    print("determinism lint clean")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NoStop reproduction (ICPP 2021) command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("workloads", help="list workloads and rate bands")
    p.set_defaults(func=_cmd_workloads)

    p = sub.add_parser("run", help="run NoStop on a workload")
    p.add_argument("--workload", default="wordcount", choices=sorted(WORKLOADS))
    p.add_argument("--rounds", type=int, default=30)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--trace-out", default=None,
                   help="write the run trajectory as JSON")
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("trace", help="NoStop run with batch tracing on")
    p.add_argument("--workload", default="wordcount", choices=sorted(WORKLOADS))
    p.add_argument("--rounds", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--last", type=int, default=3,
                   help="how many trailing batch traces to print")
    p.add_argument("--tasks", action="store_true",
                   help="emit per-task spans too (verbose)")
    p.add_argument("--out", default=None, help="write all spans as JSONL")
    p.add_argument("--audit-out", default=None,
                   help="write the SPSA audit trail as JSONL")
    p.add_argument("--chrome", default=None,
                   help="write a Chrome Trace Event JSON file "
                        "(open in Perfetto / chrome://tracing)")
    p.add_argument("--folded", default=None,
                   help="write folded stacks for flamegraph.pl / speedscope")
    p.add_argument("--critical", action="store_true",
                   help="print the critical-path delay decomposition and "
                        "cross-check it against the steady-state oracle")
    p.add_argument("--sample", type=int, default=1,
                   help="head-sample 1/N of batch traces (deterministic; "
                        "tail retention still keeps interesting traces)")
    p.add_argument("--no-retain", action="store_true",
                   help="disable tail-based retention of interesting traces")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "metrics",
        help="metrics snapshot of a NoStop run, or the generated catalog",
    )
    p.add_argument("action", nargs="?", default="snapshot",
                   choices=["snapshot", "catalog"],
                   help="snapshot: instrumented run + registry dump; "
                        "catalog: the declarative metric catalog docs")
    p.add_argument("--workload", default="wordcount", choices=sorted(WORKLOADS))
    p.add_argument("--rounds", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--format", choices=["prom", "summary"], default="summary")
    p.add_argument("--json", action="store_true",
                   help="snapshot as JSON events (sorted keys, one object "
                        "per sample) instead of text")
    p.add_argument("--filter", default=None, metavar="PREFIX",
                   help="restrict the snapshot to metric names starting "
                        "with PREFIX; exits 2 when nothing matches")
    p.add_argument("--out", default=None, help="also write the snapshot here")
    p.add_argument("--events-out", default=None, metavar="JSONL",
                   help="ship per-batch events and the final registry "
                        "snapshot through the batched emission pipeline "
                        "into this JSONL file")
    p.add_argument("--check", action="store_true",
                   help="catalog: verify the checked-in docs match the "
                        "declarations (exit 1 on drift)")
    p.add_argument("--write", action="store_true",
                   help="catalog: regenerate docs/METRICS.md and "
                        "docs/metrics.json")
    p.add_argument("--docs-dir", default="docs",
                   help="catalog: directory holding the generated docs")
    p.set_defaults(func=_cmd_metrics)

    p = sub.add_parser(
        "report",
        help="judged chaos run: SLOs, alerts, anomalies, hotspots, MTTR",
    )
    p.add_argument("--workload", default="wordcount", choices=sorted(WORKLOADS))
    p.add_argument("--rounds", type=int, default=40)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--rate-shift-at", type=float, default=600.0,
                   help="simulated time of the scripted §5.5 rate shift")
    p.add_argument("--rate-shift-multiplier", type=float, default=0.25)
    p.add_argument("--html", default=None,
                   help="write a self-contained single-file HTML report here")
    p.add_argument("--json", default=None, help="write the report as JSON")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("figure", help="regenerate one paper figure/table")
    p.add_argument("name", help="table2 | fig2 | fig3 | fig5 | fig6 | fig7 | fig8")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--repeats", type=int, default=3,
                   help="repeats for fig7/fig8 (paper uses 5)")
    p.set_defaults(func=_cmd_figure)

    p = sub.add_parser(
        "sweep",
        help="run a figure sweep via the parallel, cached sweep runner",
    )
    p.add_argument("name", nargs="?", default=None,
                   help="fig2 | fig3 | fig5 | fig7 | fig8")
    p.add_argument("--workload", default=None, choices=sorted(WORKLOADS),
                   help="restrict fig2/fig3/fig7/fig8 to one workload")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--repeats", type=int, default=3,
                   help="repeats for fig7/fig8 (paper uses 5)")
    p.add_argument("--rounds", type=int, default=40,
                   help="NoStop rounds for fig7/fig8")
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes (default: all CPU cores; "
                        "results identical at any count)")
    p.add_argument("--fidelity", default="exact",
                   choices=["exact", "vectorized", "fluid"],
                   help="simulation tier: exact per-task DES (default), "
                        "the numpy-vectorized batch engine, or the "
                        "analytic fluid model (fig5 is rate-only and "
                        "tier-independent)")
    p.add_argument("--no-cache", action="store_true",
                   help="ignore cached results (fresh results still stored)")
    p.add_argument("--clear-cache", action="store_true",
                   help="delete every cached cell before running")
    p.add_argument("--cache-dir", default=None,
                   help="cache root (default: $REPRO_SWEEP_CACHE or "
                        "~/.cache/repro/sweeps)")
    p.add_argument("--count-only", action="store_true",
                   help="segment-per-rate-span datagen fast path "
                        "(deterministic, but not byte-identical to the "
                        "default per-tick path)")
    p.add_argument("--json", default=None,
                   help="write sweep/cache accounting as JSON (always a "
                        "valid document, even when cells fail)")
    p.add_argument("--journal", default=None,
                   help="write-ahead journal (JSONL) recording every "
                        "completed cell for crash-safe resume")
    p.add_argument("--resume", default=None, metavar="JOURNAL",
                   help="resume an interrupted sweep from its journal "
                        "(implies --journal JOURNAL)")
    p.add_argument("--retries", type=int, default=2,
                   help="retries per failing cell before it becomes a "
                        "structured CellFailure result")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-cell timeout in seconds (forces pooled "
                        "execution so hung cells can be terminated)")
    p.add_argument("--strict", action="store_true",
                   help="exit 1 if any cell failed (default: degrade "
                        "gracefully and exit 0)")
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "tournament",
        help="rank every registered tuner across scenario shapes on the "
             "parallel sweep runner",
    )
    p.add_argument("--tuners", default=None,
                   help="comma list of tuner names (default: all registered)")
    p.add_argument("--scenarios", default=None,
                   help="comma list of scenario shapes "
                        "(default: steady,step,spike; also: sine)")
    p.add_argument("--workload", default="wordcount",
                   choices=sorted(WORKLOADS))
    p.add_argument("--budget", type=int, default=30,
                   help="objective evaluations per tuner run")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--repeats", type=int, default=1,
                   help="seeds per (tuner, scenario) cell, spaced by 100")
    p.add_argument("--fidelity", default="vectorized",
                   choices=["exact", "vectorized", "fluid"],
                   help="simulation tier (default: the oracle-validated "
                        "vectorized engine)")
    p.add_argument("--slo", type=float, default=30.0,
                   help="end-to-end delay SLO in seconds")
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes (default: all CPU cores)")
    p.add_argument("--no-cache", action="store_true",
                   help="ignore cached cell results")
    p.add_argument("--cache-dir", default=None,
                   help="cache root (default: $REPRO_SWEEP_CACHE or "
                        "~/.cache/repro/sweeps)")
    p.add_argument("--journal", default=None,
                   help="write-ahead journal (JSONL) for crash-safe resume")
    p.add_argument("--retries", type=int, default=2)
    p.add_argument("--json", default=None,
                   help="write the leaderboard as sorted-key JSON "
                        "(byte-identical at a fixed seed)")
    p.add_argument("--strict", action="store_true",
                   help="exit 1 if any cell failed")
    p.set_defaults(func=_cmd_tournament)

    p = sub.add_parser("compare", help="compare optimizers on one workload")
    p.add_argument("--workload", default="linear_regression",
                   choices=sorted(WORKLOADS))
    p.add_argument("--rounds", type=int, default=30)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser(
        "check",
        help="run a target with runtime invariants attached and compare "
             "against the analytic oracles",
    )
    p.add_argument("target", nargs="?", default="quickstart",
                   choices=["quickstart", "fig7", "chaos"])
    p.add_argument("--workload", default=None, choices=sorted(WORKLOADS),
                   help="override the target's default workload")
    p.add_argument("--seed", type=int, default=None,
                   help="override the target's default seed")
    p.add_argument("--batches", type=int, default=30,
                   help="batches for fixed-configuration targets")
    p.add_argument("--rounds", type=int, default=40,
                   help="optimizer rounds for fig7/chaos targets")
    p.add_argument("--warmup", type=int, default=5,
                   help="batches excluded from oracle comparison")
    p.add_argument("--metamorphic", action="store_true",
                   help="also run the time-dilation twin and the "
                        "executor-homogeneity identity")
    p.add_argument("--fidelity", default="exact",
                   choices=["exact", "vectorized", "fluid"],
                   help="simulation tier to check (chaos requires exact)")
    p.add_argument("--strict", action="store_true",
                   help="exit non-zero on any violation or oracle failure")
    p.add_argument("--json", default=None,
                   help="write the full check report as JSON")
    p.set_defaults(func=_cmd_check)

    p = sub.add_parser(
        "dash",
        help="generate the Grafana dashboard JSON from the metric catalog",
    )
    p.add_argument("--out", default=None,
                   help="write the dashboard here (default: stdout)")
    p.add_argument("--title", default="NoStop repro telemetry")
    p.set_defaults(func=_cmd_dash)

    p = sub.add_parser(
        "lint",
        help="determinism linter: unseeded RNGs, wall-clock reads, "
             "unordered iteration",
    )
    p.add_argument("paths", nargs="*", default=None,
                   help="files or directories (default: the installed "
                        "repro package source)")
    p.add_argument("--json", default=None,
                   help="write findings as JSON")
    p.set_defaults(func=_cmd_lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
