"""FastStreamingContext behavior: the exact context's control surface —
reconfiguration, bounded queue, failure injection — plus the fast tier's
own machinery (adaptive prefetch, stale re-costing, determinism)."""

import numpy as np
import pytest

from repro.cluster.cluster import paper_cluster
from repro.datagen.generator import DataGenerator
from repro.datagen.rates import ConstantRate
from repro.engine.overhead import DEFAULT_OVERHEAD
from repro.fast import FastBatchEngine, FastStreamingContext
from repro.fast.context import _PREFETCH_MAX, _PREFETCH_START
from repro.kafka.cluster import paper_kafka_cluster
from repro.streaming.context import StreamingConfig
from repro.workloads.wordcount import WordCount


def make_fast_context(
    rate: float = 50_000.0,
    interval: float = 5.0,
    executors: int = 10,
    seed: int = 0,
    mode: str = "vectorized",
    **kwargs,
) -> FastStreamingContext:
    cl = paper_cluster()
    kafka = paper_kafka_cluster(cl.total_cores)
    wl = WordCount()
    gen = DataGenerator(
        kafka.topic("events"),
        ConstantRate(rate),
        payload_kind=wl.payload_kind,
        seed=seed,
    )
    return FastStreamingContext(
        cl, wl, gen, StreamingConfig(interval, executors),
        seed=seed, mode=mode, **kwargs,
    )


class TestAdvance:
    def test_batches_complete_and_count(self):
        ctx = make_fast_context()
        ctx.advance_batches(20)
        metrics = ctx.listener.metrics
        assert len(metrics) == 20
        assert ctx.engine.jobs_run == 20
        assert ctx.time == pytest.approx(20 * 5.0)

    def test_advance_until(self):
        ctx = make_fast_context(interval=4.0)
        ctx.advance_until(41.0)
        assert ctx.time == pytest.approx(40.0)

    def test_batch_info_fields(self):
        ctx = make_fast_context()
        ctx.advance_batches(5)
        b = ctx.listener.metrics.batches[0]
        assert b.records == 250_000  # 50k rec/s x 5 s
        assert b.mean_arrival_time == pytest.approx(b.batch_time - 2.5)
        assert b.processing_start >= b.batch_time
        assert b.num_executors == 10

    def test_determinism_same_seed(self):
        a = make_fast_context(seed=9)
        b = make_fast_context(seed=9)
        a.advance_batches(30)
        b.advance_batches(30)
        pa = [x.processing_time for x in a.listener.metrics.batches]
        pb = [x.processing_time for x in b.listener.metrics.batches]
        assert pa == pb

    def test_different_seeds_differ(self):
        a = make_fast_context(seed=1)
        b = make_fast_context(seed=2)
        a.advance_batches(10)
        b.advance_batches(10)
        pa = [x.processing_time for x in a.listener.metrics.batches]
        pb = [x.processing_time for x in b.listener.metrics.batches]
        assert pa != pb

    def test_boundary_hooks_fire(self):
        ctx = make_fast_context()
        seen = []
        ctx.add_boundary_hook(seen.append)
        ctx.advance_batches(3)
        assert seen == [pytest.approx(5.0), pytest.approx(10.0),
                        pytest.approx(15.0)]


class TestPrefetch:
    def test_block_grows_geometrically(self):
        ctx = make_fast_context()
        assert ctx._pf_size == _PREFETCH_START
        ctx.advance_batches(_PREFETCH_START + 1)
        assert ctx._pf_size > _PREFETCH_START
        assert ctx._pf_size <= _PREFETCH_MAX

    def test_reconfig_resets_block(self):
        ctx = make_fast_context()
        ctx.advance_batches(_PREFETCH_START + 1)
        ctx.change_configuration(batch_interval=6.0)
        assert ctx._pf_size == _PREFETCH_START

    def test_prefetch_matches_single_batch_costing(self):
        """Prefetched processing times equal batch-at-a-time costing at
        σ=0 (noise draws consume the shared RNG in a different order, so
        only the noise-free engine is directly comparable)."""
        a = make_fast_context(noise_sigma=0.0)
        a.advance_batches(12)
        pa = [x.processing_time for x in a.listener.metrics.batches]

        b = make_fast_context(noise_sigma=0.0)
        engine = FastBatchEngine(
            b.workload, DEFAULT_OVERHEAD, np.random.default_rng(0),
            noise_sigma=0.0,
        )
        engine.set_profile(b.resource_manager.executors)
        records = b.workload.effective_records(250_000)
        one = float(
            engine.batch_proc_times(np.asarray([records], dtype=np.int64))[0]
        )
        # First batch carries the executor-startup charge.
        assert pa[0] == pytest.approx(
            one + DEFAULT_OVERHEAD.executor_startup
        )
        assert pa[1] == pytest.approx(one)


class TestReconfiguration:
    def test_interval_change_applies_and_pauses(self):
        ctx = make_fast_context()
        ctx.advance_batches(5)
        free_before = ctx.engine.free_at
        ctx.change_configuration(batch_interval=8.0)
        assert ctx.batch_interval == 8.0
        assert ctx.config_changes == 1
        assert ctx.engine.total_pause_injected == pytest.approx(
            DEFAULT_OVERHEAD.reconfig_pause
        )
        assert ctx.engine.free_at >= free_before

    def test_scale_change_rebuilds_profile(self):
        ctx = make_fast_context()
        ctx.advance_batches(3)
        cores_before = ctx.engine.profile.total_cores
        ctx.change_configuration(num_executors=16)
        assert ctx.num_executors == 16
        assert ctx.engine.profile.total_cores > cores_before

    def test_noop_change_costs_nothing(self):
        ctx = make_fast_context()
        ctx.change_configuration(batch_interval=5.0, num_executors=10)
        assert ctx.config_changes == 0
        assert ctx.engine.total_pause_injected == 0.0

    def test_first_batch_after_reconfig_flagged(self):
        ctx = make_fast_context()
        ctx.advance_batches(5)
        ctx.change_configuration(num_executors=12)
        completed = ctx.advance_batches(8)
        flagged = [b for b in completed if b.first_after_reconfig]
        assert len(flagged) == 1

    def test_invalid_values_rejected(self):
        ctx = make_fast_context()
        with pytest.raises(ValueError):
            ctx.change_configuration(batch_interval=0.0)
        with pytest.raises(ValueError):
            ctx.change_configuration(num_executors=0)
        with pytest.raises(ValueError):
            ctx.change_configuration(partitions=0)

    def test_queued_batches_recosted_on_live_pool(self):
        """Batches queued before a reconfiguration run on the new pool:
        at σ=0, post-reconfig processing reflects the larger pool."""
        ctx = make_fast_context(
            rate=200_000.0, interval=2.0, executors=2, noise_sigma=0.0
        )
        ctx.advance_batches(6)  # overloaded: queue builds up
        assert ctx.pending_batches > 0
        ctx.change_configuration(num_executors=18)
        done = ctx.advance_batches(20)
        post = [b for b in done if b.first_after_reconfig]
        # The stale batch was re-costed under 18 executors, so it is far
        # cheaper than the 2-executor batches before it.
        pre_mean = np.mean(
            [b.processing_time
             for b in ctx.listener.metrics.batches[:4]]
        )
        assert post[0].processing_time < pre_mean


class TestQueueBound:
    def test_oldest_batch_evicted_at_capacity(self):
        ctx = make_fast_context(
            rate=400_000.0, interval=2.0, executors=1,
            queue_max_length=3,
        )
        ctx.advance_batches(12)
        assert ctx.total_dropped > 0
        assert ctx.pending_batches <= 3


class TestFailureInjection:
    def test_failure_shrinks_pool_without_config_change(self):
        ctx = make_fast_context()
        ctx.advance_batches(3)
        ctx.inject_executor_failure()
        assert ctx.num_executors == 9
        assert ctx.config_changes == 0
        ctx.advance_batches(3)
        assert ctx.listener.metrics.batches[-1].num_executors == 9


class TestReceiver:
    def test_observed_rate_matches_trace(self):
        ctx = make_fast_context(rate=50_000.0)
        ctx.advance_batches(4)
        assert ctx.receiver.observed_rate(10.0) == pytest.approx(
            50_000.0, rel=1e-6
        )

    def test_stall_rejected(self):
        ctx = make_fast_context()
        with pytest.raises(NotImplementedError):
            ctx.receiver.stall()


class TestEngineValidation:
    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            FastBatchEngine(
                WordCount(), DEFAULT_OVERHEAD,
                np.random.default_rng(0), mode="exact",
            )

    def test_bad_sigma_rejected(self):
        with pytest.raises(ValueError):
            FastBatchEngine(
                WordCount(), DEFAULT_OVERHEAD,
                np.random.default_rng(0), noise_sigma=-0.1,
            )


class TestScale:
    def test_large_uniform_pool_many_partitions(self):
        """10k executors x 1000 partitions advances without per-task
        blowup (the scale regime the CI smoke gates on wall-clock)."""
        from repro.cluster.cluster import homogeneous_cluster

        cl = homogeneous_cluster(workers=640, cores_per_node=16)
        kafka = paper_kafka_cluster(64)
        wl = WordCount()
        wl.partitions = 1000
        gen = DataGenerator(
            kafka.topic("events"), ConstantRate(150_000.0),
            payload_kind=wl.payload_kind, seed=0,
        )
        ctx = FastStreamingContext(
            cl, wl, gen, StreamingConfig(10.0, 10_000), seed=0,
        )
        assert ctx.engine.profile.num_executors == 10_000
        assert ctx.engine.profile.total_cores >= 1000
        ctx.advance_batches(50)
        assert len(ctx.listener.metrics) == 50
