"""Cross-tier equivalence: the fast tiers must satisfy the same analytic
oracles the exact DES does, and the exact tier must be bit-identical to
the engine as it existed before the fast tier was added."""

import pytest

from repro.check.oracles import run_oracles
from repro.datagen.rates import (
    PAPER_RATE_BANDS,
    RATE_BAND_ALIASES,
    ConstantRate,
    SineRate,
    StepRate,
)
from repro.experiments.common import build_experiment
from repro.fast import check_fast_run
from repro.runner.cells import execute_cell

WORKLOADS = sorted(PAPER_RATE_BANDS)

RATE_SHAPES = ("paper_band", "constant", "step", "sine")


def _rate_trace(workload: str, shape: str):
    """Build one rate shape scaled to the workload's paper band.

    ``paper_band`` returns None so build_experiment uses its default
    (the §6.2.2 uniform-random band trace).
    """
    lo, hi = PAPER_RATE_BANDS[RATE_BAND_ALIASES.get(workload, workload)]
    mid = (lo + hi) / 2.0
    if shape == "paper_band":
        return None
    if shape == "constant":
        return ConstantRate(mid)
    if shape == "step":
        return StepRate.of((0.0, lo), (200.0, hi), (400.0, mid))
    if shape == "sine":
        return SineRate(base=mid, amplitude=(hi - lo) / 2.0, period=240.0)
    raise AssertionError(shape)


@pytest.mark.parametrize("shape", RATE_SHAPES)
@pytest.mark.parametrize("workload", WORKLOADS)
class TestVectorizedTierOracles:
    def test_oracles_and_invariants(self, workload, shape):
        setup = build_experiment(
            workload,
            seed=11,
            rate_trace=_rate_trace(workload, shape),
            fidelity="vectorized",
        )
        setup.context.advance_batches(60)
        for oracle in run_oracles(setup, warmup=5):
            assert oracle.passed, (
                f"{workload}/{shape}: {oracle.oracle} expected "
                f"{oracle.expected:.3f} got {oracle.actual:.3f} "
                f"(tol {oracle.tolerance:.3f})"
            )
        checks, violations = check_fast_run(setup.context)
        assert checks > 0
        assert violations == [], [v.render() for v in violations]


class TestFluidTier:
    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_fluid_oracles(self, workload):
        setup = build_experiment(workload, seed=11, fidelity="fluid")
        setup.context.advance_batches(60)
        for oracle in run_oracles(setup, warmup=5):
            assert oracle.passed, (
                f"{workload}: {oracle.oracle} delta {oracle.delta:.3f} "
                f"tol {oracle.tolerance:.3f}"
            )

    def test_fluid_is_noise_free(self):
        setup = build_experiment("logistic_regression", seed=3,
                                 fidelity="fluid")
        setup.context.advance_batches(30)
        a = [b.processing_time
             for b in setup.context.listener.metrics.batches]
        again = build_experiment("logistic_regression", seed=3,
                                 fidelity="fluid")
        again.context.advance_batches(30)
        b = [x.processing_time
             for x in again.context.listener.metrics.batches]
        assert a == b


class TestVectorizedVsFluidAgreement:
    def test_mean_processing_within_noise(self):
        """σ=0 vectorized and fluid agree closely at the mean (both are
        the same cost model; vectorized resolves LPT packing exactly,
        fluid divides work by aggregate capacity)."""
        vec = build_experiment(
            "linear_regression", seed=5, noise_sigma=0.0,
            fidelity="vectorized",
        )
        vec.context.advance_batches(40)
        flu = build_experiment(
            "linear_regression", seed=5, fidelity="fluid"
        )
        flu.context.advance_batches(40)
        pv = vec.context.listener.metrics.mean_processing_time()
        pf = flu.context.listener.metrics.mean_processing_time()
        # Fluid ignores packing quantization, so it is a lower bound;
        # 15% covers the LPT remainder on the paper's 58-core pool.
        assert pf <= pv * 1.02
        assert abs(pv - pf) / pv < 0.15


class TestExactTierRegression:
    """fidelity="exact" must remain byte-identical to the pre-fast-tier
    engine: golden values recorded from the seed revision."""

    def test_fixed_config_cell_bit_identical(self):
        res = execute_cell(
            "fixed_config",
            {
                "workload": "logistic_regression",
                "seed": 101,
                "batch_interval": 10.0,
                "num_executors": 10,
                "batches": 20,
            },
        )
        assert res["meanEndToEndDelay"] == 15.175851878815697
        assert res["meanProcessingTime"] == 9.610258549776036
        assert res["batchesExecuted"] == 20

    def test_nostop_cell_bit_identical(self):
        res = execute_cell(
            "nostop", {"workload": "wordcount", "seed": 1, "rounds": 4}
        )
        assert res["finalInterval"] == 4.489
        assert res["finalExecutors"] == 17
        assert res["batchesExecuted"] == 104
        assert res["simTime"] == 432.07199999999955

    def test_explicit_exact_fidelity_matches_default(self):
        base = execute_cell(
            "fixed_config",
            {
                "workload": "wordcount",
                "seed": 7,
                "batch_interval": 8.0,
                "num_executors": 10,
                "batches": 10,
            },
        )
        explicit = execute_cell(
            "fixed_config",
            {
                "workload": "wordcount",
                "seed": 7,
                "batch_interval": 8.0,
                "num_executors": 10,
                "batches": 10,
                "fidelity": "exact",
            },
        )
        assert base == explicit


class TestDigestStability:
    """fidelity only enters cell params for non-default tiers, so
    exact-tier cache keys and journal identities are unchanged."""

    def test_specs_omit_exact_fidelity(self):
        from repro.experiments.fig2_batch_interval import fig2_spec
        from repro.experiments.fig3_executors import fig3_spec
        from repro.experiments.fig7_improvement import fig7_measure_spec
        from repro.experiments.fig8_spsa_vs_bo import fig8_spsa_spec

        assert "fidelity" not in fig2_spec().base
        assert fig2_spec(fidelity="exact").base == fig2_spec().base
        assert fig3_spec(fidelity="exact").base == fig3_spec().base
        assert "fidelity" not in fig8_spsa_spec("wordcount").base
        reports = [{"finalInterval": 6.0, "finalExecutors": 12}]
        spec = fig7_measure_spec("wordcount", reports, fidelity="exact")
        for cell in spec.expand():
            assert "fidelity" not in cell.param_dict

    def test_non_default_tier_changes_digest(self):
        from repro.experiments.fig2_batch_interval import fig2_spec
        from repro.runner.cache import cell_digest

        exact = fig2_spec().expand()[0]
        fast = fig2_spec(fidelity="vectorized").expand()[0]
        assert cell_digest(exact, "v") != cell_digest(fast, "v")


class TestFastCells:
    def test_fixed_config_cell_runs_vectorized(self):
        res = execute_cell(
            "fixed_config",
            {
                "workload": "wordcount",
                "seed": 3,
                "batch_interval": 10.0,
                "num_executors": 10,
                "batches": 25,
                "fidelity": "vectorized",
            },
        )
        assert res["batchesExecuted"] == 25
        assert res["meanProcessingTime"] > 0

    def test_nostop_cell_runs_vectorized(self):
        res = execute_cell(
            "nostop",
            {
                "workload": "wordcount",
                "seed": 1,
                "rounds": 6,
                "fidelity": "vectorized",
            },
        )
        assert res["batchesExecuted"] > 0
        assert res["finalInterval"] > 0
