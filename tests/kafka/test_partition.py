"""Unit tests for the segment-based partition log."""

import pytest

from repro.kafka.partition import Partition, Segment


class TestSegment:
    def test_timestamp_interpolation(self):
        seg = Segment(t0=10.0, t1=20.0, count=10, base_offset=100)
        assert seg.timestamp_of(100) == pytest.approx(10.0)
        assert seg.timestamp_of(105) == pytest.approx(15.0)

    def test_out_of_segment_offset_raises(self):
        seg = Segment(t0=0.0, t1=1.0, count=5, base_offset=0)
        with pytest.raises(IndexError):
            seg.timestamp_of(5)

    def test_invalid_segment_rejected(self):
        with pytest.raises(ValueError):
            Segment(t0=1.0, t1=0.5, count=1, base_offset=0)
        with pytest.raises(ValueError):
            Segment(t0=0.0, t1=1.0, count=-1, base_offset=0)


class TestPartitionAppend:
    def test_appends_accumulate_offsets(self):
        p = Partition(0)
        p.append(0.0, 1.0, 100)
        p.append(1.0, 2.0, 50)
        assert p.end_offset == 150
        assert p.segment_count == 2

    def test_zero_count_append_is_noop(self):
        p = Partition(0)
        p.append(0.0, 1.0, 0)
        assert p.end_offset == 0
        assert p.segment_count == 0

    def test_overlapping_append_rejected(self):
        p = Partition(0)
        p.append(0.0, 2.0, 10)
        with pytest.raises(ValueError):
            p.append(1.0, 3.0, 10)

    def test_gap_after_empty_segment_allowed(self):
        p = Partition(0)
        p.append(0.0, 1.0, 0)
        p.append(1.0, 2.0, 10)  # must not conflict with the empty span
        assert p.end_offset == 10


class TestCoalescing:
    def test_same_rate_adjacent_appends_merge(self):
        p = Partition(0)
        for i in range(50):
            p.append(float(i), float(i + 1), 100)  # constant 100 rec/s
        assert p.segment_count == 1
        assert p.end_offset == 5000
        assert p.nonempty_appends == 50

    def test_rate_change_starts_new_segment(self):
        p = Partition(0)
        p.append(0.0, 1.0, 100)
        p.append(1.0, 2.0, 100)   # merges
        p.append(2.0, 3.0, 50)    # new rate
        p.append(3.0, 4.0, 50)    # merges
        assert p.segment_count == 2
        assert p.end_offset == 300

    def test_gap_prevents_merge(self):
        p = Partition(0)
        p.append(0.0, 1.0, 100)
        p.append(1.5, 2.5, 100)  # same rate but not contiguous
        assert p.segment_count == 2

    def test_merge_equivalent_to_single_append(self):
        merged = Partition(0)
        for i in range(20):
            merged.append(float(i), float(i + 1), 10)
        reference = Partition(1)
        reference.append(0.0, 20.0, 200)  # the span appended in one go
        for t in (0.0, 0.5, 3.7, 10.0, 19.99, 20.0, 25.0):
            assert merged.offset_at(t) == reference.offset_at(t)
        for off in (0, 1, 37, 100, 199):
            assert merged.timestamp_of(off) == pytest.approx(
                reference.timestamp_of(off)
            )
        assert merged.mean_arrival_time(0, 200) == pytest.approx(
            reference.mean_arrival_time(0, 200)
        )

    def test_zero_count_append_does_not_count_or_merge(self):
        p = Partition(0)
        p.append(0.0, 1.0, 100)
        p.append(1.0, 2.0, 0)
        assert p.nonempty_appends == 1
        # The empty span left no segment, so the next same-rate append
        # is not contiguous with the previous one.
        p.append(2.0, 3.0, 100)
        assert p.segment_count == 2


class TestPartitionQueries:
    @pytest.fixture
    def log(self):
        p = Partition(0)
        p.append(0.0, 10.0, 100)   # 10 rec/s
        p.append(10.0, 20.0, 200)  # 20 rec/s
        return p

    def test_offset_at_boundaries(self, log):
        assert log.offset_at(0.0) == 0
        assert log.offset_at(10.0) == 100
        assert log.offset_at(20.0) == 300
        assert log.offset_at(100.0) == 300

    def test_offset_at_interpolates(self, log):
        assert log.offset_at(5.0) == 50
        assert log.offset_at(15.0) == 200

    def test_offset_at_is_monotone(self, log):
        offsets = [log.offset_at(t) for t in [0, 1, 5, 9.9, 10, 12, 19.9, 25]]
        assert offsets == sorted(offsets)

    def test_timestamp_of_roundtrips_offset(self, log):
        for off in (0, 50, 99, 100, 250, 299):
            t = log.timestamp_of(off)
            assert log.offset_at(t) <= off < log.offset_at(t + 0.2)

    def test_timestamp_out_of_range_raises(self, log):
        with pytest.raises(IndexError):
            log.timestamp_of(300)
        with pytest.raises(IndexError):
            log.timestamp_of(-1)

    def test_mean_arrival_time_of_uniform_segment(self, log):
        # Offsets [0, 100) arrive uniformly over [0, 10): mean 5.0.
        assert log.mean_arrival_time(0, 100) == pytest.approx(5.0)

    def test_mean_arrival_time_spanning_segments(self, log):
        # [0,100) mean 5.0 (weight 100); [100,300) mean 15.0 (weight 200).
        expected = (5.0 * 100 + 15.0 * 200) / 300
        assert log.mean_arrival_time(0, 300) == pytest.approx(expected)

    def test_mean_arrival_time_empty_range_rejected(self, log):
        with pytest.raises(ValueError):
            log.mean_arrival_time(10, 10)

    def test_mean_arrival_beyond_log_rejected(self, log):
        with pytest.raises(IndexError):
            log.mean_arrival_time(0, 301)
