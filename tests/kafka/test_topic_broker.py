"""Unit tests for topics, brokers and the Kafka cluster."""

import pytest

from repro.kafka.broker import KafkaBroker
from repro.kafka.cluster import KafkaCluster, paper_kafka_cluster
from repro.kafka.topic import Topic


class TestTopic:
    def test_append_uniform_conserves_records(self):
        t = Topic("events", 7)
        t.append_uniform(0.0, 1.0, 1000)
        assert t.total_records() == 1000

    def test_append_uniform_is_balanced(self):
        t = Topic("events", 7)
        for i in range(20):
            t.append_uniform(float(i), float(i + 1), 1003)
        counts = [p.end_offset for p in t.partitions]
        assert max(counts) - min(counts) <= 20  # remainder rotation keeps spread tight

    def test_remainder_rotates(self):
        t = Topic("events", 4)
        t.append_uniform(0.0, 1.0, 5)  # one partition gets the extra
        t.append_uniform(1.0, 2.0, 5)
        counts = [p.end_offset for p in t.partitions]
        assert sorted(counts) == [2, 2, 3, 3]

    def test_records_before(self):
        t = Topic("events", 2)
        t.append_uniform(0.0, 10.0, 100)
        assert t.records_before(5.0) == 50
        assert t.records_before(10.0) == 100

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Topic("", 1)
        with pytest.raises(ValueError):
            Topic("x", 0)

    def test_negative_count_rejected(self):
        t = Topic("events", 2)
        with pytest.raises(ValueError):
            t.append_uniform(0.0, 1.0, -1)


class TestBroker:
    def test_assignment_tracking(self):
        b = KafkaBroker(1)
        b.assign("events", 0)
        b.assign("events", 3)
        assert b.partition_count == 2

    def test_duplicate_assignment_rejected(self):
        b = KafkaBroker(1)
        b.assign("events", 0)
        with pytest.raises(ValueError):
            b.assign("events", 0)

    def test_validate_partition_load(self):
        b = KafkaBroker(1, max_throughput=1000.0)
        assert b.validate_partition_load(999.0)
        assert not b.validate_partition_load(1001.0)


class TestKafkaCluster:
    def test_paper_cluster_over_partitions(self):
        # §6.1: partitions > total cluster cores.
        kc = paper_kafka_cluster(total_cluster_cores=36)
        assert kc.topic("events").num_partitions > 36
        assert len(kc.brokers) == 5  # one broker per node

    def test_partitions_spread_over_brokers(self):
        kc = KafkaCluster(3)
        kc.create_topic("t", 9)
        assert kc.partition_balance("t") == 0

    def test_min_partitions_enforced(self):
        kc = KafkaCluster(2)
        with pytest.raises(ValueError):
            kc.create_topic("t", 4, min_partitions=8)

    def test_duplicate_topic_rejected(self):
        kc = KafkaCluster(2)
        kc.create_topic("t", 2)
        with pytest.raises(ValueError):
            kc.create_topic("t", 2)

    def test_unknown_topic_raises(self):
        with pytest.raises(KeyError):
            KafkaCluster(1).topic("nope")
