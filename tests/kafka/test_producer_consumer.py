"""Unit tests for the rate-controlled producer and direct-stream consumer."""

import pytest

from repro.datagen.rates import ConstantRate, StepRate
from repro.kafka.consumer import DirectStreamConsumer, OffsetRange
from repro.kafka.producer import RateControlledProducer
from repro.kafka.topic import Topic


@pytest.fixture
def topic():
    return Topic("events", 4)


class TestProducer:
    def test_constant_rate_produces_expected_counts(self, topic):
        p = RateControlledProducer(topic, ConstantRate(1000.0))
        produced = p.produce_until(10.0)
        assert produced == 10_000
        assert topic.total_records() == 10_000

    def test_produce_is_incremental(self, topic):
        p = RateControlledProducer(topic, ConstantRate(100.0))
        p.produce_until(5.0)
        p.produce_until(10.0)
        assert p.total_produced == 1000
        assert p.produced_until == 10.0

    def test_time_going_backwards_rejected(self, topic):
        p = RateControlledProducer(topic, ConstantRate(100.0))
        p.produce_until(5.0)
        with pytest.raises(ValueError):
            p.produce_until(4.0)

    def test_rate_cap_throttles(self, topic):
        p = RateControlledProducer(topic, ConstantRate(1000.0), rate_cap=400.0)
        p.produce_until(10.0)
        assert p.total_produced == 4000
        assert p.total_throttled == 6000

    def test_rate_cap_can_be_lifted(self, topic):
        p = RateControlledProducer(topic, ConstantRate(1000.0), rate_cap=100.0)
        p.produce_until(1.0)
        p.set_rate_cap(None)
        p.produce_until(2.0)
        assert p.total_produced == 100 + 1000

    def test_step_rate_respected(self, topic):
        trace = StepRate.of((0.0, 100.0), (5.0, 200.0))
        p = RateControlledProducer(topic, trace)
        p.produce_until(10.0)
        assert p.total_produced == 5 * 100 + 5 * 200

    def test_invalid_tick_rejected(self, topic):
        with pytest.raises(ValueError):
            RateControlledProducer(topic, ConstantRate(1.0), tick=0.0)


class TestConsumer:
    def test_poll_consumes_exactly_once(self, topic):
        p = RateControlledProducer(topic, ConstantRate(1000.0))
        c = DirectStreamConsumer(topic)
        p.produce_until(2.0)
        b1 = c.poll(2.0)
        b2 = c.poll(2.0)
        assert b1.total_records == 2000
        assert b2.total_records == 0

    def test_lag_reflects_unconsumed(self, topic):
        p = RateControlledProducer(topic, ConstantRate(100.0))
        c = DirectStreamConsumer(topic)
        p.produce_until(10.0)
        assert c.lag() == 1000
        c.poll(10.0)
        assert c.lag() == 0

    def test_mean_arrival_time_mid_interval(self, topic):
        p = RateControlledProducer(topic, ConstantRate(100.0))
        c = DirectStreamConsumer(topic)
        p.produce_until(10.0)
        batch = c.poll(10.0)
        # Uniform arrivals over [0, 10): mean 5.0.
        assert c.mean_arrival_time(batch) == pytest.approx(5.0, abs=0.2)

    def test_empty_batch_mean_arrival_falls_back(self, topic):
        c = DirectStreamConsumer(topic)
        batch = c.poll(3.0)
        assert batch.total_records == 0
        assert c.mean_arrival_time(batch) == 3.0

    def test_offset_range_validation(self):
        with pytest.raises(ValueError):
            OffsetRange(partition_id=0, start=10, end=5)
        assert OffsetRange(partition_id=0, start=5, end=10).count == 5

    def test_total_consumed_accumulates(self, topic):
        p = RateControlledProducer(topic, ConstantRate(100.0))
        c = DirectStreamConsumer(topic)
        p.produce_until(4.0)
        c.poll(2.0)
        c.poll(4.0)
        assert c.total_consumed == 400
