"""Count-only datagen fast path: segment-per-rate-span production."""

import pytest

from repro.datagen.rates import (
    ConstantRate,
    SpikeRate,
    StepRate,
    TraceRate,
    UniformRandomRate,
)
from repro.kafka.producer import RateControlledProducer
from repro.kafka.topic import Topic


def topic():
    return Topic("events", 5)


class TestConstantUntil:
    def test_constant_rate_is_constant_forever(self):
        assert ConstantRate(100.0).constant_until(3.0) == float("inf")

    def test_uniform_random_rate_holds_per_segment(self):
        tr = UniformRandomRate(10, 20, hold=10.0, seed=1)
        assert tr.constant_until(0.0) == 10.0
        assert tr.constant_until(9.99) == 10.0
        assert tr.constant_until(10.0) == 20.0

    def test_step_rate_until_next_level(self):
        tr = StepRate.of((0.0, 10.0), (30.0, 20.0))
        assert tr.constant_until(5.0) == 30.0
        assert tr.constant_until(30.0) == float("inf")

    def test_spike_rate_breaks_at_window_edges(self):
        tr = SpikeRate(ConstantRate(10.0), spikes=((20.0, 25.0, 3.0),))
        assert tr.constant_until(0.0) == 20.0
        assert tr.constant_until(20.0) == 25.0
        assert tr.constant_until(25.0) == float("inf")

    def test_trace_rate_steps_at_dt(self):
        tr = TraceRate([5.0, 6.0, 7.0], dt=2.0)
        assert tr.constant_until(1.0) == 2.0
        assert tr.constant_until(4.5) == float("inf")  # clamped tail

    def test_default_disables_fast_path(self):
        class Custom(ConstantRate):
            def constant_until(self, t):  # re-disable
                return super(ConstantRate, self).constant_until(t)

        assert Custom(5.0).constant_until(3.0) == 3.0


class TestCountOnlyProduction:
    def test_constant_rate_totals_match_per_tick(self):
        fast = RateControlledProducer(topic(), ConstantRate(100.0),
                                      count_only=True)
        slow = RateControlledProducer(topic(), ConstantRate(100.0))
        assert fast.produce_until(120.0) == slow.produce_until(120.0) == 12000

    def test_constant_rate_uses_constant_segments(self):
        fast_topic = topic()
        slow_topic = topic()
        RateControlledProducer(fast_topic, ConstantRate(100.0),
                               count_only=True).produce_until(120.0)
        RateControlledProducer(slow_topic, ConstantRate(100.0)
                               ).produce_until(120.0)
        fast_segments = sum(p.segment_count for p in fast_topic.partitions)
        slow_segments = sum(p.segment_count for p in slow_topic.partitions)
        assert fast_segments == 5  # one span, one segment per partition
        # Per-tick production also coalesces (constant rate), so the
        # fast path's win here is fewer append calls, not fewer segments.
        assert slow_segments == 5

    def test_uniform_band_totals_close_to_per_tick(self):
        trace = UniformRandomRate(7_000, 13_000, hold=10.0, seed=3)
        fast = RateControlledProducer(topic(), trace, count_only=True)
        slow = RateControlledProducer(topic(), trace)
        nf = fast.produce_until(300.0)
        ns = slow.produce_until(300.0)
        # One rounding per 10 s span vs one per 1 s tick: totals agree
        # to within one record per tick.
        assert nf == pytest.approx(ns, abs=300)
        assert nf > 0.9 * 7_000 * 300 / 7  # sanity: same order of magnitude

    def test_count_only_is_deterministic(self):
        trace = UniformRandomRate(1_000, 2_000, hold=10.0, seed=9)
        a = RateControlledProducer(topic(), trace, count_only=True)
        b = RateControlledProducer(topic(), trace, count_only=True)
        assert a.produce_until(200.0) == b.produce_until(200.0)

    def test_rate_cap_applies_per_span(self):
        fast = RateControlledProducer(topic(), ConstantRate(100.0),
                                      rate_cap=50.0, count_only=True)
        produced = fast.produce_until(10.0)
        assert produced == 500
        assert fast.total_throttled == 500

    def test_incremental_produce_until_advances_spans(self):
        trace = StepRate.of((0.0, 10.0), (5.0, 20.0))
        fast = RateControlledProducer(topic(), trace, count_only=True)
        assert fast.produce_until(5.0) == 50
        assert fast.produce_until(10.0) == 100
        assert fast.produced_until == 10.0
