"""DriverFailure injector and the cold-vs-checkpoint recovery scenario."""

import json

import numpy as np
import pytest

from repro.chaos import (
    AtTime,
    ChaosEngine,
    DriverFailure,
    FaultEvent,
    FaultSchedule,
)
from repro.experiments.common import build_experiment
from repro.experiments.recovery import (
    DriverHost,
    RecoveryResult,
    run_recovery_comparison,
    run_recovery_scenario,
)

WORKLOAD = "logistic_regression"
SEED = 3
PAUSE_N = 4
KILL_TIME = 4000.0
OUTAGE = 60.0
ROUNDS = 30


def test_driver_host_validates_mode():
    with pytest.raises(ValueError, match="mode"):
        DriverHost(mode="warm")


def test_driver_failure_stalls_receiver_and_notifies_host():
    setup = build_experiment(WORKLOAD, seed=SEED)
    host = DriverHost(mode="cold")
    schedule = FaultSchedule.of(
        FaultEvent(
            name="driver_failure",
            trigger=AtTime(50.0),
            injector=DriverFailure().bind(host),
            duration=30.0,
        )
    )
    engine = ChaosEngine(setup.context, schedule, seed=0)
    setup.context.advance_batches(12)
    engine.finish()

    assert host.killed_at and host.recovered_at
    assert host.recovered_at[0] > host.killed_at[0]
    assert not host.down
    assert host.needs_restart
    [record] = engine.records
    assert record.kind == "DriverFailure"
    assert "driver killed" in record.detail
    assert record.recovered_at is not None


def test_driver_failure_without_host_is_pure_stall():
    setup = build_experiment(WORKLOAD, seed=SEED)
    schedule = FaultSchedule.of(
        FaultEvent(
            name="driver_failure",
            trigger=AtTime(50.0),
            injector=DriverFailure(),
            duration=30.0,
        )
    )
    engine = ChaosEngine(setup.context, schedule, seed=0)
    setup.context.advance_batches(12)
    engine.finish()
    [record] = engine.records
    assert record.recovered_at is not None  # composes host-free


@pytest.fixture(scope="module")
def comparison():
    return run_recovery_comparison(
        WORKLOAD, rounds=ROUNDS, seed=SEED,
        kill_time=KILL_TIME, outage=OUTAGE, pause_n=PAUSE_N,
    )


def test_recovery_scenario_reports_driver_failure(comparison):
    cold: RecoveryResult = comparison["cold"]
    assert cold.restarts == 1
    assert cold.paused_before_kill  # the kill landed post-convergence
    assert cold.chaos.scenario == "driver_failure[cold]"
    [outcome] = cold.chaos.events
    assert outcome.record.kind == "DriverFailure"
    assert outcome.record.recovered_at is not None
    # Deterministic serialization, like every other chaos report.
    json.loads(cold.chaos.to_json())


def test_checkpoint_restores_exact_spsa_iterate(comparison):
    ckpt: RecoveryResult = comparison["checkpoint"]
    restores = [
        f for f in ckpt.controller.audit.firings if f.kind == "restore"
    ]
    assert len(restores) == 1
    # The restored iterate is the one checkpointed at the last completed
    # round before the kill — the cold run's controller instead restarts
    # at k=0 (visible as a fresh round numbering after its restart).
    pre_kill = [r for r in ckpt.records if r.sim_time < ckpt.killed_at[0]]
    assert pre_kill, "kill fired before any completed round"
    assert f"k={pre_kill[-1].k}" in restores[0].detail


def test_checkpoint_reconverges_faster_than_cold_restart(comparison):
    cold: RecoveryResult = comparison["cold"]
    ckpt: RecoveryResult = comparison["checkpoint"]
    assert cold.batches_to_repause is not None
    assert ckpt.batches_to_repause is not None
    assert ckpt.batches_to_repause < cold.batches_to_repause
    assert comparison["batches_saved"] > 0
    assert ckpt.rounds_to_repause < cold.rounds_to_repause


def test_recovery_scenario_deterministic():
    a = run_recovery_scenario(
        WORKLOAD, mode="checkpoint", rounds=12, seed=SEED,
        kill_time=KILL_TIME, outage=OUTAGE, pause_n=PAUSE_N,
    )
    b = run_recovery_scenario(
        WORKLOAD, mode="checkpoint", rounds=12, seed=SEED,
        kill_time=KILL_TIME, outage=OUTAGE, pause_n=PAUSE_N,
    )
    assert a.to_dict() == b.to_dict()
    thetas_a = [np.asarray(r.theta_scaled).tolist() for r in a.records]
    thetas_b = [np.asarray(r.theta_scaled).tolist() for r in b.records]
    assert thetas_a == thetas_b
