"""Unit tests for the fault-schedule DSL (triggers, events, schedules)."""

import pytest

from repro.chaos import AtTime, FaultEvent, FaultSchedule, Periodic, RateAbove
from repro.chaos.injectors import DataSkewBurst


def skew():
    return DataSkewBurst(multiplier=2.0)


class TestAtTime:
    def test_fires_once_inside_window(self):
        t = AtTime(120.0)
        assert t.fire_times(110.0, 130.0, 0.0, None) == (120.0,)

    def test_boundary_inclusion_is_half_open(self):
        t = AtTime(120.0)
        # (t0, t1]: firing exactly at t1 counts, exactly at t0 does not.
        assert t.fire_times(110.0, 120.0, 0.0, None) == (120.0,)
        assert t.fire_times(120.0, 130.0, 0.0, None) == ()

    def test_never_refires(self):
        t = AtTime(120.0)
        assert t.fire_times(110.0, 130.0, 0.0, last_fired=120.0) == ()

    def test_fire_at_time_zero(self):
        t = AtTime(0.0)
        assert t.fire_times(float("-inf"), 10.0, 0.0, None) == (0.0,)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            AtTime(-1.0)


class TestPeriodic:
    def test_every_period_in_window(self):
        t = Periodic(period=10.0, start=0.0)
        assert t.fire_times(0.0, 30.0, 0.0, None) == (10.0, 20.0, 30.0)

    def test_start_offset(self):
        t = Periodic(period=10.0, start=25.0)
        assert t.fire_times(0.0, 40.0, 0.0, None) == (25.0, 35.0)

    def test_end_bound(self):
        t = Periodic(period=10.0, start=0.0, end=25.0)
        assert t.fire_times(0.0, 100.0, 0.0, None) == (10.0, 20.0)

    def test_no_double_fire_across_windows(self):
        t = Periodic(period=10.0)
        first = t.fire_times(float("-inf"), 15.0, 0.0, None)
        second = t.fire_times(15.0, 30.0, 0.0, last_fired=first[-1])
        assert first == (0.0, 10.0)
        assert second == (20.0, 30.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Periodic(period=0.0)
        with pytest.raises(ValueError):
            Periodic(period=5.0, start=10.0, end=10.0)


class TestRateAbove:
    def test_fires_on_high_rate(self):
        t = RateAbove(threshold=1000.0, cooldown=60.0)
        assert t.fire_times(0.0, 10.0, 2000.0, None) == (10.0,)

    def test_quiet_below_threshold(self):
        t = RateAbove(threshold=1000.0)
        assert t.fire_times(0.0, 10.0, 500.0, None) == ()

    def test_cooldown_suppresses_refire(self):
        t = RateAbove(threshold=1000.0, cooldown=60.0)
        assert t.fire_times(10.0, 20.0, 2000.0, last_fired=10.0) == ()
        assert t.fire_times(60.0, 80.0, 2000.0, last_fired=10.0) == (80.0,)


class TestSchedule:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FaultSchedule.of(
                FaultEvent("a", AtTime(1.0), skew()),
                FaultEvent("a", AtTime(2.0), skew()),
            )

    def test_iteration_and_names(self):
        s = FaultSchedule.of(
            FaultEvent("a", AtTime(1.0), skew()),
            FaultEvent("b", AtTime(2.0), skew()),
        )
        assert len(s) == 2
        assert s.names() == ["a", "b"]

    def test_event_validation(self):
        with pytest.raises(ValueError):
            FaultEvent("", AtTime(1.0), skew())
        with pytest.raises(ValueError):
            FaultEvent("a", AtTime(1.0), skew(), duration=0.0)
