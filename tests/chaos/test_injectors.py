"""Injector behavior against a live simulated deployment."""

import numpy as np
import pytest

from repro.chaos import (
    AtTime,
    BrokerOutage,
    ChaosEngine,
    DataSkewBurst,
    ExecutorCrash,
    FaultEvent,
    FaultSchedule,
    NodeOutage,
    StragglerSlowdown,
)
from repro.experiments.common import build_experiment


@pytest.fixture()
def setup():
    return build_experiment("wordcount", seed=3)


def rng():
    return np.random.default_rng(0)


class TestExecutorCrash:
    def test_crash_shrinks_pool_and_recover_releases_slot(self, setup):
        ctx = setup.context
        before = ctx.resource_manager.executor_count
        cap_before = ctx.resource_manager.available_capacity
        inj = ExecutorCrash(count=1, hold_slot=True)
        inj.inject(ctx, 10.0, rng())
        assert ctx.resource_manager.executor_count == before - 1
        # The freed slot is held hostage: capacity did not grow.
        assert ctx.resource_manager.available_capacity <= cap_before
        inj.recover(ctx, 70.0)
        assert ctx.resource_manager.available_capacity > cap_before - 1

    def test_never_kills_last_executor(self, setup):
        ctx = setup.context
        inj = ExecutorCrash(count=100, hold_slot=False)
        inj.inject(ctx, 10.0, rng())
        assert ctx.resource_manager.executor_count == 1


class TestNodeOutage:
    def test_node_goes_dark_and_returns(self, setup):
        ctx = setup.context
        inj = NodeOutage(worker_index=0)
        detail = inj.inject(ctx, 10.0, rng())
        victim = ctx.cluster.workers[0]
        assert not victim.online
        assert victim.executor_capacity == 0
        assert "offline" in detail
        inj.recover(ctx, 70.0)
        assert victim.online

    def test_executors_on_node_die(self, setup):
        ctx = setup.context
        before = ctx.resource_manager.executor_count
        NodeOutage(worker_index=0).inject(ctx, 10.0, rng())
        assert ctx.resource_manager.executor_count < before


class TestStraggler:
    def test_slowdown_applied_and_cleared(self, setup):
        ctx = setup.context
        inj = StragglerSlowdown(factor=4.0, count=2)
        inj.inject(ctx, 10.0, rng())
        slowed = [e for e in ctx.resource_manager.executors if e.slowdown > 1.0]
        assert len(slowed) == 2
        assert slowed[0].speed_factor == pytest.approx(
            slowed[0].node.speed_factor / 4.0
        )
        inj.recover(ctx, 50.0)
        assert all(e.slowdown == 1.0 for e in ctx.resource_manager.executors)


class TestBrokerOutage:
    def test_stall_starves_batches_then_backlog_bursts(self, setup):
        ctx = setup.context
        inj = BrokerOutage()
        inj.inject(ctx, 0.0, rng())
        assert ctx.receiver.stalled
        for _ in range(3):
            ctx.advance_one_batch()
        stalled_batches = ctx.listener.metrics.batches
        assert all(b.records == 0 for b in stalled_batches)
        inj.recover(ctx, ctx.time)
        assert not ctx.receiver.stalled
        burst = []
        for _ in range(3):
            burst.extend(ctx.advance_one_batch())
        # The held-back records arrive as a burst after recovery.
        assert any(b.records > 0 for b in burst)


class TestDataSkew:
    def test_surge_multiplies_rate(self, setup):
        ctx = setup.context
        baseline = []
        for _ in range(3):
            baseline.extend(ctx.advance_one_batch())
        DataSkewBurst(multiplier=3.0).inject(ctx, ctx.time, rng())
        surged = []
        for _ in range(3):
            surged.extend(ctx.advance_one_batch())
        mean = lambda bs: sum(b.records for b in bs) / max(len(bs), 1)  # noqa: E731
        assert mean(surged) > 1.5 * mean(baseline)


class TestEngineWiring:
    def test_fires_at_scheduled_boundary_and_recovers(self, setup):
        ctx = setup.context
        schedule = FaultSchedule.of(
            FaultEvent("skew", AtTime(30.0), DataSkewBurst(multiplier=2.0),
                       duration=20.0),
        )
        engine = ChaosEngine(ctx, schedule, seed=0)
        for _ in range(10):
            ctx.advance_one_batch()
        assert engine.injections == 1
        rec = engine.records[0]
        assert rec.fired_at == 30.0
        assert rec.recovered_at is not None
        assert rec.recovered_at >= 50.0
        assert not engine.faults_active

    def test_finish_force_recovers(self, setup):
        ctx = setup.context
        schedule = FaultSchedule.of(
            FaultEvent("stall", AtTime(10.0), BrokerOutage(), duration=1e9),
        )
        engine = ChaosEngine(ctx, schedule, seed=0)
        for _ in range(3):
            ctx.advance_one_batch()
        assert engine.faults_active
        engine.finish()
        assert not engine.faults_active
        assert not ctx.receiver.stalled
